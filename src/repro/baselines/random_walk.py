"""Forward and backward random walks on the click graph.

Craswell & Szummer (SIGIR 2007) rank by the probability that a Markov
walker, after ``t`` steps with per-step self-transition probability ``s``,
sits at a node:

* **forward** walk: start at the input query, follow the click graph's
  forward transitions — ``score(q') = p_t(q' | start=q)``;
* **backward** walk: follow the time-reversed transitions — which, from a
  query start, amounts to walking the transpose chain —
  ``score(q') ∝ p(start=q' | end=q)`` under a uniform start prior.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import sparse

from repro.baselines.base import Suggester
from repro.graphs.click_graph import ClickGraph
from repro.graphs.matrices import row_normalize
from repro.logs.schema import QueryRecord
from repro.utils.text import normalize_query

__all__ = ["ForwardRandomWalkSuggester", "BackwardRandomWalkSuggester"]


class _RandomWalkSuggester(Suggester):
    """Shared machinery of FRW and BRW."""

    def __init__(
        self,
        graph: ClickGraph,
        steps: int = 3,
        self_transition: float = 0.1,
    ) -> None:
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if not 0.0 <= self_transition < 1.0:
            raise ValueError("self_transition must be in [0, 1)")
        self._graph = graph
        self._steps = steps
        self._self_transition = self_transition
        base = self._base_transition()
        n = graph.n_queries
        if n:
            identity = sparse.identity(n, format="csr")
            self._transition = (
                self_transition * identity + (1 - self_transition) * base
            ).tocsr()
        else:
            self._transition = base

    def _base_transition(self) -> sparse.csr_matrix:
        raise NotImplementedError

    def scores(self, query: str) -> np.ndarray | None:
        """Walk-probability vector for *query* (None if unknown)."""
        normalized = normalize_query(query)
        if normalized not in self._graph:
            return None
        p = np.zeros(self._graph.n_queries)
        p[self._graph.query_ordinal(normalized)] = 1.0
        for _ in range(self._steps):
            p = p @ self._transition
        return np.asarray(p).ravel()

    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
    ) -> list[str]:
        scores = self.scores(query)
        if scores is None:
            return []
        normalized = normalize_query(query)
        order = np.argsort(-scores, kind="stable")
        suggestions: list[str] = []
        for ordinal in order:
            if scores[ordinal] <= 0:
                break
            candidate = self._graph.query_at(int(ordinal))
            if candidate == normalized:
                continue
            suggestions.append(candidate)
            if len(suggestions) >= k:
                break
        return suggestions


class ForwardRandomWalkSuggester(_RandomWalkSuggester):
    """FRW: forward click-graph walk from the input query."""

    name = "FRW"

    def _base_transition(self) -> sparse.csr_matrix:
        return self._graph.query_transition()


class BackwardRandomWalkSuggester(_RandomWalkSuggester):
    """BRW: backward (time-reversed) click-graph walk."""

    name = "BRW"

    def _base_transition(self) -> sparse.csr_matrix:
        return row_normalize(self._graph.query_transition().T)
