"""Context-aware query suggestion via concept sequences (Cao et al., KDD 2008).

The paper cites this method ([2]) as the representative *context-aware*
relevance-oriented suggester; it is implemented here as an extension
baseline beyond the paper's evaluated set.  The pipeline follows the
published recipe:

1. **Concept mining** — queries are clustered into *concepts* by their
   clicked-URL vectors (queries sharing clicks express the same intent);
2. **Session mining** — each training session becomes a sequence of
   concepts; every suffix of every sequence (up to a length cap) is
   inserted into a **concept-sequence suffix tree** whose nodes store the
   observed next-concept counts;
3. **Online suggestion** — the current session's concept sequence is
   matched against the tree, longest suffix first; the predicted next
   concepts' most popular queries become the suggestions, backing off to
   the input query's own concept when no sequence matches.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.baselines.base import Suggester
from repro.logs.schema import QueryRecord, Session
from repro.logs.storage import QueryLog
from repro.utils.text import cosine_similarity_bags, normalize_query

__all__ = ["ContextAwareSuggester"]


class _ConceptIndex:
    """Query -> concept clustering over clicked-URL vectors (single link)."""

    def __init__(self, log: QueryLog, similarity_threshold: float) -> None:
        self._vectors: dict[str, Counter[str]] = {}
        self._frequency: Counter[str] = Counter()
        for record in log:
            query = normalize_query(record.query)
            if not query:
                continue
            self._frequency[query] += 1
            vector = self._vectors.setdefault(query, Counter())
            if record.clicked_url is not None:
                vector[record.clicked_url] += 1

        parent = {q: q for q in self._vectors}

        def find(q: str) -> str:
            while parent[q] != q:
                parent[q] = parent[parent[q]]
                q = parent[q]
            return q

        by_url: dict[str, list[str]] = {}
        for query, vector in self._vectors.items():
            for url in vector:
                by_url.setdefault(url, []).append(query)
        seen: set[tuple[str, str]] = set()
        for members in by_url.values():
            for i, qa in enumerate(members):
                for qb in members[i + 1:]:
                    pair = (qa, qb) if qa < qb else (qb, qa)
                    if pair in seen:
                        continue
                    seen.add(pair)
                    similarity = cosine_similarity_bags(
                        self._vectors[qa], self._vectors[qb]
                    )
                    if similarity >= similarity_threshold:
                        ra, rb = find(qa), find(qb)
                        if ra != rb:
                            parent[rb] = ra

        self._concept_of: dict[str, int] = {}
        roots: dict[str, int] = {}
        self._members: dict[int, list[str]] = {}
        for query in sorted(self._vectors):
            root = find(query)
            if root not in roots:
                roots[root] = len(roots)
            concept = roots[root]
            self._concept_of[query] = concept
            self._members.setdefault(concept, []).append(query)

    @property
    def n_concepts(self) -> int:
        return len(self._members)

    def concept_of(self, query: str) -> int | None:
        """Concept id of *query* (None if unseen)."""
        return self._concept_of.get(normalize_query(query))

    def queries_of(self, concept: int) -> list[str]:
        """The concept's member queries, most frequent first."""
        members = self._members.get(concept, [])
        return sorted(members, key=lambda q: (-self._frequency[q], q))

    def frequency(self, query: str) -> int:
        return self._frequency[normalize_query(query)]


class _SuffixTree:
    """Concept-sequence suffix tree: suffix tuple -> next-concept counts."""

    def __init__(self, max_suffix: int) -> None:
        self._max_suffix = max_suffix
        self._next: dict[tuple[int, ...], Counter[int]] = {}

    def insert(self, sequence: list[int]) -> None:
        for position in range(1, len(sequence)):
            target = sequence[position]
            start = max(0, position - self._max_suffix)
            for begin in range(start, position):
                suffix = tuple(sequence[begin:position])
                self._next.setdefault(suffix, Counter())[target] += 1

    def predict(self, sequence: list[int]) -> Counter[int]:
        """Next-concept counts for the longest matching suffix (empty if none)."""
        for length in range(min(len(sequence), self._max_suffix), 0, -1):
            suffix = tuple(sequence[-length:])
            counts = self._next.get(suffix)
            if counts:
                return counts
        return Counter()

    @property
    def n_nodes(self) -> int:
        return len(self._next)


class ContextAwareSuggester(Suggester):
    """CACB: concept-sequence suffix-tree suggestion (Cao et al. 2008)."""

    name = "CACB"

    def __init__(
        self,
        log: QueryLog,
        sessions: list[Session],
        similarity_threshold: float = 0.3,
        max_suffix: int = 3,
        queries_per_concept: int = 3,
    ) -> None:
        if not 0.0 < similarity_threshold < 1.0:
            raise ValueError("similarity_threshold must be in (0, 1)")
        if max_suffix < 1:
            raise ValueError("max_suffix must be >= 1")
        if queries_per_concept < 1:
            raise ValueError("queries_per_concept must be >= 1")
        self._concepts = _ConceptIndex(log, similarity_threshold)
        self._tree = _SuffixTree(max_suffix)
        self._queries_per_concept = queries_per_concept
        for session in sessions:
            sequence = self._session_concepts(
                [record.query for record in session]
            )
            if len(sequence) >= 2:
                self._tree.insert(sequence)

    def _session_concepts(self, queries: Sequence[str]) -> list[int]:
        """Concept sequence of a query sequence (consecutive dups collapsed)."""
        sequence: list[int] = []
        for query in queries:
            concept = self._concepts.concept_of(query)
            if concept is None:
                continue
            if not sequence or sequence[-1] != concept:
                sequence.append(concept)
        return sequence

    @property
    def n_concepts(self) -> int:
        """Number of mined concepts."""
        return self._concepts.n_concepts

    @property
    def n_tree_nodes(self) -> int:
        """Number of suffix-tree contexts."""
        return self._tree.n_nodes

    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
    ) -> list[str]:
        normalized = normalize_query(query)
        history = [record.query for record in context] + [normalized]
        sequence = self._session_concepts(history)
        if not sequence:
            return []

        exclude = {normalize_query(q) for q in history}
        suggestions: list[str] = []

        predictions = self._tree.predict(sequence)
        for concept, _count in predictions.most_common():
            for candidate in self._concepts.queries_of(concept)[
                : self._queries_per_concept
            ]:
                if candidate not in exclude and candidate not in suggestions:
                    suggestions.append(candidate)
                if len(suggestions) >= k:
                    return suggestions

        # Back-off: popular queries of the input query's own concept.
        own = self._concepts.concept_of(normalized)
        if own is not None:
            for candidate in self._concepts.queries_of(own):
                if candidate not in exclude and candidate not in suggestions:
                    suggestions.append(candidate)
                if len(suggestions) >= k:
                    break
        return suggestions[:k]
