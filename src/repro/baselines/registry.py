"""Name -> baseline factory used by the experiment harness."""

from __future__ import annotations

from repro.baselines.base import Suggester
from repro.baselines.concept_based import ConceptBasedSuggester
from repro.baselines.dqs import DQSSuggester
from repro.baselines.hitting import HittingTimeSuggester
from repro.baselines.pht import PersonalizedHittingTimeSuggester
from repro.baselines.random_walk import (
    BackwardRandomWalkSuggester,
    ForwardRandomWalkSuggester,
)
from repro.graphs.click_graph import build_click_graph
from repro.logs.storage import QueryLog

__all__ = ["baseline_names", "build_baseline"]

_DIVERSIFICATION_BASELINES = ("FRW", "BRW", "HT", "DQS")
_PERSONALIZED_BASELINES = ("PHT", "CM")


def baseline_names(personalized: bool | None = None) -> list[str]:
    """Registered baseline names.

    ``personalized=None`` lists all; True/False filters to the personalized
    (PHT, CM) or diversification-stage (FRW, BRW, HT, DQS) subsets.
    """
    if personalized is None:
        return list(_DIVERSIFICATION_BASELINES + _PERSONALIZED_BASELINES)
    if personalized:
        return list(_PERSONALIZED_BASELINES)
    return list(_DIVERSIFICATION_BASELINES)


def build_baseline(
    name: str, log: QueryLog, weighted: bool = True
) -> Suggester:
    """Construct the baseline *name* over *log*.

    ``weighted`` selects the raw vs. ``cfiqf``-weighted click graph — the
    Fig. 3 comparison axis.  CM does not use the click graph and ignores the
    flag.
    """
    if name == "CM":
        return ConceptBasedSuggester(log)
    graph = build_click_graph(log, weighted=weighted)
    if name == "FRW":
        return ForwardRandomWalkSuggester(graph)
    if name == "BRW":
        return BackwardRandomWalkSuggester(graph)
    if name == "HT":
        return HittingTimeSuggester(graph)
    if name == "DQS":
        return DQSSuggester(graph)
    if name == "PHT":
        return PersonalizedHittingTimeSuggester(graph, log)
    raise KeyError(
        f"unknown baseline {name!r}; known: {baseline_names()}"
    )
