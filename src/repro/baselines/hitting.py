"""Hitting-time query suggestion (Mei, Zhou & Church, CIKM 2008).

The input query becomes the absorbing state; every other query is scored by
its truncated expected hitting time *to* the input — queries whose random
walks reach the input quickly are strongly related, so suggestions are
ranked by **ascending** hitting time.  (Contrast with the diversification
use of hitting time in PQS-DA and DQS, which ranks the *next* candidate by
descending hitting time to the already-selected set.)
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import Suggester
from repro.diversify.hitting_time import truncated_hitting_times
from repro.graphs.click_graph import ClickGraph
from repro.logs.schema import QueryRecord
from repro.utils.text import normalize_query

__all__ = ["HittingTimeSuggester"]


class HittingTimeSuggester(Suggester):
    """HT baseline: rank by ascending truncated hitting time to the input."""

    name = "HT"

    def __init__(self, graph: ClickGraph, iterations: int = 20) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self._graph = graph
        self._iterations = iterations
        self._transition = graph.query_transition()

    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
    ) -> list[str]:
        normalized = normalize_query(query)
        if normalized not in self._graph:
            return []
        target = self._graph.query_ordinal(normalized)
        hitting = truncated_hitting_times(
            self._transition, [target], self._iterations
        )
        # Unreachable queries saturate at the horizon; exclude them so the
        # list contains only genuinely connected suggestions.
        reachable = np.flatnonzero(hitting < self._iterations)
        ranked = sorted(
            (int(i) for i in reachable if int(i) != target),
            key=lambda i: (hitting[i], self._graph.query_at(i)),
        )
        return [self._graph.query_at(i) for i in ranked[:k]]
