"""Diversifying Query Suggestion (Ma, Lyu & King, AAAI 2010).

DQS diversifies on the *click graph*: (1) a Markov random walk from the
input query scores candidate relevance and picks the most relevant first
suggestion; (2) the remaining suggestions are chosen greedily as the
candidate with the **largest** expected hitting time to the already-selected
set, restricted to a relevance-filtered candidate pool.  PQS-DA's
diversification step generalizes exactly this recipe to the multi-bipartite
representation, which is why DQS is its closest baseline.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import Suggester
from repro.baselines.random_walk import ForwardRandomWalkSuggester
from repro.diversify.hitting_time import truncated_hitting_times
from repro.graphs.click_graph import ClickGraph
from repro.logs.schema import QueryRecord
from repro.utils.text import normalize_query

__all__ = ["DQSSuggester"]


class DQSSuggester(Suggester):
    """DQS baseline: click-graph walk relevance + greedy max hitting time."""

    name = "DQS"

    def __init__(
        self,
        graph: ClickGraph,
        pool_size: int = 50,
        walk_steps: int = 3,
        hitting_iterations: int = 20,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if hitting_iterations < 1:
            raise ValueError("hitting_iterations must be >= 1")
        self._graph = graph
        self._pool_size = pool_size
        self._hitting_iterations = hitting_iterations
        self._walker = ForwardRandomWalkSuggester(graph, steps=walk_steps)
        self._transition = graph.query_transition()

    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
    ) -> list[str]:
        normalized = normalize_query(query)
        scores = self._walker.scores(normalized)
        if scores is None:
            return []

        input_ordinal = self._graph.query_ordinal(normalized)
        order = np.argsort(-scores, kind="stable")
        pool = [
            int(i)
            for i in order
            if scores[int(i)] > 0 and int(i) != input_ordinal
        ][: self._pool_size]
        if not pool:
            return []

        selected = [pool[0]]  # the most relevant candidate
        while len(selected) < min(k, len(pool)):
            hitting = truncated_hitting_times(
                self._transition, selected, self._hitting_iterations
            )
            best = max(
                (i for i in pool if i not in selected),
                key=lambda i: (
                    hitting[i],
                    scores[i],
                    self._graph.query_at(i),
                ),
            )
            selected.append(best)
        return [self._graph.query_at(i) for i in selected[:k]]
