"""Personalized Hitting Time (Mei, Zhou & Church, CIKM 2008, Sec. 5).

The personalized variant creates a **pseudo query node** in the click graph
that merges the input query's clicked URLs with the URLs the user clicked in
their own history; candidates are ranked by ascending truncated hitting time
to this pseudo node.  A user whose history concentrates on one facet of an
ambiguous query pulls that facet's queries closer to the pseudo node.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np
from scipy import sparse

from repro.baselines.base import Suggester
from repro.diversify.hitting_time import truncated_hitting_times
from repro.graphs.click_graph import ClickGraph
from repro.graphs.matrices import row_normalize
from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog
from repro.utils.text import normalize_query

__all__ = ["PersonalizedHittingTimeSuggester"]


class PersonalizedHittingTimeSuggester(Suggester):
    """PHT baseline: hitting time to a user-aware pseudo query node."""

    name = "PHT"

    def __init__(
        self,
        graph: ClickGraph,
        log: QueryLog,
        iterations: int = 20,
        history_weight: float = 1.0,
    ) -> None:
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if history_weight < 0:
            raise ValueError("history_weight must be >= 0")
        self._graph = graph
        self._iterations = iterations
        self._history_weight = history_weight
        self._user_clicks: dict[str, Counter[str]] = {}
        for record in log:
            if record.clicked_url is not None:
                self._user_clicks.setdefault(record.user_id, Counter())[
                    record.clicked_url
                ] += 1

    def _pseudo_url_row(
        self, query: str, user_id: str | None
    ) -> dict[str, float] | None:
        """URL weights of the pseudo node: input query edges + user history."""
        normalized = normalize_query(query)
        if normalized not in self._graph:
            return None
        adjacency = self._graph.adjacency
        row_ordinal = self._graph.query_ordinal(normalized)
        row = adjacency.getrow(row_ordinal)
        urls = {
            self._graph.urls[int(j)]: float(v)
            for j, v in zip(row.indices, row.data)
        }
        if user_id is not None and user_id in self._user_clicks:
            url_set = set(self._graph.urls)
            for url, count in self._user_clicks[user_id].items():
                if url in url_set:
                    urls[url] = urls.get(url, 0.0) + (
                        self._history_weight * count
                    )
        return urls or None

    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
    ) -> list[str]:
        pseudo_urls = self._pseudo_url_row(query, user_id)
        if pseudo_urls is None:
            return []
        normalized = normalize_query(query)

        # Augment the query-URL adjacency with the pseudo node as the last
        # row, then build the two-step query transition over n+1 queries.
        adjacency = self._graph.adjacency
        n, m = adjacency.shape
        url_index = {url: j for j, url in enumerate(self._graph.urls)}
        cols = [url_index[url] for url in pseudo_urls]
        data = [pseudo_urls[url] for url in pseudo_urls]
        pseudo_row = sparse.csr_matrix(
            (data, ([0] * len(cols), cols)), shape=(1, m)
        )
        augmented = sparse.vstack([adjacency, pseudo_row]).tocsr()
        forward = row_normalize(augmented)
        backward = row_normalize(augmented.T)
        transition = (forward @ backward).tocsr()

        hitting = truncated_hitting_times(
            transition, [n], self._iterations  # pseudo node is absorbing
        )
        reachable = np.flatnonzero(hitting < self._iterations)
        input_ordinal = self._graph.query_ordinal(normalized)
        ranked = sorted(
            (
                int(i)
                for i in reachable
                if int(i) not in (n, input_ordinal)
            ),
            key=lambda i: (hitting[i], self._graph.query_at(i)),
        )
        return [self._graph.query_at(i) for i in ranked[:k]]
