"""Baseline query-suggestion methods (paper Sec. VI).

All four diversification-stage baselines run on the classic click graph, as
in the paper ("we utilize the original methods described in literature"):

* **FRW / BRW** — forward / backward Markov random walks on the click graph
  (Craswell & Szummer, SIGIR 2007);
* **HT** — hitting-time suggestion (Mei, Zhou & Church, CIKM 2008);
* **DQS** — diversifying query suggestion (Ma, Lyu & King, AAAI 2010);

plus the two personalized baselines of Sec. VI-C:

* **PHT** — personalized hitting time via a pseudo query node (Mei et al.);
* **CM** — the concept-based clustering method (Leung, Ng & Lee, TKDE 2008).
"""

from repro.baselines.base import Suggester, SuggestRequest
from repro.baselines.concept_based import ConceptBasedSuggester
from repro.baselines.dqs import DQSSuggester
from repro.baselines.hitting import HittingTimeSuggester
from repro.baselines.pht import PersonalizedHittingTimeSuggester
from repro.baselines.random_walk import (
    BackwardRandomWalkSuggester,
    ForwardRandomWalkSuggester,
)
from repro.baselines.registry import build_baseline, baseline_names

__all__ = [
    "BackwardRandomWalkSuggester",
    "ConceptBasedSuggester",
    "DQSSuggester",
    "ForwardRandomWalkSuggester",
    "HittingTimeSuggester",
    "PersonalizedHittingTimeSuggester",
    "SuggestRequest",
    "Suggester",
    "baseline_names",
    "build_baseline",
]
