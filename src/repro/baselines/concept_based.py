"""Concept-based personalized query suggestion (Leung, Ng & Lee, TKDE 2008).

CM models each query by its *concept vector* — the terms it contains and the
URLs it led to — and each user by the aggregate concept vector of their
click history.  Queries are clustered agglomeratively by concept-vector
cosine similarity; for an input query, the suggestions are its cluster
mates, ranked by similarity to the requesting user's concept profile.

The method's reliance on a large concept space is what makes it the slowest
system in the paper's Fig. 7; this implementation intentionally keeps the
concept-space scan (pairwise cosines over the cluster vocabulary) so the
efficiency benchmark reproduces that behaviour.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.baselines.base import Suggester
from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog
from repro.utils.text import cosine_similarity_bags, normalize_query, tokenize

__all__ = ["ConceptBasedSuggester"]


class ConceptBasedSuggester(Suggester):
    """CM baseline: concept clustering + user concept-profile ranking."""

    name = "CM"

    def __init__(
        self,
        log: QueryLog,
        similarity_threshold: float = 0.12,
        url_concept_weight: float = 2.0,
    ) -> None:
        if not 0.0 < similarity_threshold < 1.0:
            raise ValueError("similarity_threshold must be in (0, 1)")
        if url_concept_weight < 0:
            raise ValueError("url_concept_weight must be >= 0")
        self._threshold = similarity_threshold

        # Concept vector per query: its terms plus (up-weighted) clicked URLs.
        self._concepts: dict[str, Counter[str]] = {}
        self._user_profiles: dict[str, Counter[str]] = {}
        for record in log:
            query = normalize_query(record.query)
            if not query:
                continue
            vector = self._concepts.setdefault(query, Counter())
            for term in tokenize(query):
                vector[f"t:{term}"] += 1
            profile = self._user_profiles.setdefault(record.user_id, Counter())
            for term in tokenize(query):
                profile[f"t:{term}"] += 1
            if record.clicked_url is not None:
                url_concept = f"u:{record.clicked_url}"
                vector[url_concept] += url_concept_weight
                profile[url_concept] += url_concept_weight

        # Inverted concept index: concept -> queries carrying it.
        self._by_concept: dict[str, list[str]] = {}
        for query, vector in self._concepts.items():
            for concept in vector:
                self._by_concept.setdefault(concept, []).append(query)

        self._clusters = self._agglomerate()

    def _agglomerate(self) -> dict[str, int]:
        """Single-link agglomerative clustering via a similarity graph.

        Two queries join the same cluster when their concept cosine exceeds
        the threshold; clusters are the connected components (the standard
        single-link cut of the dendrogram at the threshold).
        """
        queries = sorted(self._concepts)
        parent = {q: q for q in queries}

        def find(q: str) -> str:
            while parent[q] != q:
                parent[q] = parent[parent[q]]
                q = parent[q]
            return q

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        by_concept = self._by_concept
        seen_pairs: set[tuple[str, str]] = set()
        for members in by_concept.values():
            for i, qa in enumerate(members):
                for qb in members[i + 1 :]:
                    pair = (qa, qb) if qa < qb else (qb, qa)
                    if pair in seen_pairs:
                        continue
                    seen_pairs.add(pair)
                    similarity = cosine_similarity_bags(
                        self._concepts[qa], self._concepts[qb]
                    )
                    if similarity >= self._threshold:
                        union(qa, qb)

        cluster_of: dict[str, int] = {}
        root_ids: dict[str, int] = {}
        for query in queries:
            root = find(query)
            if root not in root_ids:
                root_ids[root] = len(root_ids)
            cluster_of[query] = root_ids[root]
        return cluster_of

    @property
    def n_clusters(self) -> int:
        """Number of concept clusters."""
        return len(set(self._clusters.values()))

    def cluster_of(self, query: str) -> int | None:
        """Cluster id of *query* (None if unknown)."""
        return self._clusters.get(normalize_query(query))

    def _expand_cluster(self, seed: str) -> list[str]:
        """Online single-link expansion from *seed* over the concept space.

        Computes the same connected component as the offline clustering but
        evaluates concept cosines at query time — the per-request concept-
        space scan that makes CM the slowest system in the paper's Fig. 7.
        """
        cluster = {seed}
        frontier = [seed]
        mates: list[str] = []
        while frontier:
            next_frontier: list[str] = []
            for query in frontier:
                vector = self._concepts[query]
                for concept in vector:
                    for candidate in self._by_concept.get(concept, ()):
                        if candidate in cluster:
                            continue
                        similarity = cosine_similarity_bags(
                            vector, self._concepts[candidate]
                        )
                        if similarity >= self._threshold:
                            cluster.add(candidate)
                            next_frontier.append(candidate)
                            mates.append(candidate)
            frontier = next_frontier
        return mates

    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
    ) -> list[str]:
        normalized = normalize_query(query)
        if normalized not in self._concepts:
            return []
        mates = self._expand_cluster(normalized)
        if not mates:
            return []

        profile = (
            self._user_profiles.get(user_id, Counter())
            if user_id is not None
            else Counter()
        )
        input_vector = self._concepts[normalized]

        def score(candidate: str) -> tuple[float, float]:
            vector = self._concepts[candidate]
            personal = cosine_similarity_bags(profile, vector)
            topical = cosine_similarity_bags(input_vector, vector)
            return personal, topical

        ranked = sorted(mates, key=lambda q: (*score(q), q), reverse=True)
        return ranked[:k]
