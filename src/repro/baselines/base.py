"""The suggester interface every method (PQS-DA and baselines) implements."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.logs.schema import QueryRecord

__all__ = ["Suggester"]


class Suggester(ABC):
    """A query-suggestion method.

    ``suggest`` returns up to *k* distinct suggestions, never including the
    input query itself.  Methods that do not use some argument (user,
    context, timestamp) simply ignore it — the evaluation harness calls
    every method with the full signature.
    """

    #: Short display name used by the experiment harness (e.g. "FRW").
    name: str = "suggester"

    @abstractmethod
    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
    ) -> list[str]:
        """Suggest up to *k* queries for *query*.

        Returns an empty list when the input query is unknown to the
        method's underlying representation.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
