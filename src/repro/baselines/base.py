"""The suggester interface every method (PQS-DA and baselines) implements."""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.logs.schema import QueryRecord

__all__ = ["SuggestRequest", "Suggester"]


@dataclass(frozen=True)
class SuggestRequest:
    """One unit of work for :meth:`Suggester.suggest_batch`.

    Mirrors the :meth:`Suggester.suggest` signature; *context* is stored
    as a tuple so requests stay hashable/immutable.

    *shed* is the request's load-shed tier (0 = full service, 1 = skip
    the hitting-time rerank, 2 = additionally skip personalization — see
    :class:`repro.core.serving.ShedOptions`).  Serving paths that degrade
    under load (PQS-DA, the worker pool, the HTTP front-end) honor it;
    baseline suggesters reject nonzero tiers loudly rather than silently
    serving full quality.
    """

    query: str
    k: int = 10
    user_id: str | None = None
    context: tuple[QueryRecord, ...] = field(default_factory=tuple)
    timestamp: float = 0.0
    shed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 0 <= self.shed <= 2:
            raise ValueError(f"shed tier must be in 0..2, got {self.shed}")
        if not isinstance(self.context, tuple):
            object.__setattr__(self, "context", tuple(self.context))


class Suggester(ABC):
    """A query-suggestion method.

    ``suggest`` returns up to *k* distinct suggestions, never including the
    input query itself.  Methods that do not use some argument (user,
    context, timestamp) simply ignore it — the evaluation harness calls
    every method with the full signature.
    """

    #: Short display name used by the experiment harness (e.g. "FRW").
    name: str = "suggester"

    @abstractmethod
    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
    ) -> list[str]:
        """Suggest up to *k* queries for *query*.

        Returns an empty list when the input query is unknown to the
        method's underlying representation.
        """

    def suggest_batch(
        self,
        requests: Iterable[SuggestRequest],
        n_workers: int = 1,
    ) -> list[list[str]]:
        """Suggestions for *requests*, in order.

        Equivalent to calling :meth:`suggest` per request; with
        ``n_workers > 1`` the requests fan out over a thread pool (methods
        with request-level caches, e.g. PQS-DA's compact cache, share them
        across the batch).  Results are identical to the sequential run
        for any worker count.
        """
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        requests = list(requests)

        def run(request: SuggestRequest) -> list[str]:
            kwargs = {}
            if request.shed:
                # Only degraded requests forward the tier: suggesters
                # without a shed path (the baselines) raise TypeError
                # instead of silently serving full quality.
                kwargs["shed"] = request.shed
            return self.suggest(
                request.query,
                k=request.k,
                user_id=request.user_id,
                context=request.context,
                timestamp=request.timestamp,
                **kwargs,
            )

        if n_workers == 1 or len(requests) <= 1:
            return [run(request) for request in requests]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=min(n_workers, len(requests))
        ) as pool:
            return list(pool.map(run, requests))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
