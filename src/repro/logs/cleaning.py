"""Query-log cleaning in the spirit of Wang & Zhai (SIGIR 2007).

The paper (Sec. VI-A) cleans its raw commercial log "in a similar way as
[33]" before running any suggestion algorithm.  The published recipe removes
(1) navigational/empty noise rows, (2) extremely rare queries that carry no
co-occurrence signal, and (3) hyperactive robot-like users whose volume would
otherwise dominate every graph.  :func:`clean_log` implements that recipe with
explicit, testable thresholds and returns an auditable report.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog
from repro.utils.text import normalize_query, tokenize

__all__ = ["CleaningRules", "CleaningReport", "clean_log"]


@dataclass(frozen=True, slots=True)
class CleaningRules:
    """Thresholds controlling :func:`clean_log`.

    Attributes:
        min_query_frequency: Drop queries issued fewer times than this across
            the whole log (rare queries have no graph neighbourhood).
        max_user_queries: Drop users with more rows than this (robot filter).
        min_query_terms: Drop queries with fewer topical terms than this after
            normalization (empty / pure-stopword queries).
        max_query_terms: Drop queries longer than this many terms (pasted
            text, not search queries).
        drop_urls: Specific URLs to treat as noise (e.g. search-engine
            self-links); clicks on them become no-click rows.
    """

    min_query_frequency: int = 1
    max_user_queries: int = 10_000
    min_query_terms: int = 1
    max_query_terms: int = 10
    drop_urls: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.min_query_frequency < 1:
            raise ValueError("min_query_frequency must be >= 1")
        if self.max_user_queries < 1:
            raise ValueError("max_user_queries must be >= 1")
        if self.min_query_terms < 0:
            raise ValueError("min_query_terms must be >= 0")
        if self.max_query_terms < self.min_query_terms:
            raise ValueError("max_query_terms must be >= min_query_terms")


@dataclass(slots=True)
class CleaningReport:
    """What :func:`clean_log` removed and why."""

    input_records: int = 0
    output_records: int = 0
    dropped_empty: int = 0
    dropped_rare: int = 0
    dropped_long: int = 0
    dropped_robot_users: int = 0
    robot_users: list[str] = field(default_factory=list)
    declicked_urls: int = 0

    @property
    def dropped_total(self) -> int:
        """Total removed rows."""
        return self.input_records - self.output_records


def clean_log(
    log: QueryLog, rules: CleaningRules | None = None
) -> tuple[QueryLog, CleaningReport]:
    """Clean *log* per *rules*; return ``(cleaned_log, report)``.

    Queries are normalized (lower-case, punctuation stripped) in the output
    log.  The input log is never mutated.
    """
    if rules is None:
        rules = CleaningRules()
    report = CleaningReport(input_records=len(log))

    user_volume = Counter(record.user_id for record in log)
    robots = {u for u, n in user_volume.items() if n > rules.max_user_queries}
    report.robot_users = sorted(robots)

    # Query frequency is counted over non-robot rows so that a robot hammering
    # one query cannot rescue it from the rare-query filter.
    frequency: Counter[str] = Counter(
        normalize_query(record.query)
        for record in log
        if record.user_id not in robots
    )

    kept: list[QueryRecord] = []
    for record in log:
        if record.user_id in robots:
            report.dropped_robot_users += 1
            continue
        normalized = normalize_query(record.query)
        n_terms = len(tokenize(normalized))
        if n_terms < rules.min_query_terms:
            report.dropped_empty += 1
            continue
        if n_terms > rules.max_query_terms:
            report.dropped_long += 1
            continue
        if frequency[normalized] < rules.min_query_frequency:
            report.dropped_rare += 1
            continue
        clicked = record.clicked_url
        if clicked is not None and clicked in rules.drop_urls:
            clicked = None
            report.declicked_urls += 1
        kept.append(
            QueryRecord(
                user_id=record.user_id,
                query=normalized,
                timestamp=record.timestamp,
                clicked_url=clicked,
            )
        )

    cleaned = QueryLog(kept)
    report.output_records = len(cleaned)
    return cleaned, report
