"""Reader/writer for the public AOL query-log TSV format.

The 2006 AOL research collection ships as tab-separated files with header::

    AnonID\tQuery\tQueryTime\tItemRank\tClickURL

One row per (query submission, click) pair; a submission without a click has
empty ``ItemRank`` and ``ClickURL``.  The reproduction's synthetic generator
exports this exact layout (see :func:`write_aol`), so the same pipeline code
runs unchanged on the real public collection when it is available.
"""

from __future__ import annotations

import io
from collections.abc import Iterable
from pathlib import Path

from repro.logs.schema import QueryRecord, format_timestamp, parse_timestamp
from repro.logs.storage import QueryLog

__all__ = ["read_aol", "write_aol", "parse_aol_line", "AOL_HEADER"]

AOL_HEADER = "AnonID\tQuery\tQueryTime\tItemRank\tClickURL"


def parse_aol_line(line: str) -> QueryRecord | None:
    """Parse one AOL TSV row into a :class:`QueryRecord`.

    Returns ``None`` for the header, blank lines, and malformed rows (wrong
    column count, unparsable timestamp) — the skip rules of
    :func:`read_aol`, shared with the streaming file-tail source.
    """
    line = line.rstrip("\n")
    if not line or line.startswith("AnonID"):
        return None
    parts = line.split("\t")
    if len(parts) not in (3, 5):
        return None
    anon_id, query, query_time = parts[0], parts[1], parts[2]
    click_url = None
    if len(parts) == 5 and parts[4]:
        click_url = parts[4]
    try:
        timestamp = parse_timestamp(query_time)
    except ValueError:
        return None
    return QueryRecord(
        user_id=anon_id,
        query=query,
        timestamp=timestamp,
        clicked_url=click_url,
    )


def _open_text(source: str | Path | io.TextIOBase, mode: str):
    if isinstance(source, io.TextIOBase):
        return source, False
    return open(source, mode, encoding="utf-8"), True


def read_aol(
    source: str | Path | io.TextIOBase, max_records: int | None = None
) -> QueryLog:
    """Parse an AOL-format TSV into a :class:`QueryLog`.

    Malformed rows (wrong column count, unparsable timestamp) are skipped —
    the public collection contains a handful of such rows.  ``max_records``
    truncates the read, which is useful for sampling the 36M-row collection.
    """
    handle, should_close = _open_text(source, "r")
    records: list[QueryRecord] = []
    try:
        for line in handle:
            record = parse_aol_line(line)
            if record is None:
                continue
            records.append(record)
            if max_records is not None and len(records) >= max_records:
                break
    finally:
        if should_close:
            handle.close()
    return QueryLog(records)


def write_aol(
    log: QueryLog | Iterable[QueryRecord],
    destination: str | Path | io.TextIOBase,
) -> int:
    """Write records in AOL TSV layout; return the number of rows written.

    Click rows carry ``ItemRank`` 1 (the collection's rank information is not
    modelled by this reproduction); no-click rows have empty rank and URL
    columns, exactly like the public files.
    """
    handle, should_close = _open_text(destination, "w")
    written = 0
    try:
        handle.write(AOL_HEADER + "\n")
        for record in log:
            stamp = format_timestamp(record.timestamp)
            if record.clicked_url is not None:
                row = f"{record.user_id}\t{record.query}\t{stamp}\t1\t{record.clicked_url}"
            else:
                row = f"{record.user_id}\t{record.query}\t{stamp}\t\t"
            handle.write(row + "\n")
            written += 1
    finally:
        if should_close:
            handle.close()
    return written
