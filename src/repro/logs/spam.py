"""Click-spam detection over query logs.

Sec. III motivates robust edge weighting by noting clickthrough "may also
be biased by users or robots with malicious intents" [18].  Cleaning
(`repro.logs.cleaning`) removes *hyperactive* users by volume; this module
detects the subtler click-fraud signature: users whose click behaviour is
abnormally *concentrated* — many queries funnelled into very few URLs —
measured by the entropy of their click distribution relative to volume.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.logs.storage import QueryLog

__all__ = ["UserClickStats", "click_profile", "detect_click_spammers"]


@dataclass(frozen=True, slots=True)
class UserClickStats:
    """Click-behaviour summary of one user.

    Attributes:
        user_id: The user.
        n_clicks: Total clicked rows.
        n_urls: Distinct clicked URLs.
        entropy: Shannon entropy (nats) of the click-URL distribution.
        max_possible_entropy: ``log(n_clicks)`` — the entropy a perfectly
            spread click pattern of this volume would have.
    """

    user_id: str
    n_clicks: int
    n_urls: int
    entropy: float
    max_possible_entropy: float

    @property
    def concentration(self) -> float:
        """1 − normalized entropy: 0 = maximally spread, 1 = one URL only.

        Users with a single click are undefined (no spread possible) and
        report concentration 0.
        """
        if self.max_possible_entropy <= 0:
            return 0.0
        return 1.0 - self.entropy / self.max_possible_entropy


def click_profile(log: QueryLog, user_id: str) -> UserClickStats:
    """Click statistics of one user (zeros for users who never click)."""
    counts: Counter[str] = Counter()
    for record in log.records_of(user_id):
        if record.clicked_url is not None:
            counts[record.clicked_url] += 1
    n_clicks = sum(counts.values())
    entropy = 0.0
    for count in counts.values():
        p = count / n_clicks
        entropy -= p * math.log(p)
    return UserClickStats(
        user_id=user_id,
        n_clicks=n_clicks,
        n_urls=len(counts),
        entropy=entropy,
        max_possible_entropy=math.log(n_clicks) if n_clicks > 1 else 0.0,
    )


def detect_click_spammers(
    log: QueryLog,
    min_clicks: int = 20,
    concentration_threshold: float = 0.85,
) -> list[UserClickStats]:
    """Users whose click pattern looks like click fraud.

    A spammer is a user with at least *min_clicks* clicked rows whose
    click concentration exceeds *concentration_threshold* — e.g. a robot
    hammering one target URL from many query strings.  Genuine users
    spread clicks over the pages of their interests, keeping concentration
    well below the threshold.

    Returns the offending users' statistics, most concentrated first; feed
    ``[s.user_id for s in ...]`` into ``QueryLog.restrict_users``'s
    complement or ``CleaningRules`` to drop them.
    """
    if min_clicks < 2:
        raise ValueError("min_clicks must be >= 2")
    if not 0.0 < concentration_threshold <= 1.0:
        raise ValueError("concentration_threshold must be in (0, 1]")
    offenders = []
    for user_id in log.users:
        stats = click_profile(log, user_id)
        if (
            stats.n_clicks >= min_clicks
            and stats.concentration >= concentration_threshold
        ):
            offenders.append(stats)
    return sorted(offenders, key=lambda s: (-s.concentration, s.user_id))
