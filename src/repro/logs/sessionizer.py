"""Session segmentation (the paper's Definition 1, derived per [24][25]).

The reference method combines a *temporal* cutoff (a long pause means a new
information need) with a *lexical* continuation rule (a query sharing terms
with the running session continues it even across a moderate pause).  This is
the standard published approximation of the session extractor of Jiang, Leung
& Ng (CIKM 2011) that the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logs.schema import QueryRecord, Session
from repro.logs.storage import QueryLog
from repro.utils.text import jaccard, tokenize

__all__ = ["SessionizerConfig", "continues_session", "sessionize"]


@dataclass(frozen=True, slots=True)
class SessionizerConfig:
    """Parameters of :func:`sessionize`.

    Attributes:
        gap_seconds: A pause longer than this always starts a new session
            (classic 30-minute cutoff).
        soft_gap_seconds: Pauses between ``gap_seconds`` and this value keep
            the session only when the lexical rule fires.  Must be <=
            ``gap_seconds``; the soft window is ``(soft_gap_seconds,
            gap_seconds]``.
        min_term_overlap: Jaccard overlap of query terms with the running
            session required to continue across a soft pause.
    """

    gap_seconds: float = 30 * 60
    soft_gap_seconds: float = 5 * 60
    min_term_overlap: float = 0.2

    def __post_init__(self) -> None:
        if self.gap_seconds <= 0:
            raise ValueError("gap_seconds must be positive")
        if not 0 < self.soft_gap_seconds <= self.gap_seconds:
            raise ValueError("soft_gap_seconds must be in (0, gap_seconds]")
        if not 0.0 <= self.min_term_overlap <= 1.0:
            raise ValueError("min_term_overlap must be in [0, 1]")


def continues_session(
    session_terms: set[str],
    record: QueryRecord,
    pause: float,
    config: SessionizerConfig,
) -> bool:
    """Whether *record* continues a session with *session_terms* after *pause*.

    The single decision rule shared by the batch :func:`sessionize` and the
    online sessionizer of the streaming layer (:mod:`repro.stream.ingest`),
    so both segmentations are identical on the same record order.
    """
    if pause > config.gap_seconds:
        return False
    if pause <= config.soft_gap_seconds:
        return True
    overlap = jaccard(session_terms, tokenize(record.query))
    return overlap >= config.min_term_overlap


def sessionize(
    log: QueryLog, config: SessionizerConfig | None = None
) -> list[Session]:
    """Segment *log* into per-user sessions.

    Returns sessions ordered by ``(user_id, start_time)``.  Session ids are
    ``"{user_id}/{ordinal}"`` and are stable for a given log and config.
    """
    if config is None:
        config = SessionizerConfig()

    sessions: list[Session] = []
    for user_id in log.users:
        records = log.records_of(user_id)
        current: list[QueryRecord] = []
        current_terms: set[str] = set()
        ordinal = 0
        for record in records:
            if current:
                pause = record.timestamp - current[-1].timestamp
                if not continues_session(current_terms, record, pause, config):
                    sessions.append(
                        Session(f"{user_id}/{ordinal}", user_id, current)
                    )
                    ordinal += 1
                    current = []
                    current_terms = set()
            current.append(record)
            current_terms.update(tokenize(record.query))
        if current:
            sessions.append(Session(f"{user_id}/{ordinal}", user_id, current))
    return sessions
