"""Query-log substrate: record schema, storage, cleaning, sessionization, AOL I/O.

This package owns the raw-data layer of the reproduction (paper Table I):
records of ``(user, query, clicked URL, timestamp)``, their segmentation into
search sessions, cleaning in the spirit of Wang & Zhai (SIGIR 2007), and
round-tripping of the public AOL query-log TSV format.
"""

from repro.logs.aol import parse_aol_line, read_aol, write_aol
from repro.logs.cleaning import CleaningReport, CleaningRules, clean_log
from repro.logs.schema import QueryRecord, Session
from repro.logs.sessionizer import SessionizerConfig, continues_session, sessionize
from repro.logs.spam import UserClickStats, click_profile, detect_click_spammers
from repro.logs.storage import QueryLog

__all__ = [
    "CleaningReport",
    "CleaningRules",
    "QueryLog",
    "QueryRecord",
    "Session",
    "SessionizerConfig",
    "UserClickStats",
    "clean_log",
    "click_profile",
    "continues_session",
    "detect_click_spammers",
    "parse_aol_line",
    "read_aol",
    "sessionize",
    "write_aol",
]
