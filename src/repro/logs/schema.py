"""Record and session datatypes for search-engine query logs.

A :class:`QueryRecord` is one row of the paper's Table I; a :class:`Session`
is the paper's Definition 1 — a consecutive run of one user's queries serving
a single information need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime, timezone

from repro.utils.text import tokenize

__all__ = ["QueryRecord", "Session", "parse_timestamp", "format_timestamp"]

_TIMESTAMP_FORMAT = "%Y-%m-%d %H:%M:%S"


def parse_timestamp(text: str) -> float:
    """Parse a ``YYYY-MM-DD HH:MM:SS`` timestamp into epoch seconds (UTC)."""
    dt = datetime.strptime(text, _TIMESTAMP_FORMAT).replace(tzinfo=timezone.utc)
    return dt.timestamp()


def format_timestamp(epoch_seconds: float) -> str:
    """Format epoch seconds as the log's ``YYYY-MM-DD HH:MM:SS`` (UTC)."""
    dt = datetime.fromtimestamp(epoch_seconds, tz=timezone.utc)
    return dt.strftime(_TIMESTAMP_FORMAT)


@dataclass(frozen=True, slots=True)
class QueryRecord:
    """One query-log row: who searched what, what they clicked, and when.

    Attributes:
        user_id: Anonymized user identifier.
        query: The raw query string as typed (normalize via cleaning).
        timestamp: Submission time in epoch seconds (UTC).
        clicked_url: The clicked URL, or ``None`` for a no-click row.
        record_id: Stable per-log row identifier (assigned by the store).
    """

    user_id: str
    query: str
    timestamp: float
    clicked_url: str | None = None
    record_id: int = -1

    @property
    def has_click(self) -> bool:
        """Whether this row recorded a click."""
        return self.clicked_url is not None

    @property
    def terms(self) -> list[str]:
        """The topical terms of the query (lower-cased, stopwords removed)."""
        return tokenize(self.query)

    def with_record_id(self, record_id: int) -> "QueryRecord":
        """Copy of this record with *record_id* assigned."""
        return replace(self, record_id=record_id)


@dataclass(slots=True)
class Session:
    """A maximal run of one user's queries serving a single information need.

    The paper's Definition 1.  Sessions are produced by
    :func:`repro.logs.sessionizer.sessionize` (or come labelled from the
    synthetic generator, which knows the ground truth).
    """

    session_id: str
    user_id: str
    records: list[QueryRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        for record in self.records:
            if record.user_id != self.user_id:
                raise ValueError(
                    f"record user {record.user_id!r} does not match "
                    f"session user {self.user_id!r}"
                )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def queries(self) -> list[str]:
        """The query strings in submission order."""
        return [record.query for record in self.records]

    @property
    def clicked_urls(self) -> list[str]:
        """All clicked URLs in the session (clicks only, in order)."""
        return [r.clicked_url for r in self.records if r.clicked_url is not None]

    @property
    def start_time(self) -> float:
        """Timestamp of the first record (raises on an empty session)."""
        if not self.records:
            raise ValueError("empty session has no start time")
        return self.records[0].timestamp

    @property
    def end_time(self) -> float:
        """Timestamp of the last record (raises on an empty session)."""
        if not self.records:
            raise ValueError("empty session has no end time")
        return self.records[-1].timestamp

    def search_context(self, index: int) -> list[QueryRecord]:
        """The paper's Definition 2: records preceding position *index*.

        ``session.search_context(0)`` is empty; for the paper's example
        session ``[q1, q2, q3]``, ``search_context(2) == [q1, q2]``.
        """
        if not 0 <= index < len(self.records):
            raise IndexError(
                f"index {index} out of range for session of {len(self.records)}"
            )
        return self.records[:index]
