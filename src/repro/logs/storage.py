"""In-memory query-log store with the per-entity indexes the algorithms need.

:class:`QueryLog` is the single handle the rest of the library takes for raw
log data.  It assigns stable ``record_id``\\ s, maintains per-user ordering,
and exposes the frequency indexes (query, term, URL) that the multi-bipartite
weighting of Sec. III consumes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable, Iterator

from repro.logs.schema import QueryRecord
from repro.utils.text import normalize_query, tokenize

__all__ = ["QueryLog"]


class QueryLog:
    """An immutable collection of query records.

    Records are stored in timestamp order per user (the global order is the
    input order).  All analytics — unique queries, vocabularies, click counts
    — are computed once at construction.

    A log never changes after construction; growing a log produces a *new*
    log.  :meth:`extend` is the supported extension path — it appends fresh
    records without re-scanning the existing ones, which is what the
    streaming ingestion layer (:mod:`repro.stream`) leans on to fold live
    traffic into epoch snapshots.  In-place mutation is loudly rejected:
    :meth:`append` raises, and :attr:`records` returns a defensive copy so
    the internal indexes cannot be corrupted from outside.
    """

    def __init__(self, records: Iterable[QueryRecord]) -> None:
        self._records: list[QueryRecord] = []
        for record in records:
            self._records.append(record.with_record_id(len(self._records)))

        self._by_user: dict[str, list[QueryRecord]] = defaultdict(list)
        self._query_counts: Counter[str] = Counter()
        self._term_counts: Counter[str] = Counter()
        self._url_counts: Counter[str] = Counter()
        for record in self._records:
            self._by_user[record.user_id].append(record)
            query = normalize_query(record.query)
            self._query_counts[query] += 1
            self._term_counts.update(set(tokenize(query)))
            if record.clicked_url is not None:
                self._url_counts[record.clicked_url] += 1
        for user_records in self._by_user.values():
            user_records.sort(key=lambda r: (r.timestamp, r.record_id))

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self._records)

    def __getitem__(self, record_id: int) -> QueryRecord:
        return self._records[record_id]

    def __repr__(self) -> str:
        return (
            f"QueryLog(records={len(self._records)}, users={len(self._by_user)}, "
            f"unique_queries={len(self._query_counts)})"
        )

    # -- accessors ---------------------------------------------------------------

    @property
    def records(self) -> list[QueryRecord]:
        """All records in insertion order (a copy; the log is immutable)."""
        return list(self._records)

    @property
    def users(self) -> list[str]:
        """Distinct user ids, sorted for determinism."""
        return sorted(self._by_user)

    def records_of(self, user_id: str) -> list[QueryRecord]:
        """One user's records in timestamp order (empty list if unknown)."""
        return list(self._by_user.get(user_id, []))

    @property
    def unique_queries(self) -> list[str]:
        """Distinct normalized query strings, sorted for determinism."""
        return sorted(self._query_counts)

    def query_frequency(self, query: str) -> int:
        """How many log rows issued *query* (after normalization)."""
        return self._query_counts[normalize_query(query)]

    def term_frequency(self, term: str) -> int:
        """How many distinct query submissions contained *term*."""
        return self._term_counts[term]

    def url_frequency(self, url: str) -> int:
        """How many rows clicked *url*."""
        return self._url_counts[url]

    @property
    def vocabulary(self) -> list[str]:
        """Distinct query terms, sorted for determinism."""
        return sorted(self._term_counts)

    @property
    def urls(self) -> list[str]:
        """Distinct clicked URLs, sorted for determinism."""
        return sorted(self._url_counts)

    @property
    def total_queries(self) -> int:
        """Total query submissions ``|Q|`` — the numerator of Eqs. 1-3."""
        return len(self._records)

    @property
    def time_range(self) -> tuple[float, float]:
        """(min, max) record timestamp; raises on an empty log."""
        if not self._records:
            raise ValueError("empty log has no time range")
        stamps = [record.timestamp for record in self._records]
        return min(stamps), max(stamps)

    # -- derived logs --------------------------------------------------------------

    def append(self, record: QueryRecord) -> None:
        """Unsupported: a :class:`QueryLog` is immutable after construction.

        Raises ``TypeError`` pointing at :meth:`extend`, the documented way
        to grow a log (it returns a new log and leaves this one untouched).
        """
        raise TypeError(
            "QueryLog is immutable after construction; use "
            "QueryLog.extend(records), which returns a new log"
        )

    def extend(self, records: Iterable[QueryRecord]) -> "QueryLog":
        """New log with *records* appended after this log's records.

        Equivalent to ``QueryLog(self.records + list(records))`` but
        incremental: existing indexes are copied and only the new records
        are scanned, so the cost is ``O(existing + new)`` pointer work plus
        ``O(new)`` analysis instead of a full re-scan.  Record ids continue
        this log's sequence; the original log is not modified.  This is the
        extension path the streaming layer (:mod:`repro.stream`) uses to
        snapshot the cumulative log per epoch.
        """
        appended: list[QueryRecord] = []
        for record in records:
            appended.append(
                record.with_record_id(len(self._records) + len(appended))
            )

        clone = QueryLog.__new__(QueryLog)
        clone._records = self._records + appended
        clone._query_counts = self._query_counts.copy()
        clone._term_counts = self._term_counts.copy()
        clone._url_counts = self._url_counts.copy()
        # Copy-on-write per-user lists: untouched users share this log's
        # (never-mutated) lists; only users with new records get a fresh,
        # re-sorted list — the same (timestamp, record_id) order the batch
        # constructor produces.
        clone._by_user = defaultdict(list, self._by_user)
        fresh: dict[str, list[QueryRecord]] = {}
        for record in appended:
            fresh.setdefault(record.user_id, []).append(record)
            query = normalize_query(record.query)
            clone._query_counts[query] += 1
            clone._term_counts.update(set(tokenize(query)))
            if record.clicked_url is not None:
                clone._url_counts[record.clicked_url] += 1
        for user_id, new_records in fresh.items():
            merged = list(self._by_user.get(user_id, [])) + new_records
            merged.sort(key=lambda r: (r.timestamp, r.record_id))
            clone._by_user[user_id] = merged
        return clone

    def filter(self, predicate) -> "QueryLog":
        """New :class:`QueryLog` of the records satisfying *predicate*.

        Record ids are re-assigned in the new log.
        """
        return QueryLog(
            QueryRecord(
                user_id=r.user_id,
                query=r.query,
                timestamp=r.timestamp,
                clicked_url=r.clicked_url,
            )
            for r in self._records
            if predicate(r)
        )

    def restrict_users(self, user_ids: Iterable[str]) -> "QueryLog":
        """New log containing only the given users' records."""
        wanted = set(user_ids)
        return self.filter(lambda record: record.user_id in wanted)
