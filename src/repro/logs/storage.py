"""In-memory query-log store with the per-entity indexes the algorithms need.

:class:`QueryLog` is the single handle the rest of the library takes for raw
log data.  It assigns stable ``record_id``\\ s, maintains per-user ordering,
and exposes the frequency indexes (query, term, URL) that the multi-bipartite
weighting of Sec. III consumes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable, Iterator

from repro.logs.schema import QueryRecord
from repro.utils.text import normalize_query, tokenize

__all__ = ["QueryLog"]


class QueryLog:
    """An immutable-after-construction collection of query records.

    Records are stored in timestamp order per user (the global order is the
    input order).  All analytics — unique queries, vocabularies, click counts
    — are computed once at construction.
    """

    def __init__(self, records: Iterable[QueryRecord]) -> None:
        self._records: list[QueryRecord] = []
        for record in records:
            self._records.append(record.with_record_id(len(self._records)))

        self._by_user: dict[str, list[QueryRecord]] = defaultdict(list)
        self._query_counts: Counter[str] = Counter()
        self._term_counts: Counter[str] = Counter()
        self._url_counts: Counter[str] = Counter()
        for record in self._records:
            self._by_user[record.user_id].append(record)
            query = normalize_query(record.query)
            self._query_counts[query] += 1
            self._term_counts.update(set(tokenize(query)))
            if record.clicked_url is not None:
                self._url_counts[record.clicked_url] += 1
        for user_records in self._by_user.values():
            user_records.sort(key=lambda r: (r.timestamp, r.record_id))

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self._records)

    def __getitem__(self, record_id: int) -> QueryRecord:
        return self._records[record_id]

    def __repr__(self) -> str:
        return (
            f"QueryLog(records={len(self._records)}, users={len(self._by_user)}, "
            f"unique_queries={len(self._query_counts)})"
        )

    # -- accessors ---------------------------------------------------------------

    @property
    def records(self) -> list[QueryRecord]:
        """All records in insertion order (do not mutate)."""
        return self._records

    @property
    def users(self) -> list[str]:
        """Distinct user ids, sorted for determinism."""
        return sorted(self._by_user)

    def records_of(self, user_id: str) -> list[QueryRecord]:
        """One user's records in timestamp order (empty list if unknown)."""
        return list(self._by_user.get(user_id, []))

    @property
    def unique_queries(self) -> list[str]:
        """Distinct normalized query strings, sorted for determinism."""
        return sorted(self._query_counts)

    def query_frequency(self, query: str) -> int:
        """How many log rows issued *query* (after normalization)."""
        return self._query_counts[normalize_query(query)]

    def term_frequency(self, term: str) -> int:
        """How many distinct query submissions contained *term*."""
        return self._term_counts[term]

    def url_frequency(self, url: str) -> int:
        """How many rows clicked *url*."""
        return self._url_counts[url]

    @property
    def vocabulary(self) -> list[str]:
        """Distinct query terms, sorted for determinism."""
        return sorted(self._term_counts)

    @property
    def urls(self) -> list[str]:
        """Distinct clicked URLs, sorted for determinism."""
        return sorted(self._url_counts)

    @property
    def total_queries(self) -> int:
        """Total query submissions ``|Q|`` — the numerator of Eqs. 1-3."""
        return len(self._records)

    @property
    def time_range(self) -> tuple[float, float]:
        """(min, max) record timestamp; raises on an empty log."""
        if not self._records:
            raise ValueError("empty log has no time range")
        stamps = [record.timestamp for record in self._records]
        return min(stamps), max(stamps)

    # -- derived logs --------------------------------------------------------------

    def filter(self, predicate) -> "QueryLog":
        """New :class:`QueryLog` of the records satisfying *predicate*.

        Record ids are re-assigned in the new log.
        """
        return QueryLog(
            QueryRecord(
                user_id=r.user_id,
                query=r.query,
                timestamp=r.timestamp,
                clicked_url=r.clicked_url,
            )
            for r in self._records
            if predicate(r)
        )

    def restrict_users(self, user_ids: Iterable[str]) -> "QueryLog":
        """New log containing only the given users' records."""
        wanted = set(user_ids)
        return self.filter(lambda record: record.user_id in wanted)
