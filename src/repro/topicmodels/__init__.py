"""Topic models over query logs: the Fig. 4 baseline family.

The paper compares the UPM against eight published generative models.  We
reconstruct each from its defining structural choice on a shared collapsed-
Gibbs engine (:class:`~repro.topicmodels.base.StructuredTopicModel`):

======  =========  ===========  =====  ===========================
model   topic unit  URL usage   time   extra
======  =========  ===========  =====  ===========================
LDA     token       none        no     (Blei et al. 2003)
TOT     token       none        yes    Beta timestamps (Wang & McCallum)
PTM1    token       none        no     learned per-user alpha (Carman et al.)
PTM2    token       channel     no     PTM1 + click channel
MWM     token       folded      no     URLs as meta-words (Jiang et al.)
TUM     token       channel     no     separate term/URL channels
CTM     query       channel     no     clickthrough pairs share a topic
SSTM    session     none        yes    session topics + time (Jiang & Ng)
======  =========  ===========  =====  ===========================

The UPM (in :mod:`repro.personalize.upm`) adds session-level topics + both
channels + time + per-document counts with learned asymmetric beta/delta —
strictly the richest member, which is the paper's explanation for Fig. 4.
"""

from repro.topicmodels.base import StructuredTopicModel, TopicModelConfig
from repro.topicmodels.corpus import (
    Document,
    SessionCorpus,
    SessionData,
    build_corpus,
)
from repro.topicmodels.perplexity import evaluate_perplexity, perplexity
from repro.topicmodels.zoo import MODEL_NAMES, build_model

__all__ = [
    "Document",
    "MODEL_NAMES",
    "SessionCorpus",
    "SessionData",
    "StructuredTopicModel",
    "TopicModelConfig",
    "build_corpus",
    "build_model",
    "evaluate_perplexity",
    "perplexity",
]
