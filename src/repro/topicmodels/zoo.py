"""Named instantiations of the Fig. 4 baseline models.

Each name maps to a :class:`~repro.topicmodels.base.TopicModelConfig`
capturing the published model's defining structure (see the package
docstring table); ``"UPM"`` maps to the full User Profiling Model.  Exact
secondary details of PTM1/PTM2/MWM/TUM/CTM/SSTM that are not recoverable
offline are approximated by these structural reconstructions, as recorded
in DESIGN.md.
"""

from __future__ import annotations

from repro.topicmodels.base import StructuredTopicModel, TopicModelConfig

__all__ = ["MODEL_NAMES", "build_model"]

#: All Fig. 4 models, paper order.
MODEL_NAMES: tuple[str, ...] = (
    "LDA",
    "PTM1",
    "PTM2",
    "TOT",
    "MWM",
    "TUM",
    "CTM",
    "SSTM",
    "UPM",
)

_BASELINE_AXES: dict[str, dict] = {
    "LDA": dict(unit="token", url_mode="none", use_time=False),
    "PTM1": dict(unit="token", url_mode="none", use_time=False,
                 learn_alpha=True),
    "PTM2": dict(unit="token", url_mode="channel", use_time=False,
                 learn_alpha=True),
    "TOT": dict(unit="token", url_mode="none", use_time=True),
    "MWM": dict(unit="token", url_mode="folded", use_time=False),
    "TUM": dict(unit="token", url_mode="channel", use_time=False),
    "CTM": dict(unit="query", url_mode="channel", use_time=False),
    "SSTM": dict(unit="session", url_mode="none", use_time=True),
}


def build_model(
    name: str,
    n_topics: int = 12,
    iterations: int = 60,
    seed: int = 0,
    upm_engine: str = "fast",
):
    """Build the Fig. 4 model *name*; returns an unfitted model object.

    Every returned object implements ``fit(corpus)`` and
    ``predictive_word_distribution(d)`` — the perplexity protocol.
    *upm_engine* selects the UPM sampler implementation (``"fast"`` or
    ``"reference"``; the two are bit-identical) and is ignored for the
    baselines.
    """
    if name == "UPM":
        # Imported lazily: repro.personalize.upm itself depends on this
        # package's corpus module, so a top-level import would be circular.
        from repro.personalize.upm import UPM, UPMConfig

        return UPM(
            UPMConfig(
                n_topics=n_topics,
                iterations=iterations,
                hyperopt_every=max(iterations // 3, 1),
                engine=upm_engine,
                seed=seed,
            )
        )
    try:
        axes = _BASELINE_AXES[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; known: {MODEL_NAMES}") from None
    model = StructuredTopicModel(
        TopicModelConfig(
            n_topics=n_topics, iterations=iterations, seed=seed, **axes
        )
    )
    model.name = name
    return model
