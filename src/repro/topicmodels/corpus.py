"""Session-structured corpus shared by the UPM and all topic-model baselines.

The paper organizes "the query log entries of each user as a document"
(Sec. V-A); within a document, the *session* is the unit that carries a
topic.  :class:`SessionCorpus` materializes that view: one document per
user, each a list of sessions holding word ids, URL ids and a timestamp
normalized to [0, 1] over the log's span (the Beta-distribution support the
UPM and TOT need).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.logs.schema import Session
from repro.logs.storage import QueryLog
from repro.utils.text import tokenize

__all__ = [
    "SessionData",
    "Document",
    "SessionCorpus",
    "build_corpus",
    "first_occurrence_counts",
]


def first_occurrence_counts(
    items: Iterable[int],
) -> tuple[np.ndarray, np.ndarray]:
    """Unique ids of *items* in first-occurrence order, with multiplicities.

    Returns ``(ids, counts)`` where ``ids`` is an ``int64`` array of the
    distinct ids ordered by first appearance and ``counts`` a ``float64``
    array of how often each occurs.  This is the token view every
    session-level Gibbs sampler needs per session (the Eq. 23 product runs
    over unique tokens with their counts), precomputed once instead of
    rebuilt as a dict on every sweep.
    """
    tally: dict[int, int] = {}
    for item in items:
        tally[item] = tally.get(item, 0) + 1
    ids = np.fromiter(tally.keys(), dtype=np.int64, count=len(tally))
    counts = np.fromiter(tally.values(), dtype=np.float64, count=len(tally))
    return ids, counts


@dataclass(frozen=True, slots=True)
class SessionData:
    """One session as the topic models see it.

    Attributes:
        words: Global word ids of the session's query terms (with repeats).
        urls: Global URL ids of the session's clicks (with repeats).
        timestamp: Session start time normalized to [0, 1].
        record_words: Word ids grouped per query submission — the *query*
            topic-unit boundaries that CTM/PTM-style models need.
        record_urls: URL ids grouped per query submission (possibly empty
            groups for no-click submissions).
    """

    words: tuple[int, ...]
    urls: tuple[int, ...]
    timestamp: float
    record_words: tuple[tuple[int, ...], ...] = ()
    record_urls: tuple[tuple[int, ...], ...] = ()


@dataclass(frozen=True, slots=True)
class Document:
    """One user's search history.

    Attributes:
        user_id: The user behind the document.
        sessions: The user's sessions in time order.
    """

    user_id: str
    sessions: tuple[SessionData, ...]

    @property
    def n_words(self) -> int:
        """Total word occurrences across the document's sessions."""
        return sum(len(session.words) for session in self.sessions)

    @property
    def all_words(self) -> list[int]:
        """All word ids in session order (with repeats)."""
        return [w for session in self.sessions for w in session.words]


@dataclass(frozen=True)
class SessionCorpus:
    """All documents plus the word/URL id maps.

    Attributes:
        documents: One per user, ordered by user id.
        word_of_id / id_of_word: Global word vocabulary maps.
        url_of_id / id_of_url: Global URL maps.
    """

    documents: tuple[Document, ...]
    word_of_id: tuple[str, ...]
    id_of_word: dict[str, int]
    url_of_id: tuple[str, ...]
    id_of_url: dict[str, int]
    #: Epoch seconds mapped to normalized time 0.0 (the log's earliest
    #: record); kept so serving-time timestamps can be normalized the same
    #: way the training sessions were.
    time_low: float = 0.0
    #: Length of the normalization window in seconds (>= 1).
    time_span: float = 1.0
    doc_index: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.doc_index:
            object.__setattr__(
                self,
                "doc_index",
                {doc.user_id: i for i, doc in enumerate(self.documents)},
            )

    @property
    def n_documents(self) -> int:
        """Number of documents (users)."""
        return len(self.documents)

    @property
    def n_words(self) -> int:
        """Vocabulary size W."""
        return len(self.word_of_id)

    @property
    def n_urls(self) -> int:
        """URL vocabulary size U."""
        return len(self.url_of_id)

    @property
    def total_tokens(self) -> int:
        """Total word occurrences in the corpus."""
        return sum(doc.n_words for doc in self.documents)

    def document_of(self, user_id: str) -> Document:
        """The document of *user_id*; raises ``KeyError`` if unknown."""
        try:
            return self.documents[self.doc_index[user_id]]
        except KeyError:
            raise KeyError(f"no document for user {user_id!r}") from None

    def normalize_time(self, epoch_seconds: float) -> float:
        """Map an epoch timestamp into the corpus's [0, 1] window (clamped)."""
        value = (epoch_seconds - self.time_low) / self.time_span
        return float(min(max(value, 0.0), 1.0))

    def word_ids(self, text_terms: list[str]) -> list[int]:
        """Map terms to word ids, silently dropping out-of-vocabulary terms."""
        return [
            self.id_of_word[term]
            for term in text_terms
            if term in self.id_of_word
        ]

    def split_prefix(
        self, observed_fraction: float
    ) -> tuple["SessionCorpus", list[list[int]]]:
        """Split each document into an observed prefix and held-out words.

        The first ``ceil(observed_fraction * n_sessions)`` sessions of each
        document stay observed (at least one, so every user retains some
        history); the remaining sessions' word ids become the held-out list.
        This is the Eq. 35 evaluation protocol: train on the prefix, predict
        the suffix words.
        """
        if not 0.0 < observed_fraction < 1.0:
            raise ValueError(
                f"observed_fraction must be in (0, 1), got {observed_fraction}"
            )
        observed_docs: list[Document] = []
        heldout: list[list[int]] = []
        for doc in self.documents:
            n = len(doc.sessions)
            cut = max(1, int(round(observed_fraction * n)))
            cut = min(cut, n)
            observed_docs.append(
                Document(user_id=doc.user_id, sessions=doc.sessions[:cut])
            )
            heldout.append(
                [w for session in doc.sessions[cut:] for w in session.words]
            )
        observed = SessionCorpus(
            documents=tuple(observed_docs),
            word_of_id=self.word_of_id,
            id_of_word=self.id_of_word,
            url_of_id=self.url_of_id,
            id_of_url=self.id_of_url,
            time_low=self.time_low,
            time_span=self.time_span,
        )
        return observed, heldout


def build_corpus(log: QueryLog, sessions: list[Session]) -> SessionCorpus:
    """Build the :class:`SessionCorpus` of *log* under *sessions*.

    Sessions with no topical terms are dropped (they carry no signal for any
    of the models); users whose every session was dropped are omitted.
    """
    word_ids: dict[str, int] = {}
    url_ids: dict[str, int] = {}
    low, high = (0.0, 1.0)
    if len(log) > 0:
        low, high = log.time_range
    span = max(high - low, 1.0)

    per_user: dict[str, list[SessionData]] = {}
    for session in sessions:
        record_words: list[tuple[int, ...]] = []
        record_urls: list[tuple[int, ...]] = []
        for record in session:
            words_of_record: list[int] = []
            for term in tokenize(record.query):
                if term not in word_ids:
                    word_ids[term] = len(word_ids)
                words_of_record.append(word_ids[term])
            urls_of_record: list[int] = []
            if record.clicked_url is not None:
                url = record.clicked_url
                if url not in url_ids:
                    url_ids[url] = len(url_ids)
                urls_of_record.append(url_ids[url])
            if words_of_record:
                record_words.append(tuple(words_of_record))
                record_urls.append(tuple(urls_of_record))
        if not record_words:
            continue
        timestamp = (session.start_time - low) / span
        per_user.setdefault(session.user_id, []).append(
            SessionData(
                words=tuple(w for group in record_words for w in group),
                urls=tuple(u for group in record_urls for u in group),
                timestamp=float(min(max(timestamp, 0.0), 1.0)),
                record_words=tuple(record_words),
                record_urls=tuple(record_urls),
            )
        )

    documents = tuple(
        Document(user_id=user_id, sessions=tuple(data))
        for user_id, data in sorted(per_user.items())
    )
    word_of_id = tuple(sorted(word_ids, key=word_ids.get))
    url_of_id = tuple(sorted(url_ids, key=url_ids.get))
    return SessionCorpus(
        documents=documents,
        word_of_id=word_of_id,
        id_of_word=dict(word_ids),
        url_of_id=url_of_id,
        id_of_url=dict(url_ids),
        time_low=low,
        time_span=span,
    )
