"""Shared collapsed-Gibbs engine behind the Fig. 4 baseline models.

:class:`StructuredTopicModel` is parameterized along the three axes that
distinguish the published query-log topic models (see the package
docstring): the granularity of the topic unit (word token, query submission
or session), how clicked URLs enter the model (not at all, folded into the
word vocabulary as "meta-words", or as a separate emission channel with its
own Dirichlet), and whether a per-topic Beta timestamp factor is used.

All baselines share *global* topic-word counts (``φ_kw`` is corpus-level);
the UPM differs precisely by keeping per-document counts with learned
asymmetric hyperparameters, which is why it is implemented separately in
:mod:`repro.personalize.upm`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import betaln, gammaln

from repro.personalize.hyperopt import optimize_dirichlet_fixed_point
from repro.topicmodels.corpus import SessionCorpus
from repro.utils.rng import ensure_rng, sample_index

__all__ = ["TopicModelConfig", "StructuredTopicModel"]

_TIME_EPS = 1e-3

UNIT_KINDS = ("token", "query", "session")
URL_MODES = ("none", "folded", "channel")


@dataclass(frozen=True, slots=True)
class TopicModelConfig:
    """Configuration of a :class:`StructuredTopicModel`.

    Attributes:
        n_topics: Number of topics K.
        unit: Topic-unit granularity: ``"token"``, ``"query"`` or
            ``"session"``.
        url_mode: ``"none"`` (ignore clicks), ``"folded"`` (URLs become
            meta-words in the word vocabulary) or ``"channel"`` (separate
            per-topic URL multinomial).
        use_time: Multiply a per-topic Beta density over the unit timestamp
            into the Gibbs conditional (Topics-over-Time style).
        learn_alpha: Re-estimate an asymmetric document-topic prior by
            Minka's fixed point during training (the PTM distinction).
        alpha0 / beta0 / delta0: Symmetric prior initializations.
        iterations: Gibbs sweeps.
        seed: RNG seed.
    """

    n_topics: int = 12
    unit: str = "token"
    url_mode: str = "none"
    use_time: bool = False
    learn_alpha: bool = False
    alpha0: float = 0.5
    beta0: float = 0.05
    delta0: float = 0.05
    iterations: int = 60
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        if self.unit not in UNIT_KINDS:
            raise ValueError(f"unit must be one of {UNIT_KINDS}, got {self.unit!r}")
        if self.url_mode not in URL_MODES:
            raise ValueError(
                f"url_mode must be one of {URL_MODES}, got {self.url_mode!r}"
            )
        for name in ("alpha0", "beta0", "delta0"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


@dataclass(frozen=True, slots=True)
class _Unit:
    words: tuple[int, ...]
    urls: tuple[int, ...]
    timestamp: float


class StructuredTopicModel:
    """Collapsed-Gibbs topic model over a :class:`SessionCorpus`.

    Implements the ``fit`` / ``predictive_word_distribution`` protocol the
    perplexity harness (Eq. 35) expects.
    """

    name = "topic-model"

    def __init__(self, config: TopicModelConfig | None = None) -> None:
        self.config = config if config is not None else TopicModelConfig()
        self._fitted = False

    # -- unit construction -----------------------------------------------------------

    def _build_units(self, corpus: SessionCorpus) -> list[list[_Unit]]:
        config = self.config
        W = corpus.n_words
        units_per_doc: list[list[_Unit]] = []
        for doc in corpus.documents:
            units: list[_Unit] = []
            for session in doc.sessions:
                t = session.timestamp
                if config.unit == "session":
                    words = list(session.words)
                    urls = list(session.urls)
                    if config.url_mode == "folded":
                        words += [W + u for u in urls]
                        urls = []
                    elif config.url_mode == "none":
                        urls = []
                    units.append(_Unit(tuple(words), tuple(urls), t))
                elif config.unit == "query":
                    groups = session.record_words or (session.words,)
                    url_groups = session.record_urls or (session.urls,)
                    for words_group, urls_group in zip(groups, url_groups):
                        words = list(words_group)
                        urls = list(urls_group)
                        if config.url_mode == "folded":
                            words += [W + u for u in urls]
                            urls = []
                        elif config.url_mode == "none":
                            urls = []
                        units.append(_Unit(tuple(words), tuple(urls), t))
                else:  # token
                    for w in session.words:
                        units.append(_Unit((w,), (), t))
                    if config.url_mode == "folded":
                        for u in session.urls:
                            units.append(_Unit((W + u,), (), t))
                    elif config.url_mode == "channel":
                        for u in session.urls:
                            units.append(_Unit((), (u,), t))
            units_per_doc.append(units)
        return units_per_doc

    # -- fitting ---------------------------------------------------------------------

    def fit(self, corpus: SessionCorpus) -> "StructuredTopicModel":
        """Run collapsed Gibbs over the corpus."""
        if corpus.n_documents == 0:
            raise ValueError("corpus has no documents")
        config = self.config
        rng = ensure_rng(config.seed)
        self._corpus = corpus
        K = config.n_topics
        self._n_words = corpus.n_words
        self._word_vocab = corpus.n_words + (
            corpus.n_urls if config.url_mode == "folded" else 0
        )
        self._url_vocab = corpus.n_urls if config.url_mode == "channel" else 0

        self._units = self._build_units(corpus)
        D = corpus.n_documents
        self._alpha = np.full(K, config.alpha0)
        self._n_dk = np.zeros((D, K))
        self._n_kw = np.zeros((K, max(self._word_vocab, 1)))
        self._n_k = np.zeros(K)
        self._m_ku = np.zeros((K, max(self._url_vocab, 1)))
        self._m_k = np.zeros(K)
        self._tau = np.ones((K, 2))

        self._assignments: list[np.ndarray] = []
        for d, units in enumerate(self._units):
            z = np.asarray(rng.integers(0, K, size=len(units)), dtype=int)
            self._assignments.append(z)
            for i, unit in enumerate(units):
                self._apply(d, unit, int(z[i]), +1)

        alpha_every = max(config.iterations // 3, 1)
        for sweep in range(1, config.iterations + 1):
            self._sweep(rng)
            if config.use_time and sweep % alpha_every == 0:
                self._refit_tau()
            if config.learn_alpha and sweep % alpha_every == 0:
                self._alpha = optimize_dirichlet_fixed_point(
                    self._n_dk, self._alpha
                )
        self._fitted = True
        return self

    def _apply(self, d: int, unit: _Unit, k: int, sign: int) -> None:
        self._n_dk[d, k] += sign
        for w in unit.words:
            self._n_kw[k, w] += sign
        self._n_k[k] += sign * len(unit.words)
        for u in unit.urls:
            self._m_ku[k, u] += sign
        self._m_k[k] += sign * len(unit.urls)

    def _log_prob(self, d: int, unit: _Unit) -> np.ndarray:
        config = self.config
        beta0 = config.beta0
        logits = np.log(self._n_dk[d] + self._alpha)

        if config.use_time:
            t = min(max(unit.timestamp, _TIME_EPS), 1.0 - _TIME_EPS)
            a, b = self._tau[:, 0], self._tau[:, 1]
            logits += (
                (a - 1.0) * np.log(t) + (b - 1.0) * np.log1p(-t) - betaln(a, b)
            )

        if unit.words:
            if len(unit.words) == 1:
                w = unit.words[0]
                logits += np.log(self._n_kw[:, w] + beta0)
                logits -= np.log(self._n_k + self._word_vocab * beta0)
            else:
                counts: dict[int, int] = {}
                for w in unit.words:
                    counts[w] = counts.get(w, 0) + 1
                for w, c in counts.items():
                    base = self._n_kw[:, w] + beta0
                    logits += gammaln(base + c) - gammaln(base)
                totals = self._n_k + self._word_vocab * beta0
                logits += gammaln(totals) - gammaln(totals + len(unit.words))

        if unit.urls:
            delta0 = config.delta0
            if len(unit.urls) == 1:
                u = unit.urls[0]
                logits += np.log(self._m_ku[:, u] + delta0)
                logits -= np.log(self._m_k + self._url_vocab * delta0)
            else:
                counts = {}
                for u in unit.urls:
                    counts[u] = counts.get(u, 0) + 1
                for u, c in counts.items():
                    base = self._m_ku[:, u] + delta0
                    logits += gammaln(base + c) - gammaln(base)
                totals = self._m_k + self._url_vocab * delta0
                logits += gammaln(totals) - gammaln(totals + len(unit.urls))
        return logits

    def _sweep(self, rng: np.random.Generator) -> None:
        for d, units in enumerate(self._units):
            z = self._assignments[d]
            for i, unit in enumerate(units):
                self._apply(d, unit, int(z[i]), -1)
                logits = self._log_prob(d, unit)
                logits -= logits.max()
                z[i] = sample_index(rng, np.exp(logits))
                self._apply(d, unit, int(z[i]), +1)

    def _refit_tau(self) -> None:
        K = self.config.n_topics
        stamps: list[list[float]] = [[] for _ in range(K)]
        for d, units in enumerate(self._units):
            for i, unit in enumerate(units):
                stamps[int(self._assignments[d][i])].append(unit.timestamp)
        for k in range(K):
            values = np.asarray(stamps[k])
            if values.size < 2:
                self._tau[k] = (1.0, 1.0)
                continue
            mean = float(np.clip(values.mean(), _TIME_EPS, 1 - _TIME_EPS))
            var = float(values.var())
            if var <= 0:
                var = 1e-4
            common = mean * (1 - mean) / var - 1.0
            if common <= 0:
                self._tau[k] = (1.0, 1.0)
                continue
            self._tau[k, 0] = max(mean * common, 1.0)
            self._tau[k, 1] = max((1 - mean) * common, 1.0)

    # -- fitted accessors ------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{self.name} is not fitted; call fit() first")

    @property
    def theta(self) -> np.ndarray:
        """Document-topic distributions, rows sum to 1."""
        self._require_fitted()
        raw = self._n_dk + self._alpha
        return raw / raw.sum(axis=1, keepdims=True)

    @property
    def alpha(self) -> np.ndarray:
        """The (possibly learned) document-topic prior (copy)."""
        self._require_fitted()
        return self._alpha.copy()

    @property
    def phi(self) -> np.ndarray:
        """(K, W) topic-*word* distributions over the query-term vocabulary.

        In folded mode the meta-word (URL) columns are dropped and rows are
        renormalized, so perplexity is always measured over real words.
        """
        self._require_fitted()
        smoothed = self._n_kw + self.config.beta0
        words_only = smoothed[:, : self._n_words]
        return words_only / words_only.sum(axis=1, keepdims=True)

    def predictive_word_distribution(self, d: int) -> np.ndarray:
        """``p(w | d) = Σ_k θ_dk φ_kw`` — the Eq. 35 predictive."""
        self._require_fitted()
        return self.theta[d] @ self.phi
