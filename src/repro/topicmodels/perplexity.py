"""Predictive perplexity over held-out query words (paper Eq. 35).

The protocol: observe the prefix of every user's search history (the first
sessions), fit the model on the observed part only, then compute::

    Perplexity = exp( − Σ_d Σ_{i>P} ln p(w_i | M, w_{1:P}) / Σ_d (N_d − P) )

Lower is better.  Every model under comparison implements the same two-
method protocol (``fit(corpus)``, ``predictive_word_distribution(d)``), so
the harness is model-agnostic.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from repro.topicmodels.corpus import SessionCorpus

__all__ = ["PredictiveModel", "perplexity", "evaluate_perplexity"]

#: Probability floor guarding against zero predictive mass.
_FLOOR = 1e-12


class PredictiveModel(Protocol):
    """The protocol the perplexity harness requires."""

    def fit(self, corpus: SessionCorpus) -> "PredictiveModel": ...

    def predictive_word_distribution(self, d: int) -> np.ndarray: ...


def perplexity(model: PredictiveModel, heldout: list[list[int]]) -> float:
    """Eq. 35 perplexity of *heldout* word ids under a fitted *model*.

    ``heldout[d]`` holds the unobserved word ids of document *d* (empty
    lists are fine).  Raises ``ValueError`` when nothing is held out.
    """
    total_log = 0.0
    total_words = 0
    for d, words in enumerate(heldout):
        if not words:
            continue
        predictive = model.predictive_word_distribution(d)
        for w in words:
            total_log += math.log(max(float(predictive[w]), _FLOOR))
        total_words += len(words)
    if total_words == 0:
        raise ValueError("no held-out words to evaluate")
    return math.exp(-total_log / total_words)


def evaluate_perplexity(
    model: PredictiveModel,
    corpus: SessionCorpus,
    observed_fraction: float = 0.7,
) -> float:
    """Split, fit on the prefix, return Eq. 35 perplexity of the suffix."""
    observed, heldout = corpus.split_prefix(observed_fraction)
    model.fit(observed)
    return perplexity(model, heldout)
