"""Incremental multi-bipartite updates for streaming log ingestion.

The batch pipeline derives everything from scratch: raw bipartites from the
log, cfiqf weights (Eqs. 4-6), then the CSR incidence / gram / affinity
matrices of :func:`repro.graphs.matrices.build_matrices`.  A live suggester
cannot afford that per click.  :class:`StreamState` is the writer-side
mirror of that pipeline: micro-batches of records are folded into the raw
structures in ``O(batch)`` (:meth:`StreamState.apply`), and an epoch
snapshot is derived by *patching* the previous epoch's CSR structures
(:meth:`StreamState.build_snapshot`) instead of rebuilding them:

* rows are re-gathered only for the queries a delta touched — untouched
  rows are block-copied with their column indices renumbered;
* the cfiqf reweighting handles the global ``|Q|`` shift of Eqs. 1-3 as an
  epoch-level correction: the per-facet iqf factors are recomputed (an
  ``O(n_facets)`` scalar pass) and applied to the raw-count data array in
  one vectorized multiply — never a from-scratch re-walk of the log;
* the gram/affinity matrices are re-derived from the patched incidence
  with the exact helpers ``build_matrices`` uses, so every epoch snapshot
  is **bit-identical** to a batch rebuild over the same record prefix
  (the equivalence the streaming tests pin down).

Equivalence requires records to arrive in per-user timestamp order (the
natural order of a query log); out-of-order arrivals still produce a valid
representation but sessionization may differ from the batch segmentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.graphs.bipartite import Bipartite
from repro.graphs.matrices import (
    BipartiteMatrices,
    _affinity_from_gram,
    _gram_of,
    _LazyTransitions,
    _raw_csr,
    _take_rows,
)
from repro.graphs.multibipartite import BIPARTITE_KINDS, MultiBipartite
from repro.graphs.shard import ShardPlan, ShardSlice, build_shard_slices
from repro.graphs.weighting import iqf
from repro.logs.schema import QueryRecord
from repro.logs.sessionizer import SessionizerConfig, continues_session
from repro.logs.storage import QueryLog
from repro.utils.text import normalize_query, tokenize

__all__ = ["GraphDelta", "StreamSnapshot", "StreamState"]

#: The epsilon floor of :func:`repro.graphs.weighting.apply_cfiqf` — facets
#: connected to every submission keep this weight instead of dropping out.
_CFIQF_EPSILON = 1e-3


@dataclass(frozen=True)
class GraphDelta:
    """What one applied micro-batch changed, per Eqs. 1-6 bookkeeping.

    Attributes:
        n_records: Records folded in by this micro-batch.
        touched_queries: Queries that gained an edge or a count increment
            in *any* bipartite — the set targeted cache invalidation
            intersects against.
        new_queries: Subset of ``touched_queries`` seen for the first time.
        new_facets: Kind -> facets (URLs / session ids / terms) created by
            this micro-batch.
        touched_shards: Home shards of the touched queries under the
            state's :class:`~repro.graphs.shard.ShardPlan` — empty for
            unsharded states.  Disjoint micro-batches (no shard in
            common) fold into disjoint shard structures, which is what
            lets per-shard epoch publishes swap only the touched shards'
            segments.
    """

    n_records: int
    touched_queries: frozenset[str]
    new_queries: frozenset[str]
    new_facets: dict[str, frozenset[str]]
    touched_shards: frozenset[int] = frozenset()

    @property
    def n_touched(self) -> int:
        """Size of the touched-query set."""
        return len(self.touched_queries)


@dataclass(frozen=True)
class StreamSnapshot:
    """One epoch's immutable view of the stream, ready for serving.

    Attributes:
        log: Cumulative :class:`QueryLog` (grown via ``QueryLog.extend``).
        multibipartite: Raw-count representation handle (query membership
            and term-backoff candidate scans; weights live in ``matrices``).
        matrices: The (cfiqf-weighted) full-graph matrices, incrementally
            patched — bit-identical to ``build_matrices`` over ``log``.
        touched_queries: Union of the applied deltas' touched sets since
            the previous snapshot (drives targeted cache invalidation).
        shard_plan: The state's shard plan (``None`` = unsharded).
        shard_slices: Full per-shard slice set of this epoch under
            ``shard_plan``; unchanged shards are the **same objects** as
            the previous epoch's (see
            :func:`~repro.graphs.shard.build_shard_slices`).
        shard_updates: The minimal per-shard update set — only the
            slices whose content changed since the previous snapshot.
            ``None`` means no per-shard publish is possible (unsharded
            state, first snapshot, or a delta that added queries and
            therefore renumbered global ordinals): consumers must do a
            full publish.
        plane: Deferred global-plane handle (parallel ingest only): a
            :class:`repro.stream.parallel.LazyEpochPlane` that stitches
            ``matrices`` (and the epoch expander) from the slices on
            first real use, so epochs that are only served through their
            shard slices never pay the global gram/affinity/stack
            derivation.  ``None`` for the serial path, whose ``matrices``
            are already materialized.
    """

    log: QueryLog
    multibipartite: MultiBipartite
    matrices: BipartiteMatrices
    touched_queries: frozenset[str]
    shard_plan: ShardPlan | None = None
    shard_slices: dict[int, ShardSlice] | None = None
    shard_updates: dict[int, ShardSlice] | None = None
    plane: object | None = None


@dataclass
class _OpenSession:
    """Online-sessionizer state for one user's currently open session."""

    ordinal: int
    last_timestamp: float
    terms: set[str] = field(default_factory=set)


class _KindState:
    """Per-bipartite mutable state: raw counts plus the last epoch's CSR."""

    __slots__ = ("bipartite", "facets", "raw", "new_facets", "touched")

    def __init__(self) -> None:
        self.bipartite = Bipartite()
        self.facets: list[str] = []  # sorted, as of the last snapshot
        self.raw: sparse.csr_matrix | None = None  # raw counts, canonical
        self.new_facets: set[str] = set()  # since the last snapshot
        self.touched: set[str] = set()  # queries with edge changes


class _ClosedTracker:
    """Incremental per-shard closedness over the facet-purity relation.

    Mirrors :func:`repro.graphs.shard._closed_shards` without its O(nnz)
    per-snapshot scan: a ``(kind, facet)`` column is *pure* while every
    query row incident to it lives in one shard, and a shard is closed
    while it touches no impure column.  Edges are only ever added, so
    impurity is monotone and each shard just counts the impure columns it
    touches — a column's second distinct shard charges both the prior
    owner and the joiner, and every later distinct shard charges itself.
    """

    __slots__ = ("_column_shards", "_open_counts")

    def __init__(self, n_shards: int) -> None:
        self._column_shards: dict[tuple[str, str], set[int]] = {}
        self._open_counts = [0] * n_shards

    def add(self, kind: str, facet: str, shard: int) -> None:
        """Record an edge of *shard* into the ``(kind, facet)`` column."""
        key = (kind, facet)
        shards = self._column_shards.get(key)
        if shards is None:
            self._column_shards[key] = {shard}
            return
        if shard in shards:
            return
        if len(shards) == 1:
            (owner,) = shards
            self._open_counts[owner] += 1
        shards.add(shard)
        self._open_counts[shard] += 1

    def closed_flags(self) -> np.ndarray:
        """Per-shard closed flag, identical to ``_closed_shards`` output."""
        return np.asarray(
            [count == 0 for count in self._open_counts], dtype=bool
        )


def _merge_sorted(old: list[str], added: list[str]) -> tuple[list[str], np.ndarray]:
    """Merge sorted *old* with sorted, disjoint *added*.

    Returns the merged list and the position of each old element in it
    (the old -> new renumbering used to remap CSR indices).
    """
    if not added:
        return old, np.arange(len(old), dtype=np.intp)
    merged: list[str] = []
    old_pos = np.empty(len(old), dtype=np.intp)
    i = j = 0
    while i < len(old) and j < len(added):
        if old[i] <= added[j]:
            old_pos[i] = len(merged)
            merged.append(old[i])
            i += 1
        else:
            merged.append(added[j])
            j += 1
    while i < len(old):
        old_pos[i] = len(merged)
        merged.append(old[i])
        i += 1
    merged.extend(added[j:])
    return merged, old_pos


class StreamState:
    """Writer-side mutable mirror of the batch pipeline.

    One writer thread owns the state: :meth:`apply` folds a micro-batch
    into the raw structures, :meth:`build_snapshot` derives the next
    epoch's immutable matrices by patching the previous epoch's.  Readers
    never see this object — they see the :class:`StreamSnapshot`\\ s it
    publishes (copy-on-write: a snapshot's arrays are never mutated by
    later patches, which allocate fresh ones).

    Args:
        sessionizer: Online session segmentation parameters (the batch
            :func:`repro.logs.sessionizer.sessionize` rules, applied
            record-at-a-time).
        weighted: Apply the cfiqf scheme of Eqs. 4-6; ``False`` keeps raw
            submission counts (the paper's "raw" ablation).  The entropy
            scheme is inherently global and is not supported online.
        shard_plan: Partition the query side under this
            :class:`~repro.graphs.shard.ShardPlan`: every snapshot then
            also carries per-shard slices, and snapshots whose deltas
            added no queries carry the *minimal* update set — only the
            shards whose bytes changed — so the scale-out pool swaps
            only those shards' segments.  Note the cfiqf correction
            rescales every facet weight whenever ``|Q|`` grows, so
            minimal update sets arise with ``weighted=False`` (raw
            counts); weighted states still shard correctly but every
            epoch updates every shard.
    """

    def __init__(
        self,
        sessionizer: SessionizerConfig | None = None,
        weighted: bool = True,
        shard_plan: ShardPlan | None = None,
    ) -> None:
        self._sessionizer = sessionizer or SessionizerConfig()
        self._weighted = weighted
        self._plan = shard_plan
        self._slices: dict[int, ShardSlice] = {}
        self._log = QueryLog(())
        self._pending: list[QueryRecord] = []
        self._kinds = {kind: _KindState() for kind in BIPARTITE_KINDS}
        self._open: dict[str, _OpenSession] = {}
        self._queries: list[str] = []  # sorted, as of the last snapshot
        self._query_set: set[str] = set()
        self._new_queries: set[str] = set()  # since the last snapshot
        self._touched: set[str] = set()  # union across kinds, ditto
        self._snapshots = 0
        # Sharded bookkeeping kept incremental so snapshots never rescan
        # the whole plane: query -> home shard, the shards dirtied since
        # the last snapshot, the row -> shard array of the last snapshot,
        # and the closedness tracker with its last published flags.
        self._shard_cache: dict[str, int] = {}
        self._dirty_shards: set[int] = set()
        self._row_shard: np.ndarray | None = None
        self._closed = (
            _ClosedTracker(shard_plan.n_shards)
            if shard_plan is not None
            else None
        )
        self._closed_prev: np.ndarray | None = None

    # -- accessors -------------------------------------------------------------

    @property
    def n_records(self) -> int:
        """Records applied so far (including pending, un-snapshotted ones)."""
        return len(self._log) + len(self._pending)

    @property
    def n_pending(self) -> int:
        """Records applied since the last snapshot."""
        return len(self._pending)

    @property
    def n_snapshots(self) -> int:
        """Snapshots built so far."""
        return self._snapshots

    @property
    def shard_plan(self) -> ShardPlan | None:
        """The configured shard plan (``None`` = unsharded)."""
        return self._plan

    # -- micro-batch application ------------------------------------------------

    def apply(self, records: list[QueryRecord]) -> GraphDelta:
        """Fold *records* into the raw structures; ``O(batch)`` work.

        Runs the online sessionizer, updates the three raw bipartites
        (skipping empty normalized queries, exactly like the batch
        builder), and accumulates the touched/new bookkeeping that
        :meth:`build_snapshot` and targeted cache invalidation consume.
        """
        touched: set[str] = set()
        new_queries: set[str] = set()
        new_facets: dict[str, set[str]] = {kind: set() for kind in BIPARTITE_KINDS}
        events: list[tuple[str, str, str | None, tuple[str, ...]]] = []
        for record in records:
            self._pending.append(record)
            session_id = self._sessionize(record)
            query = normalize_query(record.query)
            if not query:
                continue
            if query not in self._query_set:
                self._query_set.add(query)
                new_queries.add(query)
            shard = self._shard_of(query) if self._plan is not None else None
            if record.clicked_url is not None:
                self._add_edge(
                    "U", query, record.clicked_url, shard, touched, new_facets
                )
            self._add_edge("S", query, session_id, shard, touched, new_facets)
            terms = tuple(set(tokenize(query)))
            for term in terms:
                self._add_edge("T", query, term, shard, touched, new_facets)
            events.append((query, session_id, record.clicked_url, terms))
        self._new_queries.update(new_queries)
        self._touched.update(touched)
        touched_shards: frozenset[int] = frozenset()
        if self._plan is not None:
            touched_shards = frozenset(
                self._shard_of(query) for query in touched
            )
            self._dirty_shards.update(touched_shards)
        delta = GraphDelta(
            n_records=len(records),
            touched_queries=frozenset(touched),
            new_queries=frozenset(new_queries),
            new_facets={k: frozenset(v) for k, v in new_facets.items()},
            touched_shards=touched_shards,
        )
        self._after_apply(records, events, delta)
        return delta

    def _after_apply(
        self,
        records: list[QueryRecord],
        events: list[tuple[str, str, str | None, tuple[str, ...]]],
        delta: GraphDelta,
    ) -> None:
        """Fold hook for subclasses; *events* are the folded edge sources.

        Each event is ``(query, session_id, clicked_url, terms)`` for one
        admitted non-empty-query record, in fold order — everything a
        remote fold worker needs to replay :meth:`apply`'s edge updates
        without re-running the (cross-shard, per-user) sessionizer.
        """

    def _shard_of(self, query: str) -> int:
        """Home shard of an already-normalized query, memoized."""
        shard = self._shard_cache.get(query)
        if shard is None:
            shard = self._plan.shard_of(query)
            self._shard_cache[query] = shard
        return shard

    def _add_edge(
        self,
        kind: str,
        query: str,
        facet: str,
        shard: int | None,
        touched: set[str],
        new_facets: dict[str, set[str]],
    ) -> None:
        state = self._kinds[kind]
        known = state.bipartite.facet_query_count(facet) > 0
        state.bipartite.add(query, facet, 1.0)
        state.touched.add(query)
        touched.add(query)
        if not known:
            state.new_facets.add(facet)
            new_facets[kind].add(facet)
        if shard is not None:
            self._closed.add(kind, facet, shard)

    def _sessionize(self, record: QueryRecord) -> str:
        """Online Definition-1 segmentation; returns the record's session id.

        Identical to the batch :func:`sessionize` on per-user time-ordered
        input: same pause/lexical rule, same ``"{user}/{ordinal}"`` ids.
        """
        open_session = self._open.get(record.user_id)
        if open_session is None:
            open_session = _OpenSession(ordinal=0, last_timestamp=record.timestamp)
            self._open[record.user_id] = open_session
        else:
            pause = record.timestamp - open_session.last_timestamp
            if not continues_session(
                open_session.terms, record, pause, self._sessionizer
            ):
                open_session.ordinal += 1
                open_session.terms = set()
            open_session.last_timestamp = record.timestamp
        open_session.terms.update(tokenize(record.query))
        return f"{record.user_id}/{open_session.ordinal}"

    # -- epoch derivation --------------------------------------------------------

    def build_snapshot(self) -> StreamSnapshot:
        """Patch the matrices to cover every applied record; reset deltas.

        The expensive, epoch-granularity step: extends the cumulative log,
        merges new query/facet nodes into the sorted orderings, re-gathers
        only the touched CSR rows, applies the epoch-level iqf correction,
        and re-derives gram/affinity from the patched incidence.
        """
        log_grew = bool(self._pending)
        self._log = self._log.extend(self._pending)
        self._pending = []
        total = self._log.total_queries

        new_sorted = sorted(self._new_queries)
        queries, old_row_pos = _merge_sorted(self._queries, new_sorted)
        old_index = {query: i for i, query in enumerate(self._queries)}
        query_index = {query: i for i, query in enumerate(queries)}
        shard_info = None
        if self._plan is not None:
            shard_info = self._shard_bookkeeping(
                queries, old_row_pos, new_sorted, log_grew
            )

        incidence: dict[str, sparse.csr_matrix] = {}
        affinity: dict[str, sparse.csr_matrix] = {}
        gram: dict[str, sparse.csr_matrix] = {}
        for kind in BIPARTITE_KINDS:
            state = self._kinds[kind]
            facets, old_col_pos = _merge_sorted(
                state.facets, sorted(state.new_facets)
            )
            raw = _patch_raw_csr(
                old=state.raw,
                old_index=old_index,
                old_row_pos=old_row_pos,
                queries=queries,
                query_index=query_index,
                facets=facets,
                old_col_pos=old_col_pos,
                touched=state.touched | self._new_queries,
                bipartite=state.bipartite,
            )
            state.raw = raw
            state.facets = facets
            state.new_facets = set()
            state.touched = set()
            weighted = self._reweight(raw, facets, state.bipartite, total)
            incidence[kind] = weighted
            gram[kind] = _gram_of(weighted)
            affinity[kind] = _affinity_from_gram(gram[kind])

        self._queries = queries
        touched_queries = frozenset(self._touched)
        had_new_queries = bool(self._new_queries)
        self._touched = set()
        self._new_queries = set()
        self._snapshots += 1

        matrices = BipartiteMatrices(
            queries=list(queries),
            query_index=query_index,
            incidence=incidence,
            affinity=affinity,
            transition=_LazyTransitions(incidence),
            gram=gram,
        )
        multibipartite = MultiBipartite(
            {kind: self._kinds[kind].bipartite for kind in BIPARTITE_KINDS}
        )
        shard_slices: dict[int, ShardSlice] | None = None
        shard_updates: dict[int, ShardSlice] | None = None
        if self._plan is not None:
            previous = self._slices or None
            row_shard, closed_now, dirty = shard_info
            if dirty is not None and not dirty:
                # Nothing touched any shard: every slice is byte-identical
                # by construction, so skip the per-shard work entirely.
                shard_slices = dict(previous)
                shard_updates = {}
            else:
                shard_slices = build_shard_slices(
                    matrices,
                    self._plan,
                    multibipartite,
                    previous=previous,
                    dirty_shards=dirty,
                    row_shard=row_shard,
                    closed=closed_now,
                )
                if previous is not None and not had_new_queries:
                    # Unchanged shards came back as the previous epoch's
                    # very objects, so identity is the exact
                    # changed-bytes test.
                    shard_updates = {
                        shard_id: piece
                        for shard_id, piece in shard_slices.items()
                        if piece is not previous.get(shard_id)
                    }
            self._slices = shard_slices
        return StreamSnapshot(
            log=self._log,
            multibipartite=multibipartite,
            matrices=matrices,
            touched_queries=touched_queries,
            shard_plan=self._plan,
            shard_slices=shard_slices,
            shard_updates=shard_updates,
        )

    def _shard_bookkeeping(
        self,
        queries: list[str],
        old_row_pos: np.ndarray,
        new_sorted: list[str],
        log_grew: bool,
    ) -> tuple[np.ndarray, np.ndarray, set[int] | None]:
        """Row-shard map, closed flags, and dirty set for this snapshot.

        ``dirty=None`` means every shard must be (re)derived: first build,
        new queries renumbered the global rows, or a weighted epoch whose
        ``|Q|`` growth rescaled every facet's iqf factor.  Otherwise dirty
        is the union of the shards the applied deltas touched and the
        shards whose closedness flipped — a foreign edge can impurify a
        column a shard touches without touching any of its own rows, which
        drops its cached gram.  Every other shard's slice is byte-stable,
        the invariant :func:`build_shard_slices`'s *dirty_shards* skip
        relies on.

        Consumes the accumulated dirty set and advances the row-shard
        cache and the previous closed flags; call exactly once per
        snapshot, after the query merge.
        """
        prev_rows = self._row_shard
        n_queries = len(queries)
        if new_sorted and prev_rows is not None and prev_rows.size == len(
            old_row_pos
        ):
            row_shard = np.empty(n_queries, dtype=np.intp)
            row_shard[old_row_pos] = prev_rows
            added = np.ones(n_queries, dtype=bool)
            added[old_row_pos] = False
            for position, query in zip(np.flatnonzero(added), new_sorted):
                row_shard[position] = self._shard_of(query)
        elif not new_sorted and prev_rows is not None and prev_rows.size == (
            n_queries
        ):
            row_shard = prev_rows
        else:
            row_shard = np.fromiter(
                (self._shard_of(query) for query in queries),
                dtype=np.intp,
                count=n_queries,
            )
        self._row_shard = row_shard

        closed_now = self._closed.closed_flags()
        flipped: set[int] = set()
        if self._closed_prev is not None:
            flipped = {
                int(shard)
                for shard in np.flatnonzero(self._closed_prev != closed_now)
            }
        self._closed_prev = closed_now
        accumulated = self._dirty_shards
        self._dirty_shards = set()

        dirty: set[int] | None
        if not self._slices or new_sorted or (self._weighted and log_grew):
            dirty = None
        else:
            dirty = set(accumulated) | flipped
        return row_shard, closed_now, dirty

    def _reweight(
        self,
        raw: sparse.csr_matrix,
        facets: list[str],
        bipartite: Bipartite,
        total: int,
    ) -> sparse.csr_matrix:
        """The epoch-level cfiqf correction (Eqs. 4-6 over the live ``|Q|``).

        Every submission shifts ``|Q|`` and therefore every facet's iqf, so
        the correction is a per-facet scalar pass plus one vectorized
        multiply over the raw-count data — scalar math identical to
        :func:`repro.graphs.weighting.apply_cfiqf`, hence bit-identical
        weights.
        """
        if not self._weighted:
            return _raw_csr(
                raw.data.copy(),
                raw.indices,
                raw.indptr,
                raw.shape,
                sorted_indices=True,
            )
        factors = np.empty(len(facets))
        for j, facet in enumerate(facets):
            count = min(bipartite.facet_weight_sum(facet), float(total))
            factors[j] = max(iqf(total, count), _CFIQF_EPSILON)
        return _raw_csr(
            raw.data * factors[raw.indices],
            raw.indices,
            raw.indptr,
            raw.shape,
            sorted_indices=True,
        )


def _patch_raw_csr(
    old: sparse.csr_matrix | None,
    old_index: dict[str, int],
    old_row_pos: np.ndarray,
    queries: list[str],
    query_index: dict[str, int],
    facets: list[str],
    old_col_pos: np.ndarray,
    touched: set[str],
    bipartite: Bipartite,
    facet_pos: dict[str, int] | None = None,
) -> sparse.csr_matrix:
    """New canonical raw-count CSR from the old one plus a touched set.

    Untouched rows are block-gathered from *old* with their column indices
    renumbered through *old_col_pos* (sorted order is preserved, so the
    result stays canonical); touched rows — including brand-new queries —
    are rebuilt from the raw bipartite dicts in facet-sorted order.  The
    output is identical to ``bipartite.to_matrix(query_index)`` followed by
    ``sort_indices()``, which is what the batch builder produces.
    """
    n_rows = len(queries)
    index_dtype = np.int32 if old is None else old.indices.dtype
    if facet_pos is None:
        facet_pos = {facet: j for j, facet in enumerate(facets)}

    touched_rows = sorted(
        (query_index[query], query) for query in touched if query in query_index
    )
    counts = np.zeros(n_rows, dtype=np.int64)
    untouched_old: np.ndarray | None = None
    if old is not None and len(old_index) > 0:
        mask = np.ones(len(old_index), dtype=bool)
        for query in touched:
            ordinal = old_index.get(query)
            if ordinal is not None:
                mask[ordinal] = False
        untouched_old = np.nonzero(mask)[0]
        old_nnz = np.diff(old.indptr)
        counts[old_row_pos[untouched_old]] = old_nnz[untouched_old]
    row_dicts: dict[int, list[tuple[int, float]]] = {}
    for row, query in touched_rows:
        pairs = sorted(
            (facet_pos[facet], weight)
            for facet, weight in bipartite.facets_of(query).items()
        )
        row_dicts[row] = pairs
        counts[row] = len(pairs)

    indptr = np.zeros(n_rows + 1, dtype=index_dtype)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])
    indices = np.empty(total, dtype=index_dtype)
    data = np.empty(total, dtype=np.float64)

    if untouched_old is not None and untouched_old.size:
        src_indices, src_data, src_indptr = _take_rows(old, untouched_old)
        seg_counts = np.diff(src_indptr)
        dest_rows = old_row_pos[untouched_old]
        dest_starts = indptr[dest_rows].astype(np.int64)
        offsets = np.arange(src_indices.size, dtype=np.int64) - np.repeat(
            src_indptr[:-1].astype(np.int64), seg_counts
        )
        dest = np.repeat(dest_starts, seg_counts) + offsets
        colmap = old_col_pos.astype(index_dtype)
        indices[dest] = colmap[src_indices]
        data[dest] = src_data

    for row, pairs in row_dicts.items():
        lo, hi = int(indptr[row]), int(indptr[row + 1])
        if pairs:
            cols, weights = zip(*pairs)
            indices[lo:hi] = np.asarray(cols, dtype=index_dtype)
            data[lo:hi] = np.asarray(weights, dtype=np.float64)

    return _raw_csr(
        data,
        indices,
        indptr,
        (n_rows, len(facets)),
        sorted_indices=True,
    )
