"""Streaming log ingestion: incremental updates, epoch snapshots, invalidation.

The batch pipeline (``PQSDA.build``) rebuilds the whole multi-bipartite
representation from scratch; this package keeps a *live* suggester current
as new log records arrive:

* :mod:`repro.stream.delta` — :class:`StreamState` folds micro-batches
  into the raw bipartites in ``O(batch)`` and derives epoch matrices by
  patching (bit-identical to a batch rebuild over the same prefix);
* :mod:`repro.stream.epoch` — :class:`EpochManager` publishes immutable
  copy-on-write :class:`Epoch` snapshots; readers pin one epoch per
  request, writers never block them;
* :mod:`repro.stream.ingest` — :class:`LogIngestor` drives the loop from
  any record source (:func:`replay`, :func:`tail_aol`, plain iterables)
  behind an online cleaning gate.

:func:`streaming_pqsda` wires all of it to a ``PQSDA`` suggester whose
serving cache is invalidated *targetedly*: after each epoch swap only the
cached entries whose neighbourhood intersects the delta's touched queries
are rebuilt.  With ``stream_profiles=True`` the personalization layer
streams too: admitted click records fold into new
:class:`~repro.personalize.profiles.ArrayProfileStore` generations that
ride each epoch (``Epoch.profiles``) and rebind into the suggester — and,
downstream, republish through the scale-out pool's shared profile plane.
"""

from __future__ import annotations

from repro.core.config import PQSDAConfig
from repro.core.suggester import PQSDA
from repro.logs.sessionizer import SessionizerConfig
from repro.logs.storage import QueryLog
from repro.stream.delta import GraphDelta, StreamSnapshot, StreamState
from repro.stream.epoch import Epoch, EpochManager, EpochStats
from repro.stream.ingest import (
    IngestConfig,
    IngestReport,
    LogIngestor,
    replay,
    tail_aol,
)

__all__ = [
    "Epoch",
    "EpochManager",
    "EpochStats",
    "GraphDelta",
    "IngestConfig",
    "IngestReport",
    "LogIngestor",
    "StreamSnapshot",
    "StreamState",
    "replay",
    "tail_aol",
    "streaming_pqsda",
]


def streaming_pqsda(
    bootstrap_log: QueryLog,
    config: PQSDAConfig | None = None,
    ingest: IngestConfig | None = None,
    sessionizer: SessionizerConfig | None = None,
    registry=None,
    stream_profiles: bool = False,
    shard_plan=None,
    fold_workers: int = 0,
) -> tuple[PQSDA, LogIngestor, EpochManager]:
    """Build a live suggester over *bootstrap_log*; return its stream plumbing.

    Bootstraps a :class:`StreamState` from the log (records are replayed in
    the batch sessionizer's ``(timestamp, record_id)`` order, so epoch 0 is
    bit-identical to ``PQSDA.build`` over the same log), publishes it as
    epoch 0 of a fresh :class:`EpochManager`, attaches the suggester to the
    manager, and wraps the state in a :class:`LogIngestor` ready to drain
    live sources.  Returns ``(suggester, ingestor, manager)``.

    Pass a :class:`~repro.obs.registry.MetricsRegistry` as *registry* to
    observe the whole stack at once: UPM training, serving cache + spans,
    epoch lifecycle, and the ingest loop all feed the same registry.

    The UPM personalization stage is batch-fitted on the bootstrap log.
    By default profiles then stay frozen (the paper's profiles are offline
    artifacts); with *stream_profiles* (requires ``config.personalize``)
    the fitted store is converted to its array form, bound to the
    suggester, and handed to the ingestor — admitted click records then
    fold into new profile generations that ride each epoch
    (``Epoch.profiles``), so the suggester's personalization stays
    click-current alongside the graph.

    With *shard_plan* (a :class:`~repro.graphs.shard.ShardPlan`) the
    state shards the query side: every epoch carries per-shard slices and
    — for deltas that add no queries — the minimal per-shard update set,
    which a sharded :class:`~repro.serve.pool.SuggestWorkerPool`
    subscribed via ``attach_epochs`` consumes as independent per-shard
    segment swaps.

    *fold_workers* >= 1 (requires *shard_plan*) swaps the state for a
    :class:`~repro.stream.parallel.ParallelStreamState`: that many
    persistent fold processes derive the per-shard slices concurrently
    and the ingestor pipelines epoch publishes with the next batch's
    fold.  Bit-identical to the serial fold at any worker count; call
    ``ingestor.state.close()`` when done to stop the workers.
    """
    if config is None:
        config = PQSDAConfig()
    if stream_profiles and not config.personalize:
        raise ValueError("stream_profiles requires config.personalize")
    if fold_workers:
        if shard_plan is None:
            raise ValueError("fold_workers requires a shard_plan")
        from repro.stream.parallel import ParallelStreamState

        state = ParallelStreamState(
            sessionizer=sessionizer,
            weighted=config.weighted,
            shard_plan=shard_plan,
            fold_workers=fold_workers,
            registry=registry,
        )
    else:
        state = StreamState(
            sessionizer=sessionizer,
            weighted=config.weighted,
            shard_plan=shard_plan,
        )
    records = sorted(
        bootstrap_log.records, key=lambda r: (r.timestamp, r.record_id)
    )
    state.apply(records)
    snapshot = state.build_snapshot()
    epoch0 = Epoch.from_snapshot(0, snapshot)
    manager = EpochManager(epoch0, registry=registry)
    suggester = PQSDA.build(
        snapshot.log,
        sessions=None if config.personalize else [],
        config=config,
        multibipartite=snapshot.multibipartite,
        expander=epoch0.expander,
        registry=registry,
    )
    suggester.attach_epochs(manager)
    profiles = None
    if stream_profiles and suggester.profiles is not None:
        from repro.personalize.profiles import ArrayProfileStore

        profiles = ArrayProfileStore(suggester.profiles.to_arrays())
        profiles.attach_metrics(registry)
        # Rebase serving on the array store so epoch rebinds swap like
        # for like (generation 0 scores bit-identically to the model).
        suggester.rebind_profiles(profiles)
    ingestor = LogIngestor(
        state, manager, ingest, registry=registry, profiles=profiles
    )
    return suggester, ingestor, manager
