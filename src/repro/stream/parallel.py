"""Process-parallel sharded ingest: per-shard folds, lazy global planes.

The serial :class:`~repro.stream.delta.StreamState` derives everything on
one thread: fold, per-kind CSR patch, gram/affinity, walk stacks, *and*
every shard's :class:`~repro.graphs.shard.ShardSlice`.  At production
ingest rates the slice derivation dominates — and it is embarrassingly
parallel, because PR 8's shard plane guarantees that disjoint micro
batches fold into disjoint shard structures.

:class:`ParallelStreamState` splits the work across a pool of persistent
spawn-safe fold workers:

* the **writer thread** keeps everything cross-shard: the online
  sessionizer (per-user state spans shards), the raw bipartites, the
  cumulative log, and the :class:`~repro.stream.delta.GraphDelta`
  bookkeeping.  Each applied micro-batch is *partitioned* across the
  pool: a worker receives only the events ``(query, session_id,
  clicked_url, terms)`` homed on its shards — sessionization already
  resolved, so workers never need cross-shard state.  Edge weights are
  integer occurrence counts, and a cell only ever involves one home
  query, so folding just a partition is bit-identical to the serial
  per-event ``+ 1.0`` accumulation and the pool's total fold work stays
  at one batch's worth instead of ``n_workers`` times that;
* each **fold worker** homes one or more shards (shard ``s`` lives on
  worker ``s % n_workers``) and keeps *zero* global state: the merged
  facet vocabularies, the cfiqf factor arrays, and the per-shard row
  index arrays are computed exactly once per epoch by the writer (which
  needs them for its own bookkeeping anyway) and arrive inside the snap
  message, replayed worker-side as pure numpy scatters.  The worker
  mirrors exactly the per-shard share of the serial derivation:
  home-row raw CSRs patched with the very
  :func:`~repro.stream.delta._patch_raw_csr` the serial path uses, and
  slice derivation (local renumber, reweight against the shipped global
  factors, gram for closed shards).  A shard whose content is unchanged
  answers with its id, not its bytes — the same
  :func:`~repro.graphs.shard._slice_reusable` identity test the serial
  ``build_shard_slices(previous=...)`` reuse runs;
* the snapshot is **split into** :meth:`ParallelStreamState.begin_snapshot`
  (advance the log, merge vocabularies, request slices) **and**
  :meth:`ParallelStreamState.finish_snapshot` (collect the per-shard
  update sets, assemble the :class:`~repro.stream.delta.StreamSnapshot`),
  so the :class:`~repro.stream.ingest.LogIngestor` folds the *next*
  micro-batch while workers still derive the previous epoch's slices — a
  bounded window of one in-flight snapshot, which preserves epoch
  ordering and :class:`~repro.stream.epoch.EpochManager` pinning
  semantics because epoch ids are assigned at publish time on the single
  writer thread.

The global plane is **lazy**: a parallel snapshot carries a
:class:`LazyEpochPlane` instead of materialized global matrices.  The
stitched incidence, gram/affinity, and expander stacks are derived only
when something actually needs the global view (a spilling walk, a
bootstrap build); epochs that are consumed through their shard slices —
the steady state of a sharded deployment — skip the global
gram/affinity/stack derivation entirely, which is what turns sharded
ingest from a throughput regression into a win even on one core.

Bit-identity: every number a worker produces is computed by the same
helper, over the same operand bytes, in the same accumulation order as
the serial path (integer-count sums are exact in float64 regardless of
fold order; monotone column renumbering preserves CSR entry order;
scipy's SPA spgemm gives a closed shard's local gram the exact bytes of
the global gram's home block).  The parallel-fold tests pin equality to
the serial fold across worker counts, shard counts, and batch sizes.
"""

from __future__ import annotations

import pickle
import threading
import time
import traceback
from bisect import bisect_left
from dataclasses import dataclass, field
from multiprocessing import get_context

import numpy as np

from repro.graphs.compact import RandomWalkExpander
from repro.graphs.matrices import (
    BipartiteMatrices,
    _affinity_from_gram,
    _gram_of,
    _LazyTransitions,
    _raw_csr,
)
from repro.graphs.multibipartite import BIPARTITE_KINDS, MultiBipartite
from repro.graphs.shard import (
    ShardPlan,
    ShardSlice,
    _slice_reusable,
    stitch_slices,
)
from repro.graphs.weighting import iqf
from repro.logs.sessionizer import SessionizerConfig
from repro.logs.storage import QueryLog
from repro.obs.registry import NULL_REGISTRY
from repro.stream.delta import (
    _CFIQF_EPSILON,
    GraphDelta,
    StreamSnapshot,
    StreamState,
    _merge_sorted,
    _patch_raw_csr,
)

__all__ = ["LazyEpochPlane", "ParallelStreamState"]


# -- lazy global plane -----------------------------------------------------------


class LazyEpochPlane:
    """Deferred global matrices/expander over one epoch's shard slices.

    Materialization stitches the slices back into the exact global
    incidence (see :func:`~repro.graphs.shard.stitch_slices`) and then
    derives gram/affinity with the same helpers the serial snapshot path
    uses — bit-identical bytes, paid only on first real use and at most
    once (thread-safe).
    """

    def __init__(
        self,
        slices: dict[int, ShardSlice],
        multibipartite: MultiBipartite,
    ) -> None:
        self._slices = dict(slices)
        self.multibipartite = multibipartite
        self._lock = threading.Lock()
        self._matrices: BipartiteMatrices | None = None
        self._expander: "LazyExpander | None" = None

    @property
    def materialized(self) -> bool:
        """Whether the global matrices have been stitched yet."""
        return self._matrices is not None

    def matrices(self) -> BipartiteMatrices:
        """The stitched global matrices (materializing on first call)."""
        with self._lock:
            if self._matrices is None:
                stitched = stitch_slices(self._slices)
                incidence = dict(stitched.incidence)
                gram = {
                    kind: _gram_of(incidence[kind]) for kind in BIPARTITE_KINDS
                }
                affinity = {
                    kind: _affinity_from_gram(gram[kind])
                    for kind in BIPARTITE_KINDS
                }
                self._matrices = BipartiteMatrices(
                    queries=stitched.queries,
                    query_index=stitched.query_index,
                    incidence=incidence,
                    affinity=affinity,
                    transition=_LazyTransitions(incidence),
                    gram=gram,
                )
            return self._matrices

    def matrices_view(self) -> "LazyPlaneMatrices":
        """A matrices stand-in that materializes on attribute access."""
        return LazyPlaneMatrices(self)

    def expander(self) -> "LazyExpander":
        """The epoch expander, deriving its stacks on first walk."""
        with self._lock:
            if self._expander is None:
                self._expander = LazyExpander(self)
            return self._expander


class LazyPlaneMatrices:
    """``BipartiteMatrices`` stand-in forwarding to a :class:`LazyEpochPlane`.

    Stored as ``StreamSnapshot.matrices`` / ``Epoch.matrices`` by the
    parallel path; the first attribute access stitches the plane, so
    consumers that never look (per-shard epoch swaps) never pay.
    """

    __slots__ = ("_plane",)

    def __init__(self, plane: LazyEpochPlane) -> None:
        self._plane = plane

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        return getattr(self._plane.matrices(), name)


class LazyExpander(RandomWalkExpander):
    """A walk expander whose global stacks are derived on first use.

    ``Epoch.from_snapshot`` eagerly wraps every snapshot in an expander;
    for parallel epochs that would force the stitched plane per publish.
    This subclass defers the whole base ``__init__`` until a walk (or a
    ``matrices``/``walk_stacks`` read) actually happens.
    """

    def __init__(self, plane: LazyEpochPlane) -> None:
        self._plane = plane
        self._force_lock = threading.Lock()
        self._forced = False

    def _force(self) -> None:
        with self._force_lock:
            if not self._forced:
                RandomWalkExpander.__init__(
                    self,
                    self._plane.multibipartite,
                    matrices=self._plane.matrices(),
                )
                self._forced = True

    @property
    def matrices(self) -> BipartiteMatrices:
        self._force()
        return self._matrices

    @property
    def walk_stacks(self):
        self._force()
        return self._forward_stack, self._backward_stack

    def walk_mass(self, seeds, config):
        self._force()
        return RandomWalkExpander.walk_mass(self, seeds, config)

    def expand(self, seeds, config=None):
        self._force()
        return RandomWalkExpander.expand(self, seeds, config)


# -- fold worker (child process) --------------------------------------------------


class _DictFacets:
    """Duck-typed stand-in for ``Bipartite`` inside ``_patch_raw_csr``.

    The patcher only calls ``facets_of(query)`` on touched rows; the
    worker's raw edge dicts answer directly.
    """

    __slots__ = ("_edges",)

    def __init__(self, edges: dict[str, dict[str, float]]) -> None:
        self._edges = edges

    def facets_of(self, query: str) -> dict[str, float]:
        return self._edges.get(query, {})


class _SortedPos:
    """Read-only ``facet name -> global column`` view over a sorted array.

    :func:`~repro.stream.delta._patch_raw_csr` only ever point-looks-up
    the facets of touched rows, so a bisect per lookup beats rebuilding
    the full position dict (``O(n_facets)``) every epoch.
    """

    __slots__ = ("_facets",)

    def __init__(self, facets) -> None:
        self._facets = facets

    def __getitem__(self, name: str) -> int:
        return bisect_left(self._facets, name)


class _WorkerKind:
    """One bipartite kind's worker-side mirror state."""

    __slots__ = ("facets", "edges", "touched")

    def __init__(self) -> None:
        self.facets = np.empty(0, dtype=object)  # global sorted columns
        self.edges: dict[str, dict[str, float]] = {}  # home queries only
        self.touched: set[str] = set()  # home queries with edge changes


class _WorkerShard:
    """One home shard's raw CSRs and prior slice."""

    __slots__ = ("shard_id", "queries", "index", "queries_t", "raw", "prior")

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        # Sorted home queries of the last snapshot, in the three shapes
        # the derive path needs (array for merging, dict for row lookups,
        # tuple for the slice) — kept in sync so epochs that add no home
        # queries rebuild none of them.
        self.queries = np.empty(0, dtype=object)
        self.index: dict[str, int] = {}
        self.queries_t: tuple[str, ...] = ()
        self.raw: dict[str, object | None] = {
            kind: None for kind in BIPARTITE_KINDS
        }
        self.prior: ShardSlice | None = None


def _merge_home(
    old: np.ndarray, added: list[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Merge sorted *added* queries into the sorted object array *old*.

    Same contract as :func:`~repro.stream.delta._merge_sorted` — returns
    ``(merged, old_pos)`` — but the element shuffling happens as numpy
    scatters, so only the (few) added queries pay python-level string
    comparisons instead of the whole home list re-merging every epoch.
    """
    n_old = old.size
    added_arr = np.array(added, dtype=object)
    insert_pos = np.searchsorted(old, added_arr)
    old_pos = np.arange(n_old, dtype=np.intp)
    old_pos += np.searchsorted(insert_pos, old_pos, side="right")
    merged = np.empty(n_old + added_arr.size, dtype=object)
    merged[old_pos] = old
    merged[insert_pos + np.arange(added_arr.size, dtype=np.intp)] = added_arr
    return merged, old_pos


class _WorkerState:
    """The full fold-worker state machine (runs in the child process).

    A worker owns *only* its home shards' rows: the raw edge dicts, the
    home CSRs, and the prior slices.  Everything global — the merged
    facet column spaces, the cfiqf factor arrays, the per-shard row
    index arrays — is computed exactly once per epoch by the writer
    (which needs it for its own bookkeeping anyway) and arrives inside
    the snap message, so the pool never replicates cross-shard work.
    """

    def __init__(self, home_shards: tuple[int, ...], weighted: bool) -> None:
        self._home = tuple(home_shards)
        self._weighted = weighted
        self._kinds = {kind: _WorkerKind() for kind in BIPARTITE_KINDS}
        self._shards = {s: _WorkerShard(s) for s in self._home}

    def fold(self, events) -> None:
        """Fold one micro-batch's home-shard events, in writer fold order.

        Per-cell edge weights are integer occurrence counts, and a cell
        only ever involves one home query — so folding just the events
        homed here reproduces the serial accumulation bit for bit.
        """
        for query, session_id, clicked_url, terms in events:
            if clicked_url is not None:
                self._edge("U", query, clicked_url)
            self._edge("S", query, session_id)
            for term in terms:
                self._edge("T", query, term)

    def _edge(self, kind: str, query: str, facet: str) -> None:
        state = self._kinds[kind]
        row = state.edges.get(query)
        if row is None:
            row = state.edges[query] = {}
        row[facet] = row.get(facet, 0.0) + 1.0
        state.touched.add(query)

    def snapshot(
        self,
        total: int,
        closed_flags,
        n_global: int,
        kind_merges,
        factors,
        shard_rows,
        shard_added,
    ):
        """Derive this worker's dirty home slices for one epoch.

        All cross-shard state arrives precomputed from the writer:
        *total* is ``log.total_queries`` (it counts records the event
        stream excludes); *n_global* the merged global query count;
        *kind_merges* maps kind to ``(old_col_pos, added_facets,
        n_facets)`` — the writer's own facet vocabulary merge, replayed
        here as a pure scatter; *factors* the per-kind global cfiqf
        factor arrays (``None`` when unweighted); *shard_rows* /
        *shard_added* the global row indices and new home queries of
        each dirty home shard.  Returns ``(updates, reused, timings)``.
        """
        kind_info: dict[str, tuple[np.ndarray, np.ndarray, bool]] = {}
        for kind in BIPARTITE_KINDS:
            state = self._kinds[kind]
            old_col_pos, added, n_facets = kind_merges[kind]
            if added:
                merged = np.empty(n_facets, dtype=object)
                merged[old_col_pos] = state.facets
                fresh_pos = np.ones(n_facets, dtype=bool)
                fresh_pos[old_col_pos] = False
                merged[np.flatnonzero(fresh_pos)] = added
                state.facets = merged
            kind_info[kind] = (state.facets, old_col_pos, bool(added))

        # Non-dirty home shards still live in the *global* facet column
        # space: renumber their raw columns through the merge so the next
        # patch's old_col_pos composes correctly.
        for shard_id in self._home:
            if shard_id in shard_rows:
                continue
            shard = self._shards[shard_id]
            for kind in BIPARTITE_KINDS:
                facets, old_col_pos, grew = kind_info[kind]
                old = shard.raw[kind]
                if old is None or not grew:
                    continue
                colmap = old_col_pos.astype(old.indices.dtype)
                shard.raw[kind] = _raw_csr(
                    old.data,
                    colmap[old.indices],
                    old.indptr,
                    (old.shape[0], len(facets)),
                    sorted_indices=True,
                )

        facet_pos = {
            kind: _SortedPos(kind_info[kind][0]) for kind in BIPARTITE_KINDS
        }
        updates: dict[int, ShardSlice] = {}
        reused: list[int] = []
        timings: dict[int, float] = {}
        for shard_id in self._home:
            rows = shard_rows.get(shard_id)
            if rows is None:
                continue
            started = time.perf_counter()
            piece, fresh = self._derive_slice(
                shard_id,
                rows,
                shard_added.get(shard_id, []),
                total,
                bool(closed_flags[shard_id]),
                n_global,
                kind_info,
                factors,
                facet_pos,
            )
            if fresh:
                updates[shard_id] = piece
            else:
                reused.append(shard_id)
            timings[shard_id] = time.perf_counter() - started
        for kind in BIPARTITE_KINDS:
            self._kinds[kind].touched = set()
        return updates, reused, timings

    def _derive_slice(
        self,
        shard_id: int,
        rows: np.ndarray,
        added_home: list[str],
        total: int,
        closed: bool,
        n_global: int,
        kind_info,
        factors,
        facet_pos,
    ) -> tuple[ShardSlice, bool]:
        """Patch one home shard's raw rows and cut its slice.

        Mirrors the serial ``build_shard_slices`` per-shard block over the
        worker's home-row CSRs; returns ``(slice, fresh)`` where a stale
        *fresh* means the prior slice already holds these exact bytes.
        """
        shard = self._shards[shard_id]
        old_home_index = shard.index
        if added_home:
            home_queries, old_row_pos = _merge_home(shard.queries, added_home)
            shard.queries = home_queries
            shard.index = {q: i for i, q in enumerate(home_queries)}
            shard.queries_t = tuple(home_queries)
        else:
            home_queries = shard.queries
            old_row_pos = np.arange(home_queries.size, dtype=np.intp)
        home_index = shard.index
        queries_t = shard.queries_t
        added_set = set(added_home)

        incidence = {}
        facet_names: dict[str, tuple[str, ...]] = {}
        for kind in BIPARTITE_KINDS:
            facets, old_col_pos, _ = kind_info[kind]
            state = self._kinds[kind]
            raw = _patch_raw_csr(
                old=shard.raw[kind],
                old_index=old_home_index,
                old_row_pos=old_row_pos,
                queries=home_queries,
                query_index=home_index,
                facets=facets,
                old_col_pos=old_col_pos,
                touched=state.touched | added_set,
                bipartite=_DictFacets(state.edges),
                facet_pos=facet_pos[kind],
            )
            shard.raw[kind] = raw
            live = np.unique(raw.indices)
            local_indices = np.searchsorted(live, raw.indices).astype(
                raw.indices.dtype
            )
            if self._weighted:
                # Per-entry multiply against the global factor array —
                # the same ``raw_count * factor(column)`` float64 product
                # the serial reweight computes for this entry.
                data = raw.data * factors[kind][raw.indices]
            else:
                data = raw.data.copy()
            incidence[kind] = _raw_csr(
                data,
                local_indices,
                raw.indptr,
                (int(rows.size), int(live.size)),
                sorted_indices=True,
            )
            facet_names[kind] = tuple(facets[live])

        prior = shard.prior
        if prior is not None and _slice_reusable(
            prior,
            queries_t,
            rows,
            n_global,
            closed,
            incidence,
            facet_names,
            closed,
        ):
            return prior, False
        gram = None
        if closed:
            gram = {
                kind: _gram_of(incidence[kind]) for kind in BIPARTITE_KINDS
            }
        piece = ShardSlice(
            shard_id=shard_id,
            queries=queries_t,
            rows=rows,
            n_queries_global=n_global,
            closed=closed,
            incidence=incidence,
            facet_names=facet_names,
            gram=gram,
        )
        shard.prior = piece
        return piece, True


def _fold_worker_main(conn, home_shards, weighted) -> None:
    """Entry point of one persistent fold worker (spawn context).

    Serial loop over the duplex pipe: ``fold`` messages mutate state and
    answer nothing; ``snap`` messages answer ``("slices", snap_id,
    updates, reused, timings)`` or ``("error", snap_id, traceback)``.
    Message order on the pipe is the synchronization — a snap sees
    exactly the folds sent before it.
    """
    state = _WorkerState(tuple(home_shards), weighted)
    poisoned: str | None = None
    try:
        while True:
            message = conn.recv()
            tag = message[0]
            if tag == "stop":
                return
            if tag == "fold":
                try:
                    if poisoned is None:
                        state.fold(message[1])
                except Exception:  # pragma: no cover - defensive
                    poisoned = traceback.format_exc()
            elif tag == "snap":
                snap_id = message[1]
                if poisoned is not None:
                    conn.send(("error", snap_id, poisoned))
                    continue
                try:
                    updates, reused, timings = state.snapshot(
                        *pickle.loads(message[2]), message[3], message[4]
                    )
                except Exception:
                    conn.send(("error", snap_id, traceback.format_exc()))
                else:
                    conn.send(("slices", snap_id, updates, reused, timings))
    except (EOFError, OSError, KeyboardInterrupt):  # writer went away
        pass
    finally:
        conn.close()


# -- writer side -----------------------------------------------------------------


@dataclass
class _WorkerHandle:
    """Writer-side view of one fold worker."""

    worker_id: int
    process: object
    conn: object


@dataclass
class _SnapToken:
    """One in-flight snapshot between begin and finish."""

    snap_id: int
    log: QueryLog
    multibipartite: MultiBipartite
    touched_queries: frozenset[str]
    had_new_queries: bool
    previous: dict[int, ShardSlice]
    awaiting: bool
    finished: bool = field(default=False)


class ParallelStreamState(StreamState):
    """A :class:`StreamState` whose shard slices are derived in processes.

    The writer thread owns everything cross-shard (sessionizer, raw
    bipartites, log, delta bookkeeping); ``fold_workers`` persistent
    spawn processes own the per-shard CSR patching and slice derivation,
    one or more home shards each.  ``build_snapshot()`` stays drop-in
    (begin + finish back to back); the pipelined
    :meth:`begin_snapshot`/:meth:`finish_snapshot` split lets the ingest
    loop overlap the next fold with the in-flight derivation — at most
    one snapshot in flight, so epoch ordering never changes.

    Snapshots carry a :class:`LazyEpochPlane` instead of materialized
    global matrices; see the module docstring for the exact-equivalence
    argument.
    """

    def __init__(
        self,
        sessionizer: SessionizerConfig | None = None,
        weighted: bool = True,
        shard_plan: ShardPlan | None = None,
        fold_workers: int = 1,
        registry=None,
    ) -> None:
        if shard_plan is None:
            raise ValueError("ParallelStreamState requires a shard_plan")
        if fold_workers < 1:
            raise ValueError(
                f"fold_workers must be >= 1, got {fold_workers}"
            )
        super().__init__(
            sessionizer=sessionizer, weighted=weighted, shard_plan=shard_plan
        )
        # Per-facet occurrence counts, maintained incrementally from the
        # fold events (integer sums — exact in float64) so the per-epoch
        # cfiqf factor arrays never re-walk the bipartites.
        self._pool_weights: dict[str, dict[str, float]] = {
            kind: {} for kind in BIPARTITE_KINDS
        }
        n_workers = min(fold_workers, shard_plan.n_shards)
        self._home_map = {
            worker_id: tuple(
                s for s in range(shard_plan.n_shards)
                if s % n_workers == worker_id
            )
            for worker_id in range(n_workers)
        }
        context = get_context("spawn")
        self._workers: list[_WorkerHandle] = []
        for worker_id in range(n_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_fold_worker_main,
                args=(
                    child_conn,
                    self._home_map[worker_id],
                    weighted,
                ),
                daemon=True,
                name=f"fold-worker-{worker_id}",
            )
            process.start()
            child_conn.close()
            self._workers.append(
                _WorkerHandle(worker_id, process, parent_conn)
            )
        self._snap_id = 0
        self._inflight: _SnapToken | None = None
        self._closed_down = False
        self.attach_metrics(registry)

    # -- observability ----------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Bind the parallel-fold instruments (``stream.ingest.*``)."""
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._m_workers = self._registry.gauge("stream.ingest.fold_workers")
        self._m_workers.set(len(self._workers))
        self._m_stalls = self._registry.counter(
            "stream.ingest.pipeline_stalls"
        )
        self._m_stall_seconds = self._registry.histogram(
            "stream.ingest.pipeline_stall_seconds"
        )
        self._m_shard_fold: dict[int, object] = {}

    @property
    def fold_workers(self) -> int:
        """Number of live fold worker processes."""
        return len(self._workers)

    @property
    def home_map(self) -> dict[int, tuple[int, ...]]:
        """Worker id -> home shard ids."""
        return dict(self._home_map)

    def _shard_fold_histogram(self, shard_id: int):
        histogram = self._m_shard_fold.get(shard_id)
        if histogram is None:
            histogram = self._registry.histogram(
                "stream.ingest.shard_fold_seconds",
                labels={"shard": str(shard_id)},
            )
            self._m_shard_fold[shard_id] = histogram
        return histogram

    # -- fold broadcast ----------------------------------------------------------

    def _after_apply(self, records, events, delta: GraphDelta) -> None:
        """Ship the batch to the pool, partitioned by home worker.

        Each worker receives only the events homed on its shards — the
        only part of a batch whose per-event order matters to it.  The
        batch's global side (facet occurrence counts for the cfiqf
        factors) folds into the writer's own counters here, in the same
        pass; integer sums are exact in float64 under any grouping.  On
        a saturated box this is what keeps the pool's total fold work at
        one batch's worth instead of ``n_workers`` times that.
        """
        n_workers = len(self._workers)
        parts: list[list] = [[] for _ in range(n_workers)]
        if self._weighted:
            url_weights = self._pool_weights["U"]
            session_weights = self._pool_weights["S"]
            term_weights = self._pool_weights["T"]
            for event in events:
                query, session_id, clicked_url, terms = event
                parts[self._shard_of(query) % n_workers].append(event)
                if clicked_url is not None:
                    url_weights[clicked_url] = (
                        url_weights.get(clicked_url, 0.0) + 1.0
                    )
                session_weights[session_id] = (
                    session_weights.get(session_id, 0.0) + 1.0
                )
                for term in terms:
                    term_weights[term] = term_weights.get(term, 0.0) + 1.0
        else:
            for event in events:
                parts[self._shard_of(event[0]) % n_workers].append(event)
        for worker, part in zip(self._workers, parts):
            if not part:
                continue
            try:
                worker.conn.send(("fold", part))
            except (BrokenPipeError, OSError):
                self._raise_dead(worker)

    def _broadcast(self, message) -> None:
        """Send one message to every worker, pickling it exactly once.

        ``Connection.recv`` unpickles whatever bytes arrive, so
        ``send_bytes(pickle.dumps(...))`` is wire-compatible with
        ``send(...)`` while skipping the per-worker re-serialization of a
        broadcast — the dominant writer-side cost of a fold fan-out.
        """
        payload = pickle.dumps(message)
        for worker in self._workers:
            try:
                worker.conn.send_bytes(payload)
            except (BrokenPipeError, OSError):
                self._raise_dead(worker)

    # -- pipelined snapshots -----------------------------------------------------

    def begin_snapshot(self) -> _SnapToken:
        """Advance the stream bookkeeping and request slices from workers.

        Returns a token for :meth:`finish_snapshot`.  At most one snapshot
        may be in flight; records applied after ``begin_snapshot`` belong
        to the *next* epoch on the writer and on every worker alike (pipe
        order is the synchronization barrier).
        """
        if self._inflight is not None:
            raise RuntimeError(
                "a snapshot is already in flight; finish it first"
            )
        log_grew = bool(self._pending)
        self._log = self._log.extend(self._pending)
        self._pending = []
        total = self._log.total_queries

        new_sorted = sorted(self._new_queries)
        queries, old_row_pos = _merge_sorted(self._queries, new_sorted)
        had_new_queries = bool(new_sorted)
        row_shard, closed_now, dirty = self._shard_bookkeeping(
            queries, old_row_pos, new_sorted, log_grew
        )
        kind_merges: dict[str, tuple[np.ndarray, list[str], int]] = {}
        for kind in BIPARTITE_KINDS:
            state = self._kinds[kind]
            added_facets = sorted(state.new_facets)
            state.facets, old_col_pos = _merge_sorted(
                state.facets, added_facets
            )
            kind_merges[kind] = (old_col_pos, added_facets, len(state.facets))
            state.new_facets = set()
            state.touched = set()
        self._queries = queries
        touched_queries = frozenset(self._touched)
        self._touched = set()
        self._new_queries = set()
        self._snapshots += 1

        multibipartite = MultiBipartite(
            {kind: self._kinds[kind].bipartite for kind in BIPARTITE_KINDS}
        )
        self._snap_id += 1
        awaiting = dirty is None or bool(dirty)
        if awaiting:
            added_by_shard: dict[int, list[str]] = {}
            for query in new_sorted:
                added_by_shard.setdefault(self._shard_of(query), []).append(
                    query
                )
            factors: dict[str, np.ndarray] | None = None
            if self._weighted:
                cap = float(total)
                factors = {}
                for kind in BIPARTITE_KINDS:
                    weights = self._pool_weights[kind]
                    facets = self._kinds[kind].facets
                    arr = np.empty(len(facets))
                    for j, name in enumerate(facets):
                        count = weights[name]
                        if count > cap:
                            count = cap
                        arr[j] = max(iqf(total, count), _CFIQF_EPSILON)
                    factors[kind] = arr
            closed_flags = tuple(bool(flag) for flag in closed_now)
            # The global side of the snap (merges, factors, flags) is the
            # same for every worker — pickle it once and embed the bytes,
            # so the fan-out pays one serialization instead of one per
            # worker.
            common = pickle.dumps(
                (total, closed_flags, len(queries), kind_merges, factors),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            for worker in self._workers:
                shard_rows: dict[int, np.ndarray] = {}
                shard_added: dict[int, list[str]] = {}
                for shard_id in self._home_map[worker.worker_id]:
                    if dirty is not None and shard_id not in dirty:
                        continue
                    shard_rows[shard_id] = np.flatnonzero(
                        row_shard == shard_id
                    )
                    added_home = added_by_shard.get(shard_id)
                    if added_home:
                        shard_added[shard_id] = added_home
                try:
                    worker.conn.send(
                        ("snap", self._snap_id, common, shard_rows, shard_added)
                    )
                except (BrokenPipeError, OSError):
                    self._raise_dead(worker)
        token = _SnapToken(
            snap_id=self._snap_id,
            log=self._log,
            multibipartite=multibipartite,
            touched_queries=touched_queries,
            had_new_queries=had_new_queries,
            previous=dict(self._slices),
            awaiting=awaiting,
        )
        self._inflight = token
        return token

    def finish_snapshot(self, token: _SnapToken) -> StreamSnapshot:
        """Collect the workers' update sets and assemble the snapshot."""
        if self._inflight is not token or token.finished:
            raise RuntimeError("finish_snapshot got a stale snapshot token")
        self._inflight = None
        token.finished = True
        updates: dict[int, ShardSlice] = {}
        if token.awaiting:
            stall_seconds = 0.0
            for worker in self._workers:
                if not worker.conn.poll(0):
                    waited = time.perf_counter()
                    self._wait_for_reply(worker)
                    stall_seconds += time.perf_counter() - waited
                message = self._recv(worker)
                if message[0] == "error":
                    raise RuntimeError(
                        f"fold worker {worker.worker_id} failed:\n"
                        f"{message[2]}"
                    )
                if message[0] != "slices" or message[1] != token.snap_id:
                    raise RuntimeError(
                        f"fold worker {worker.worker_id} answered out of "
                        f"order: {message[:2]!r} (expected snap "
                        f"{token.snap_id})"
                    )
                _, _, worker_updates, reused, timings = message
                for shard_id in reused:
                    if shard_id not in token.previous:
                        raise RuntimeError(
                            f"fold worker {worker.worker_id} reused shard "
                            f"{shard_id} the writer never saw"
                        )
                updates.update(worker_updates)
                for shard_id, seconds in timings.items():
                    self._shard_fold_histogram(shard_id).observe(seconds)
            if stall_seconds > 0.0:
                self._m_stalls.inc()
                self._m_stall_seconds.observe(stall_seconds)

        slices = dict(token.previous)
        slices.update(updates)
        if len(slices) != self._plan.n_shards:
            raise RuntimeError(
                f"epoch slice set covers {len(slices)} of "
                f"{self._plan.n_shards} shards"
            )
        shard_updates = (
            None if (not token.previous or token.had_new_queries) else updates
        )
        self._slices = slices
        plane = LazyEpochPlane(slices, token.multibipartite)
        return StreamSnapshot(
            log=token.log,
            multibipartite=token.multibipartite,
            matrices=plane.matrices_view(),
            touched_queries=token.touched_queries,
            shard_plan=self._plan,
            shard_slices=slices,
            shard_updates=shard_updates,
            plane=plane,
        )

    def build_snapshot(self) -> StreamSnapshot:
        """Serial-compatible snapshot: begin and finish back to back."""
        return self.finish_snapshot(self.begin_snapshot())

    # -- worker lifecycle --------------------------------------------------------

    def _wait_for_reply(self, worker: _WorkerHandle) -> None:
        while not worker.conn.poll(0.05):
            if not worker.process.is_alive() and not worker.conn.poll(0):
                self._raise_dead(worker)

    def _recv(self, worker: _WorkerHandle):
        try:
            return worker.conn.recv()
        except (EOFError, OSError):
            self._raise_dead(worker)

    def _raise_dead(self, worker: _WorkerHandle):
        worker.process.join(timeout=1.0)
        code = worker.process.exitcode
        raise RuntimeError(
            f"fold worker {worker.worker_id} died (exit code {code}); "
            "the stream state is stale — restart ingest from the last "
            "published epoch"
        )

    def close(self) -> None:
        """Stop the fold workers; the state must not be used afterwards."""
        if self._closed_down:
            return
        self._closed_down = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass
