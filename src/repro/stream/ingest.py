"""Streaming log ingestion: sources, online cleaning, micro-batch publishing.

:class:`LogIngestor` is the writer loop of the streaming subsystem.  It
pulls :class:`~repro.logs.schema.QueryRecord` events from any iterable
source — an in-memory iterator, a paced :func:`replay` of a historical
log, or a :func:`tail_aol` file tail — passes each through an *online*
cleaning gate (the per-record subset of
:class:`~repro.logs.cleaning.CleaningRules` plus a running robot-volume
filter), folds them into a :class:`~repro.stream.delta.StreamState` in
micro-batches, and publishes an :class:`~repro.stream.epoch.Epoch` every
``epoch_every`` batches.

Cleaning online vs. batch: thresholds that need the *whole* log
(``min_query_frequency``) cannot be applied to a live stream — a query's
first arrival cannot know its final frequency.  The online gate therefore
enforces only the per-record rules (term-count bounds, URL declicking) and
the robot filter as a running volume cut-off; feed :func:`replay` an
already-cleaned log when exact batch-equivalence matters (the equivalence
tests do exactly that).

Profile feedback: when the ingestor is handed a profile store, admitted
*click* records additionally accumulate as personalization feedback.  At
each epoch publish the buffered clicks fold into a new profile generation
(:meth:`~repro.personalize.profiles.ArrayProfileStore.fold_feedback`) that
rides the epoch (``Epoch.profiles``); epochs without new clicks carry
``profiles=None`` — unchanged — so subscribers rebind only on real
updates.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.logs.aol import parse_aol_line
from repro.logs.cleaning import CleaningRules
from repro.logs.schema import QueryRecord
from repro.obs.registry import NULL_REGISTRY
from repro.personalize.profiles import ArrayProfileStore, UserProfileStore
from repro.stream.delta import StreamState
from repro.stream.epoch import Epoch, EpochManager
from repro.utils.text import normalize_query, tokenize

__all__ = ["IngestConfig", "IngestReport", "LogIngestor", "replay", "tail_aol"]


@dataclass(frozen=True, slots=True)
class IngestConfig:
    """Knobs of one :class:`LogIngestor`.

    Attributes:
        batch_size: Records folded into the graph state per micro-batch.
        epoch_every: Micro-batches between epoch publishes (1 = publish
            after every batch; larger values amortize the patch cost).
        clean: Run the online cleaning gate; ``False`` admits every record
            verbatim (what the batch-equivalence tests use).
        rules: Thresholds for the gate (only the per-record subset and
            ``max_user_queries`` apply online; see the module docstring).
    """

    batch_size: int = 256
    epoch_every: int = 1
    clean: bool = True
    rules: CleaningRules = field(default_factory=CleaningRules)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.epoch_every < 1:
            raise ValueError(f"epoch_every must be >= 1, got {self.epoch_every}")


@dataclass(slots=True)
class IngestReport:
    """What one :meth:`LogIngestor.ingest` run did.

    ``records_seen`` counts source events; ``records_ingested`` the subset
    admitted past the cleaning gate into the graph state.
    """

    records_seen: int = 0
    records_ingested: int = 0
    dropped_terms: int = 0
    dropped_robot: int = 0
    declicked_urls: int = 0
    batches: int = 0
    epochs_published: int = 0
    elapsed_seconds: float = 0.0
    fold_seconds: float = 0.0
    publish_seconds: float = 0.0

    @property
    def records_per_second(self) -> float:
        """Admitted-record end-to-end throughput (0.0 on an empty run).

        Includes epoch-publish time; :attr:`fold_records_per_second`
        isolates the fold path.
        """
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.records_ingested / self.elapsed_seconds

    @property
    def fold_records_per_second(self) -> float:
        """Admitted-record throughput over fold time only (0.0 if unfolded).

        ``records_ingested / fold_seconds`` — what the graph fold itself
        sustains, with the epoch-publish cost (snapshot derivation and
        manager swap, tracked in :attr:`publish_seconds`) excluded.
        """
        if self.fold_seconds <= 0.0:
            return 0.0
        return self.records_ingested / self.fold_seconds


class LogIngestor:
    """Folds a record stream into epochs through one writer loop.

    Args:
        state: The writer-side graph state (bootstrap records already
            applied and snapshotted, typically via ``streaming_pqsda``).
        manager: Epoch registry the loop publishes to.
        config: Batching / cleaning knobs.
        registry: Optional :class:`~repro.obs.registry.MetricsRegistry`
            the writer loop's ``stream.ingest.*`` metrics feed; ``None``
            binds the no-op null registry.
        profiles: Optional profile store click feedback folds into.  A
            model-backed :class:`~repro.personalize.profiles.UserProfileStore`
            is converted to its array form once up front; ``None`` (the
            default) disables profile feedback entirely.
    """

    def __init__(
        self,
        state: StreamState,
        manager: EpochManager,
        config: IngestConfig | None = None,
        registry=None,
        profiles: ArrayProfileStore | UserProfileStore | None = None,
    ) -> None:
        self._state = state
        self._manager = manager
        self._config = config or IngestConfig()
        self._buffer: list[QueryRecord] = []
        self._batches_since_publish = 0
        self._user_volume: dict[str, int] = {}
        if isinstance(profiles, UserProfileStore):
            profiles = ArrayProfileStore(profiles.to_arrays())
        self._profiles: ArrayProfileStore | None = profiles
        self._feedback: list[QueryRecord] = []
        # Pipelined publish (parallel states only): the one in-flight
        # (snapshot token, profiles) pair between begin and finish.
        self._inflight: tuple[object, ArrayProfileStore | None] | None = None
        self.attach_metrics(registry)

    def attach_metrics(self, registry) -> None:
        """Bind the ingest counters/histograms to *registry* (or detach)."""
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_seen = registry.counter("stream.ingest.records_seen")
        self._m_ingested = registry.counter("stream.ingest.records_ingested")
        self._m_dropped_terms = registry.counter("stream.ingest.dropped_terms")
        self._m_dropped_robot = registry.counter("stream.ingest.dropped_robot")
        self._m_declicked = registry.counter("stream.ingest.declicked_urls")
        self._m_batches = registry.counter("stream.ingest.batches")
        self._m_epochs = registry.counter("stream.ingest.epochs_published")
        self._m_fold_seconds = registry.histogram(
            "stream.ingest.batch_fold_seconds"
        )
        self._m_publish_seconds = registry.histogram(
            "stream.ingest.publish_seconds"
        )
        self._m_rps = registry.gauge("stream.ingest.records_per_second")
        self._m_feedback = registry.counter("stream.ingest.profile_feedback")
        self._m_profile_folds = registry.counter(
            "stream.ingest.profile_folds"
        )

    @property
    def profiles(self) -> ArrayProfileStore | None:
        """The current profile generation (``None`` = feedback disabled)."""
        return self._profiles

    @property
    def config(self) -> IngestConfig:
        """The active batching / cleaning knobs."""
        return self._config

    @property
    def state(self) -> StreamState:
        """The writer-side graph state this loop folds into."""
        return self._state

    def ingest(
        self,
        source: Iterable[QueryRecord],
        publish_remainder: bool = True,
    ) -> IngestReport:
        """Drain *source* into the graph state; return a run report.

        Publishes an epoch every ``epoch_every`` full micro-batches.  With
        *publish_remainder* (the default) a final partial batch — and any
        batches still awaiting their epoch — are flushed and published when
        the source is exhausted, so the stream never ends with records
        invisible to readers.
        """
        report = IngestReport()
        started = time.perf_counter()
        for record in source:
            report.records_seen += 1
            self._m_seen.inc()
            admitted = self._admit(record, report)
            if admitted is None:
                continue
            self._buffer.append(admitted)
            report.records_ingested += 1
            self._m_ingested.inc()
            if self._profiles is not None and admitted.has_click:
                self._feedback.append(admitted)
                self._m_feedback.inc()
            if len(self._buffer) >= self._config.batch_size:
                self._flush(report)
        if self._buffer and publish_remainder:
            self._flush(report)
        if publish_remainder and self._state.n_pending:
            self._publish(report)
        self._drain_inflight(report)
        report.elapsed_seconds = time.perf_counter() - started
        self._m_rps.set(report.records_per_second)
        return report

    # -- cleaning gate -----------------------------------------------------------

    def _admit(
        self, record: QueryRecord, report: IngestReport
    ) -> QueryRecord | None:
        """The online cleaning gate; returns the admitted record or None."""
        if not self._config.clean:
            return record
        rules = self._config.rules
        volume = self._user_volume.get(record.user_id, 0) + 1
        self._user_volume[record.user_id] = volume
        if volume > rules.max_user_queries:
            report.dropped_robot += 1
            self._m_dropped_robot.inc()
            return None
        normalized = normalize_query(record.query)
        n_terms = len(tokenize(normalized))
        if n_terms < rules.min_query_terms or n_terms > rules.max_query_terms:
            report.dropped_terms += 1
            self._m_dropped_terms.inc()
            return None
        clicked = record.clicked_url
        if clicked is not None and clicked in rules.drop_urls:
            clicked = None
            report.declicked_urls += 1
            self._m_declicked.inc()
        return QueryRecord(
            user_id=record.user_id,
            query=normalized,
            timestamp=record.timestamp,
            clicked_url=clicked,
        )

    # -- batching ----------------------------------------------------------------

    def _flush(self, report: IngestReport) -> None:
        fold_started = time.perf_counter()
        self._state.apply(self._buffer)
        fold_elapsed = time.perf_counter() - fold_started
        self._m_fold_seconds.observe(fold_elapsed)
        report.fold_seconds += fold_elapsed
        self._buffer = []
        report.batches += 1
        self._m_batches.inc()
        self._batches_since_publish += 1
        if self._batches_since_publish >= self._config.epoch_every:
            self._publish(report)

    def _publish(self, report: IngestReport) -> None:
        """Derive and publish the next epoch (pipelined when supported).

        Serial states snapshot-and-publish inline.  A parallel state (one
        exposing ``begin_snapshot``/``finish_snapshot``, e.g.
        :class:`repro.stream.parallel.ParallelStreamState`) is driven as a
        one-deep pipeline: the previous in-flight snapshot — whose slices
        the fold workers derived *while this epoch's batches were
        folding* — is finished and published first, then this epoch's
        snapshot is begun and left in flight.  Epoch ids are assigned at
        finish time on this writer thread, so publish order (and
        ``EpochManager`` pinning semantics) never changes.
        """
        started = time.perf_counter()
        if hasattr(self._state, "begin_snapshot"):
            self._finish_inflight(report)
            profiles = self._fold_profiles()
            self._inflight = (self._state.begin_snapshot(), profiles)
        else:
            snapshot = self._state.build_snapshot()
            profiles = self._fold_profiles()
            self._publish_epoch(snapshot, profiles, report)
        self._batches_since_publish = 0
        elapsed = time.perf_counter() - started
        report.publish_seconds += elapsed
        self._m_publish_seconds.observe(elapsed)

    def _finish_inflight(self, report: IngestReport) -> None:
        inflight = self._inflight
        if inflight is None:
            return
        self._inflight = None
        token, profiles = inflight
        snapshot = self._state.finish_snapshot(token)
        self._publish_epoch(snapshot, profiles, report)

    def _drain_inflight(self, report: IngestReport) -> None:
        """Finish and publish the pipelined snapshot still in flight."""
        if self._inflight is None:
            return
        started = time.perf_counter()
        self._finish_inflight(report)
        elapsed = time.perf_counter() - started
        report.publish_seconds += elapsed
        self._m_publish_seconds.observe(elapsed)

    def _publish_epoch(
        self,
        snapshot,
        profiles: ArrayProfileStore | None,
        report: IngestReport,
    ) -> None:
        epoch = Epoch.from_snapshot(
            self._manager.current().epoch_id + 1, snapshot, profiles=profiles
        )
        self._manager.publish(epoch)
        report.epochs_published += 1
        self._m_epochs.inc()

    def _fold_profiles(self) -> ArrayProfileStore | None:
        """Fold buffered click feedback into the next profile generation.

        Returns the new generation for the epoch to carry, or ``None``
        when there is nothing to fold (profiles disabled or no clicks
        since the last publish) — the "unchanged" signal subscribers key
        off.
        """
        if self._profiles is None or not self._feedback:
            return None
        self._profiles = self._profiles.fold_feedback(self._feedback)
        self._feedback = []
        self._m_profile_folds.inc()
        return self._profiles


# -- sources ---------------------------------------------------------------------


def replay(
    records: Iterable[QueryRecord],
    speedup: float = 0.0,
) -> Iterator[QueryRecord]:
    """Yield *records* paced by their timestamp gaps, ``speedup``-compressed.

    ``speedup=0`` (the default) disables pacing entirely — records are
    yielded as fast as the consumer pulls them, which is what throughput
    benchmarks and tests want.  ``speedup=60`` replays an hour of log in a
    minute.  Gaps are measured on the stream's global timestamp order;
    out-of-order records incur no sleep.
    """
    if speedup < 0:
        raise ValueError(f"speedup must be >= 0, got {speedup}")
    previous: float | None = None
    for record in records:
        if speedup > 0 and previous is not None:
            gap = (record.timestamp - previous) / speedup
            if gap > 0:
                time.sleep(gap)
        previous = record.timestamp
        yield record


def tail_aol(
    path: str | Path,
    poll_seconds: float = 0.5,
    idle_timeout: float | None = None,
) -> Iterator[QueryRecord]:
    """Tail an AOL-format TSV file, yielding records as rows are appended.

    Reads the file from the top (header and malformed rows are skipped by
    :func:`repro.logs.aol.parse_aol_line`), then polls for growth every
    *poll_seconds*.  Stops once no new complete line has arrived for
    *idle_timeout* seconds (``None`` tails forever — the live-serving
    mode).  Partial trailing lines (a writer mid-append) are left in the
    file until completed by a newline.
    """
    if poll_seconds <= 0:
        raise ValueError(f"poll_seconds must be > 0, got {poll_seconds}")
    idle = 0.0
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            position = handle.tell()
            line = handle.readline()
            if line.endswith("\n"):
                idle = 0.0
                record = parse_aol_line(line)
                if record is not None:
                    yield record
                continue
            # Incomplete tail (or EOF): rewind and wait for the writer.
            handle.seek(position)
            if idle_timeout is not None and idle >= idle_timeout:
                return
            time.sleep(poll_seconds)
            idle += poll_seconds
