"""Epoch snapshots: atomic publish, reader pinning, targeted retirement.

The streaming writer and the serving readers never share mutable matrix
state.  Each :class:`Epoch` is an immutable bundle of one
:class:`~repro.stream.delta.StreamSnapshot` plus the prebuilt
:class:`~repro.graphs.compact.RandomWalkExpander` over it.  The
:class:`EpochManager` swaps the current epoch with a single reference
assignment under a lock — readers that pinned the previous epoch keep
serving from it (its arrays are copy-on-write: patches allocate fresh
ones), and the old epoch is retired from the registry once its last
reader unpins.

Pinning is cheap (one dict increment) and **never blocks a publish**, and
a publish never blocks readers — the acceptance property the concurrency
tests exercise.  Cached :class:`~repro.core.serving.CompactEntry` objects
are self-contained slices, so entries built under a retired epoch remain
valid until targeted invalidation evicts them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.graphs.compact import RandomWalkExpander
from repro.graphs.matrices import BipartiteMatrices
from repro.graphs.multibipartite import MultiBipartite
from repro.graphs.shard import ShardPlan, ShardSlice
from repro.logs.storage import QueryLog
from repro.obs.registry import NULL_REGISTRY
from repro.stream.delta import StreamSnapshot

__all__ = ["Epoch", "EpochManager", "EpochStats"]


@dataclass(frozen=True)
class Epoch:
    """One immutable serving generation of the streaming representation.

    Attributes:
        epoch_id: Monotonic publish ordinal (0 = bootstrap).
        log: Cumulative log snapshot at publish time.
        multibipartite: Representation handle (membership, term backoff).
        matrices: Full-graph matrices of this generation.
        expander: Walk expander bound to ``matrices``.
        touched_queries: Queries changed relative to the previous epoch —
            what the serving cache's targeted invalidation consumes.
        profiles: New personalization generation riding this epoch, or
            ``None`` when profiles are unchanged.  When set it is an
            :class:`~repro.personalize.profiles.ArrayProfileStore` (click
            feedback folded by the ingestor); subscribers rebind it
            (``PQSDA.rebind_profiles``) and the scale-out pool republishes
            it through its profile plane.
        shard_plan: The shard plan the epoch's slices were cut under, or
            ``None`` for unsharded streams.
        shard_updates: Minimal per-shard update set — only the slices
            whose bytes changed since the previous epoch.  ``None``
            forces a full publish (unsharded, bootstrap, or a delta that
            added queries and renumbered global ordinals); a sharded
            pool consumes a non-``None`` set through
            :meth:`repro.serve.pool.SuggestWorkerPool.publish_shard`, so
            untouched shards' segments survive the epoch swap as-is.
    """

    epoch_id: int
    log: QueryLog
    multibipartite: MultiBipartite
    matrices: BipartiteMatrices
    expander: RandomWalkExpander
    touched_queries: frozenset[str]
    profiles: object | None = None
    shard_plan: ShardPlan | None = None
    shard_updates: dict[int, ShardSlice] | None = None

    def head_queries(self, n: int) -> list[str]:
        """The *n* hottest normalized queries of this epoch's log.

        Frequencies come from the cumulative log snapshot, so the head
        tracks traffic drift epoch over epoch — this feeds the scale-out
        pool's hot-query table refresh
        (:meth:`repro.serve.pool.SuggestWorkerPool.publish_epoch` with
        ``hot_top``).
        """
        from repro.core.suggester import head_queries

        return head_queries(self.log, n)

    @classmethod
    def from_snapshot(
        cls,
        epoch_id: int,
        snapshot: StreamSnapshot,
        profiles: object | None = None,
    ) -> "Epoch":
        """Wrap *snapshot* with a prebuilt expander as epoch *epoch_id*.

        Parallel-ingest snapshots carry a deferred global plane (see
        :class:`repro.stream.parallel.LazyEpochPlane`); their expander is
        the plane's lazy one, so publishing never forces the stitched
        global matrices.
        """
        plane = getattr(snapshot, "plane", None)
        if plane is not None:
            expander = plane.expander()
        else:
            expander = RandomWalkExpander(
                snapshot.multibipartite, matrices=snapshot.matrices
            )
        return cls(
            epoch_id=epoch_id,
            log=snapshot.log,
            multibipartite=snapshot.multibipartite,
            matrices=snapshot.matrices,
            expander=expander,
            touched_queries=snapshot.touched_queries,
            profiles=profiles,
            shard_plan=snapshot.shard_plan,
            shard_updates=snapshot.shard_updates,
        )


@dataclass(frozen=True, slots=True)
class EpochStats:
    """Counters of one :class:`EpochManager` (a point-in-time snapshot).

    Attributes:
        current_epoch: Id of the epoch readers pin right now.
        published: Epochs published so far (including the initial one).
        retired: Superseded epochs whose last reader has unpinned.
        live: Epochs still registered (current + superseded-but-pinned).
        pinned_readers: Readers currently holding a pin, across epochs.
    """

    current_epoch: int
    published: int
    retired: int
    live: int
    pinned_readers: int


class _Pin:
    """Context manager returned by :meth:`EpochManager.pin`."""

    __slots__ = ("_manager", "epoch")

    def __init__(self, manager: "EpochManager", epoch: Epoch) -> None:
        self._manager = manager
        self.epoch = epoch

    def __enter__(self) -> Epoch:
        return self.epoch

    def __exit__(self, *exc_info) -> None:
        self._manager._unpin(self.epoch.epoch_id)


class EpochManager:
    """Publishes epochs atomically and tracks reader pins for retirement.

    One writer calls :meth:`publish`; any number of readers call
    :meth:`pin` around each request.  Subscribers (e.g.
    ``PQSDA.apply_epoch``) are notified after every publish, *outside* the
    manager lock, so a subscriber may itself pin or touch the serving
    cache without deadlocking.
    """

    def __init__(self, initial: Epoch, registry=None) -> None:
        self._lock = threading.Lock()
        self._current = initial
        self._live: dict[int, Epoch] = {initial.epoch_id: initial}
        self._pins: dict[int, int] = {initial.epoch_id: 0}
        self._published = 1
        self._retired = 0
        self._subscribers: list = []
        self._retire_subscribers: list = []
        self.attach_metrics(registry)

    def attach_metrics(self, registry) -> None:
        """Mirror the epoch lifecycle into *registry* (``stream.epochs.*``).

        Counters (``published``/``retired``) count events since attach;
        gauges (``current``/``live``/``pinned_readers``) are seeded from
        the manager's present state.  ``None`` detaches (no-op
        instruments, the default binding).
        """
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_published = registry.counter("stream.epochs.published")
        self._m_shard_publishes = registry.counter(
            "stream.epochs.shard_publishes"
        )
        self._m_shard_updates = registry.counter("stream.epochs.shard_updates")
        self._m_retired = registry.counter("stream.epochs.retired")
        self._m_current = registry.gauge("stream.epochs.current")
        self._m_live = registry.gauge("stream.epochs.live")
        self._m_pinned = registry.gauge("stream.epochs.pinned_readers")
        with self._lock:
            self._m_current.set(self._current.epoch_id)
            self._m_live.set(len(self._live))
            self._m_pinned.set(sum(self._pins.values()))

    # -- reader side ------------------------------------------------------------

    def current(self) -> Epoch:
        """The latest published epoch (unpinned peek)."""
        with self._lock:
            return self._current

    def pin(self) -> _Pin:
        """Pin the current epoch for the duration of a ``with`` block.

        The pinned epoch stays registered (and all its structures alive)
        until the block exits, however many epochs are published meanwhile.
        """
        with self._lock:
            epoch = self._current
            self._pins[epoch.epoch_id] += 1
            self._m_pinned.inc()
            return _Pin(self, epoch)

    def _unpin(self, epoch_id: int) -> None:
        retired: Epoch | None = None
        with self._lock:
            remaining = self._pins.get(epoch_id)
            if remaining is None:  # already retired defensively
                return
            remaining -= 1
            self._pins[epoch_id] = remaining
            self._m_pinned.dec()
            if remaining <= 0 and epoch_id != self._current.epoch_id:
                retired = self._retire(epoch_id)
        self._notify_retired(retired)

    # -- writer side ------------------------------------------------------------

    def publish(self, epoch: Epoch) -> None:
        """Atomically make *epoch* current; retire unpinned predecessors.

        Raises ``ValueError`` on a non-monotonic epoch id (stale writer).
        """
        retired: Epoch | None = None
        with self._lock:
            previous = self._current
            if epoch.epoch_id <= previous.epoch_id:
                raise ValueError(
                    f"epoch id must increase: {epoch.epoch_id} after "
                    f"{previous.epoch_id}"
                )
            self._current = epoch
            self._live[epoch.epoch_id] = epoch
            self._pins.setdefault(epoch.epoch_id, 0)
            self._published += 1
            self._m_published.inc()
            updates = getattr(epoch, "shard_updates", None)
            if updates is not None:
                self._m_shard_publishes.inc()
                self._m_shard_updates.inc(len(updates))
            self._m_current.set(epoch.epoch_id)
            if self._pins.get(previous.epoch_id, 0) <= 0:
                retired = self._retire(previous.epoch_id)
            self._m_live.set(len(self._live))
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(epoch)
        self._notify_retired(retired)

    def _retire(self, epoch_id: int) -> Epoch | None:
        """Drop a superseded, unpinned epoch (caller holds the lock).

        Returns the retired epoch so the caller can notify retirement
        subscribers *outside* the lock, or ``None`` if nothing was live.
        """
        epoch = self._live.pop(epoch_id, None)
        if epoch is not None:
            self._retired += 1
            self._m_retired.inc()
            self._m_live.set(len(self._live))
        self._pins.pop(epoch_id, None)
        return epoch

    def _notify_retired(self, epoch: Epoch | None) -> None:
        if epoch is None:
            return
        with self._lock:
            subscribers = list(self._retire_subscribers)
        for callback in subscribers:
            callback(epoch)

    def subscribe(self, callback) -> None:
        """Call ``callback(epoch)`` after every future publish."""
        with self._lock:
            self._subscribers.append(callback)

    def subscribe_retire(self, callback) -> None:
        """Call ``callback(epoch)`` after an epoch fully retires.

        Retirement means the epoch is superseded *and* its last in-process
        reader has unpinned — the point at which resources tied to that
        generation (e.g. the shared-memory segments the scale-out serving
        plane publishes per epoch) can be reclaimed for local readers.
        Callbacks run outside the manager lock.
        """
        with self._lock:
            self._retire_subscribers.append(callback)

    # -- introspection ----------------------------------------------------------

    @property
    def stats(self) -> EpochStats:
        """Publish/retire/pin counters."""
        with self._lock:
            return EpochStats(
                current_epoch=self._current.epoch_id,
                published=self._published,
                retired=self._retired,
                live=len(self._live),
                pinned_readers=sum(self._pins.values()),
            )
