"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — build the synthetic world and write an AOL-format log;
* ``suggest``  — build PQS-DA over an AOL-format log and print suggestions
  for a query (optionally personalized for a user);
* ``stats``    — print summary statistics of an AOL-format log, or render a
  ``--metrics-out`` snapshot (``--metrics``) as a table, JSON, or
  Prometheus text;
* ``perplexity`` — run the Fig. 4 protocol for chosen models over a log;
* ``ingest``   — bootstrap a live suggester from a log prefix, then stream
  the remainder through the incremental ingestion path (epoch snapshots +
  targeted cache invalidation) and report throughput;
* ``serve``    — build the representation once, publish it into shared
  memory, and serve a request set from ``--workers`` suggest processes
  (zero-copy scale-out; reports per-worker throughput and memory); with
  ``--listen HOST:PORT`` it instead serves HTTP through the async
  micro-batching front-end until SIGINT/SIGTERM.

Every command is deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from dataclasses import replace

from repro.baselines.base import SuggestRequest
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.graphs.compact import CompactConfig
from repro.logs.aol import read_aol, write_aol
from repro.logs.cleaning import clean_log
from repro.logs.sessionizer import sessionize
from repro.personalize.upm import UPMConfig
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world
from repro.topicmodels import build_corpus, build_model
from repro.topicmodels.perplexity import evaluate_perplexity
from repro.topicmodels.zoo import MODEL_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PQS-DA (ICDE 2014) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="generate a synthetic AOL-format query log"
    )
    generate.add_argument("output", help="path of the AOL TSV to write")
    generate.add_argument("--users", type=int, default=50)
    generate.add_argument("--sessions", type=float, default=10.0,
                          help="mean sessions per user")
    generate.add_argument("--seed", type=int, default=0)

    suggest = sub.add_parser(
        "suggest", help="suggest queries from an AOL-format log"
    )
    suggest.add_argument("log", help="AOL TSV file")
    suggest.add_argument("query", nargs="+",
                         help="input query (repeat for a batch)")
    suggest.add_argument("--user", default=None,
                         help="AnonID to personalize for")
    suggest.add_argument("--k", type=int, default=10)
    suggest.add_argument("--workers", type=int, default=1,
                         help="thread-pool size for batched suggestion")
    suggest.add_argument("--cache-stats", action="store_true",
                         help="print serving-cache hit/miss counters")
    suggest.add_argument("--raw", action="store_true",
                         help="use the raw (non-cfiqf) representation")
    suggest.add_argument("--no-personalize", action="store_true",
                         help="skip UPM training (diversification only)")
    suggest.add_argument("--compact-size", type=int, default=150)
    suggest.add_argument("--topics", type=int, default=10)
    suggest.add_argument("--upm-engine", default="fast",
                         choices=("fast", "reference"),
                         help="UPM sampler implementation (bit-identical; "
                              "'reference' is the executable specification)")
    suggest.add_argument("--upm-workers", type=int, default=1,
                         help="document-parallel UPM training workers "
                              "(processes for the fast engine)")
    suggest.add_argument("--verbose", action="store_true",
                         help="print per-fit UPM training statistics")
    suggest.add_argument("--metrics-out", default=None, metavar="JSON",
                         help="attach a metrics registry to the whole "
                              "pipeline and write its snapshot here")
    suggest.add_argument("--seed", type=int, default=0)
    suggest.add_argument("--max-records", type=int, default=None)

    stats = sub.add_parser(
        "stats",
        help="summarize an AOL-format log or render a metrics snapshot",
    )
    stats.add_argument("log", nargs="?", default=None, help="AOL TSV file")
    stats.add_argument("--max-records", type=int, default=None)
    stats.add_argument("--metrics", default=None, metavar="JSON",
                       help="render this --metrics-out snapshot instead of "
                            "summarizing a log")
    stats.add_argument("--format", default="table",
                       choices=("table", "json", "prometheus"),
                       help="metrics rendering (with --metrics)")

    perplexity = sub.add_parser(
        "perplexity", help="Fig. 4 perplexity protocol over a log"
    )
    perplexity.add_argument("log", help="AOL TSV file")
    perplexity.add_argument(
        "--models", nargs="+", default=list(MODEL_NAMES),
        choices=list(MODEL_NAMES),
    )
    perplexity.add_argument("--topics", type=int, default=10)
    perplexity.add_argument("--iterations", type=int, default=30)
    perplexity.add_argument("--upm-engine", default="fast",
                            choices=("fast", "reference"),
                            help="UPM sampler implementation")
    perplexity.add_argument("--observed", type=float, default=0.7)
    perplexity.add_argument("--seed", type=int, default=0)
    perplexity.add_argument("--max-records", type=int, default=None)

    ingest = sub.add_parser(
        "ingest",
        help="stream an AOL-format log through the incremental ingestion path",
    )
    ingest.add_argument("log", help="AOL TSV file")
    ingest.add_argument("--bootstrap", type=float, default=0.7,
                        help="fraction of the log (time-ordered) used to "
                             "bootstrap epoch 0; the rest is streamed")
    ingest.add_argument("--batch-size", type=int, default=256,
                        help="records per micro-batch")
    ingest.add_argument("--epoch-every", type=int, default=1,
                        help="micro-batches per published epoch")
    ingest.add_argument("--replay", type=float, default=0.0, metavar="SPEEDUP",
                        help="pace the stream by timestamp gaps compressed "
                             "by this factor (0 = as fast as possible)")
    ingest.add_argument("--probe", default=None,
                        help="query to suggest for before and after the "
                             "stream (default: most frequent bootstrap query)")
    ingest.add_argument("--k", type=int, default=10)
    ingest.add_argument("--compact-size", type=int, default=150)
    ingest.add_argument("--shards", type=int, default=0, metavar="N",
                        help="shard the query side N ways: epochs carry "
                             "per-shard slices and minimal update sets "
                             "(0 = unsharded)")
    ingest.add_argument("--fold-workers", type=int, default=0, metavar="N",
                        help="derive per-shard slices in N persistent fold "
                             "worker processes and pipeline epoch publishes "
                             "with the next batch's fold; requires --shards "
                             "(0 = serial fold)")
    ingest.add_argument("--metrics-out", default=None, metavar="JSON",
                        help="attach a metrics registry to the streaming "
                             "stack and write its snapshot here")
    ingest.add_argument("--max-records", type=int, default=None)

    serve = sub.add_parser(
        "serve",
        help="serve suggestions from a shared-memory multi-process pool",
    )
    serve.add_argument("log", help="AOL TSV file")
    serve.add_argument("query", nargs="*",
                       help="queries to serve (default: the 20 most "
                            "frequent log queries)")
    serve.add_argument("--workers", type=int, default=2,
                       help="suggest worker processes")
    serve.add_argument("--shards", type=int, default=0, metavar="N",
                       help="partition the graph plane into N shared-memory "
                            "segments; workers attach only the shards they "
                            "serve (0 = one monolithic segment)")
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--rounds", type=int, default=1,
                       help="times to replay the request set "
                            "(throughput measurement)")
    serve.add_argument("--compact-size", type=int, default=150)
    serve.add_argument("--hot-top", type=int, default=0, metavar="N",
                       help="precompute the N most frequent log queries "
                            "into the shared hot-query table; hits are "
                            "answered O(1) in the parent (0 = tier off)")
    serve.add_argument("--personalize", action="store_true",
                       help="fit the UPM on the log, publish the profiles "
                            "into the shared profile plane, and serve each "
                            "request as a profiled user (round-robin over "
                            "the store)")
    serve.add_argument("--topics", type=int, default=5,
                       help="UPM topics when --personalize is set")
    serve.add_argument("--upm-iterations", type=int, default=10,
                       help="UPM Gibbs sweeps when --personalize is set")
    serve.add_argument("--listen", default=None, metavar="HOST:PORT",
                       help="serve over HTTP instead of replaying a request "
                            "set: bind the async front-end here (e.g. "
                            "127.0.0.1:8080) and run until SIGINT/SIGTERM")
    serve.add_argument("--batch-window-ms", type=float, default=2.0,
                       help="micro-batch accumulation window of the HTTP "
                            "front-end (0 = no waiting)")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="dispatch an HTTP micro-batch early at this size")
    serve.add_argument("--deadline-ms", type=float, default=1000.0,
                       help="default per-request deadline of the HTTP "
                            "front-end (504 past it)")
    serve.add_argument("--shed-rerank-depth", type=float, default=4.0,
                       help="per-worker queue depth at which the front-end "
                            "skips the hitting-time rerank (shed tier 1)")
    serve.add_argument("--shed-personalize-depth", type=float, default=8.0,
                       help="per-worker depth at which it also skips "
                            "personalization (shed tier 2)")
    serve.add_argument("--reject-depth", type=float, default=16.0,
                       help="per-worker depth at which it rejects with 503 "
                            "(shed tier 3)")
    serve.add_argument("--quiet", action="store_true",
                       help="skip printing the per-query suggestions")
    serve.add_argument("--metrics-out", default=None, metavar="JSON",
                       help="write the merged pool+worker metrics snapshot "
                            "here")
    serve.add_argument("--max-records", type=int, default=None)

    report = sub.add_parser(
        "report", help="run the full evaluation battery, print markdown"
    )
    report.add_argument("--output", default=None,
                        help="write the markdown report to this file")
    report.add_argument("--quick", action="store_true",
                        help="small-scale smoke run (seconds, noisy numbers)")
    report.add_argument("--seed", type=int, default=42)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    world = make_world(seed=args.seed)
    synthetic = generate_log(
        world,
        GeneratorConfig(
            n_users=args.users,
            mean_sessions_per_user=args.sessions,
            seed=args.seed,
        ),
    )
    rows = write_aol(synthetic.log, args.output)
    print(
        f"wrote {rows} rows for {len(synthetic.log.users)} users "
        f"({len(synthetic.log.unique_queries)} unique queries) to "
        f"{args.output}"
    )
    return 0


def _load_cleaned(path: str, max_records: int | None):
    log = read_aol(path, max_records=max_records)
    cleaned, _ = clean_log(log)
    return cleaned


def _make_registry(metrics_out: str | None):
    """A live registry when *metrics_out* is set, else ``None``."""
    if metrics_out is None:
        return None
    from repro.obs.registry import MetricsRegistry

    return MetricsRegistry()


def _write_metrics(registry, metrics_out: str | None) -> None:
    if registry is None or metrics_out is None:
        return
    from repro.obs.export import write_json

    write_json(registry.snapshot(), metrics_out)
    print(f"wrote metrics snapshot to {metrics_out}", file=sys.stderr)


def _cmd_suggest(args: argparse.Namespace) -> int:
    cleaned = _load_cleaned(args.log, args.max_records)
    if len(cleaned) == 0:
        print("error: log is empty after cleaning", file=sys.stderr)
        return 1
    config = PQSDAConfig(
        weighted=not args.raw,
        compact=CompactConfig(size=args.compact_size),
        diversify=DiversifyConfig(k=args.k),
        upm=UPMConfig(
            n_topics=args.topics,
            iterations=30,
            engine=args.upm_engine,
            n_workers=args.upm_workers,
            seed=args.seed,
        ),
        personalize=not args.no_personalize,
    )
    registry = _make_registry(args.metrics_out)
    suggester = PQSDA.build(cleaned, config=config, registry=registry)
    if args.verbose and suggester.profiles is not None:
        stats = suggester.profiles.model.fit_stats
        lls = stats.sweep_log_likelihood
        print(
            f"UPM fit: engine={stats.engine} workers={stats.n_workers} "
            f"{stats.n_sweeps} sweeps in {stats.total_seconds:.2f}s "
            f"({stats.mean_sweep_seconds * 1000:.1f} ms/sweep sampling)",
            file=sys.stderr,
        )
        print(
            f"UPM fit: pseudo-log-likelihood {lls[0]:.1f} -> {lls[-1]:.1f}",
            file=sys.stderr,
        )
    requests = [
        SuggestRequest(query=query, k=args.k, user_id=args.user)
        for query in args.query
    ]
    batch = suggester.suggest_batch(requests, n_workers=args.workers)
    for query, suggestions in zip(args.query, batch):
        if len(args.query) > 1:
            print(f"[{query}]")
        if not suggestions:
            print("(no suggestions — query unknown and no term overlap)")
            continue
        for rank, suggestion in enumerate(suggestions, start=1):
            print(f"{rank:2d}. {suggestion}")
    if args.cache_stats:
        stats = suggester.cache_stats
        print(
            f"cache: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.evictions} evictions, {stats.size}/{stats.maxsize} "
            "entries"
        )
    _write_metrics(registry, args.metrics_out)
    return 0


def _render_metrics_table(snapshot: dict) -> None:
    for entry in snapshot.get("metrics", ()):
        labels = entry.get("labels", {})
        rendered = ""
        if labels:
            body = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            rendered = "{" + body + "}"
        name = f"{entry['name']}{rendered}"
        kind = entry["type"]
        if kind in ("counter", "gauge"):
            print(f"{name:48s} {kind:9s} {entry['value']}")
        elif kind == "histogram":
            count = entry["count"]
            total = entry["sum"]
            mean = total / count if count else 0.0
            print(
                f"{name:48s} {kind:9s} count={count} sum={total:.6f} "
                f"mean={mean:.6f}"
            )
        else:  # series
            values = entry.get("values", [])
            last = f" last={values[-1]:.4f}" if values else ""
            print(f"{name:48s} {kind:9s} samples={len(values)}{last}")


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.metrics is not None:
        import json

        from repro.obs.export import to_json, to_prometheus

        with open(args.metrics, "r", encoding="utf-8") as handle:
            snapshot = json.load(handle)
        if args.format == "json":
            print(to_json(snapshot), end="")
        elif args.format == "prometheus":
            print(to_prometheus(snapshot), end="")
        else:
            _render_metrics_table(snapshot)
        return 0
    if args.log is None:
        print("error: a log path (or --metrics) is required", file=sys.stderr)
        return 1
    log = read_aol(args.log, max_records=args.max_records)
    cleaned, report = clean_log(log)
    sessions = sessionize(cleaned)
    clicks = sum(1 for r in cleaned if r.has_click)
    print(f"records          {len(log)}")
    print(f"after cleaning   {report.output_records}")
    print(f"users            {len(cleaned.users)}")
    print(f"unique queries   {len(cleaned.unique_queries)}")
    print(f"vocabulary       {len(cleaned.vocabulary)}")
    print(f"clicked rows     {clicks}")
    print(f"distinct urls    {len(cleaned.urls)}")
    print(f"sessions         {len(sessions)}")
    if len(cleaned) > 0:
        low, high = cleaned.time_range
        print(f"time span days   {(high - low) / 86400:.1f}")
    return 0


def _cmd_perplexity(args: argparse.Namespace) -> int:
    cleaned = _load_cleaned(args.log, args.max_records)
    if len(cleaned) == 0:
        print("error: log is empty after cleaning", file=sys.stderr)
        return 1
    corpus = build_corpus(cleaned, sessionize(cleaned))
    print(f"{'model':6s} perplexity")
    for name in args.models:
        model = build_model(
            name,
            n_topics=args.topics,
            iterations=args.iterations,
            seed=args.seed,
            upm_engine=args.upm_engine,
        )
        value = evaluate_perplexity(model, corpus, args.observed)
        print(f"{name:6s} {value:10.1f}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.logs.storage import QueryLog
    from repro.stream import IngestConfig, replay, streaming_pqsda
    from repro.utils.text import normalize_query

    cleaned = _load_cleaned(args.log, args.max_records)
    if len(cleaned) == 0:
        print("error: log is empty after cleaning", file=sys.stderr)
        return 1
    if not 0.0 < args.bootstrap < 1.0:
        print("error: --bootstrap must be in (0, 1)", file=sys.stderr)
        return 1
    records = sorted(
        cleaned.records, key=lambda r: (r.timestamp, r.record_id)
    )
    split = max(1, int(len(records) * args.bootstrap))
    bootstrap, tail = QueryLog(records[:split]), records[split:]
    if not tail:
        print("error: nothing left to stream after the bootstrap split",
              file=sys.stderr)
        return 1

    config = PQSDAConfig(
        compact=CompactConfig(size=args.compact_size),
        diversify=DiversifyConfig(k=args.k),
        personalize=False,
    )
    shard_plan = None
    if args.shards > 0:
        from repro.graphs.shard import ShardPlan

        shard_plan = ShardPlan.hashed(args.shards)
    if args.fold_workers > 0 and shard_plan is None:
        print("error: --fold-workers requires --shards", file=sys.stderr)
        return 1
    registry = _make_registry(args.metrics_out)
    suggester, ingestor, manager = streaming_pqsda(
        bootstrap,
        config=config,
        # The log is already cleaned once, wholesale; don't re-gate online.
        ingest=IngestConfig(
            batch_size=args.batch_size,
            epoch_every=args.epoch_every,
            clean=False,
        ),
        registry=registry,
        shard_plan=shard_plan,
        fold_workers=args.fold_workers,
    )
    shard_publishes = {"epochs": 0, "updates": 0}
    if shard_plan is not None:
        def _count_shard_updates(epoch) -> None:
            if epoch.shard_updates is not None:
                shard_publishes["epochs"] += 1
                shard_publishes["updates"] += len(epoch.shard_updates)

        manager.subscribe(_count_shard_updates)
    probe = args.probe
    if probe is None:
        frequency = Counter(normalize_query(r.query) for r in bootstrap)
        probe = frequency.most_common(1)[0][0]
    print(f"bootstrap: {split} records, epoch 0 published")
    if args.fold_workers > 0:
        print(
            f"fold workers: {ingestor.state.fold_workers} processes, "
            f"home shards "
            + ", ".join(
                f"w{wid}->{list(shards)}"
                for wid, shards in sorted(ingestor.state.home_map.items())
            )
        )
    before = suggester.suggest(probe, k=args.k)
    try:
        report = ingestor.ingest(replay(tail, speedup=args.replay))
        after = suggester.suggest(probe, k=args.k)
    finally:
        if args.fold_workers > 0:
            ingestor.state.close()

    print(
        f"streamed {report.records_ingested} records in "
        f"{report.elapsed_seconds:.2f}s "
        f"({report.records_per_second:,.0f} records/s), "
        f"{report.batches} micro-batches, "
        f"{report.epochs_published} epochs"
    )
    print(
        f"timing: fold {report.fold_seconds:.2f}s "
        f"({report.fold_records_per_second:,.0f} records/s fold-only), "
        f"publish {report.publish_seconds:.2f}s"
    )
    epochs = manager.stats
    print(
        f"epochs: current={epochs.current_epoch} "
        f"published={epochs.published} retired={epochs.retired} "
        f"live={epochs.live}"
    )
    if shard_plan is not None:
        streamed = max(1, report.epochs_published)
        print(
            f"shards: {args.shards}-way plan, "
            f"{shard_publishes['epochs']}/{report.epochs_published} epochs "
            f"carried per-shard updates "
            f"({shard_publishes['updates'] / streamed:.1f} shard "
            f"updates/epoch)"
        )
    cache = suggester.cache_stats
    print(
        f"cache: {cache.hits} hits, {cache.misses} misses, "
        f"{cache.invalidations} targeted invalidations"
    )
    print(f"[{probe}] before the stream:")
    for rank, suggestion in enumerate(before, start=1):
        print(f"{rank:2d}. {suggestion}")
    print(f"[{probe}] after the stream:")
    for rank, suggestion in enumerate(after, start=1):
        print(f"{rank:2d}. {suggestion}")
    _write_metrics(registry, args.metrics_out)
    return 0


def _parse_listen(spec: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)`` (raises ``ValueError`` otherwise)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"--listen expects HOST:PORT, got {spec!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"--listen port must be an integer, got {spec!r}")
    if not 0 <= port <= 65535:
        raise ValueError(f"--listen port out of range: {port}")
    return host, port


def _cmd_serve(args: argparse.Namespace) -> int:
    import time
    from collections import Counter

    from repro.serve.pool import SuggestWorkerPool
    from repro.utils.text import normalize_query

    listen = None
    if args.listen is not None:
        try:
            listen = _parse_listen(args.listen)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    cleaned = _load_cleaned(args.log, args.max_records)
    if len(cleaned) == 0:
        print("error: log is empty after cleaning", file=sys.stderr)
        return 1
    config = PQSDAConfig(
        compact=CompactConfig(size=args.compact_size),
        diversify=DiversifyConfig(k=args.k),
        personalize=args.personalize,
    )
    if args.personalize:
        config = replace(
            config,
            upm=UPMConfig(
                n_topics=args.topics,
                iterations=args.upm_iterations,
                hyperopt_every=0,
                seed=0,
            ),
        )
    suggester = PQSDA.build(cleaned, config=config)
    queries = args.query
    if not queries:
        frequency = Counter(normalize_query(r.query) for r in cleaned)
        queries = [query for query, _ in frequency.most_common(20)]
    profiled_users: list[str] = []
    if args.personalize and suggester.profiles is not None:
        profiled_users = suggester.profiles.user_ids
    if profiled_users:
        requests = [
            SuggestRequest(
                query=query,
                k=args.k,
                user_id=profiled_users[i % len(profiled_users)],
            )
            for i, query in enumerate(queries)
        ]
    else:
        requests = [SuggestRequest(query=query, k=args.k) for query in queries]

    hot_queries = None
    if args.hot_top > 0:
        from repro.core.suggester import head_queries

        hot_queries = head_queries(cleaned, args.hot_top)
    registry = _make_registry(args.metrics_out)
    if listen is not None and registry is None:
        # HTTP mode always carries a registry: /metrics serves it and the
        # shutdown summary reads it, even without --metrics-out.
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
    # Explicit try/finally (not ``with``): the pool, the metrics snapshot,
    # and the shutdown summary must all unwind on *every* exit — clean,
    # SIGINT, or a crashed worker — not just the happy path.
    pool = SuggestWorkerPool.from_suggester(
        suggester,
        n_workers=args.workers,
        registry=registry,
        hot_queries=hot_queries,
        hot_top=args.hot_top,
        n_shards=max(0, args.shards),
    )
    try:
        if pool.n_shards:
            sizes = pool.shard_segment_bytes
            print(
                f"pool: {pool.n_workers} workers over {pool.n_shards} "
                f"shard segments, {pool.segment_bytes / 1e6:.1f} MB total "
                f"(per shard: "
                + ", ".join(
                    f"{sizes[s] / 1e6:.1f}" for s in sorted(sizes)
                )
                + " MB)"
            )
        else:
            print(
                f"pool: {pool.n_workers} workers over a "
                f"{pool.segment_bytes / 1e6:.1f} MB shared segment "
                f"({pool.segment_name})"
            )
        if pool.hot_entries:
            print(f"hot tier: {pool.hot_entries} precomputed head queries")
        if pool.serves_profiles:
            print(
                f"profile plane: {pool.profile_users} users, "
                f"generation {pool.profile_generation}, "
                f"{pool.profile_segment_bytes / 1e6:.1f} MB shared segment "
                f"({pool.profile_segment_name})"
            )
        if listen is not None:
            return _serve_http(pool, registry, listen, args)
        start = time.perf_counter()
        for _ in range(args.rounds):
            batch = pool.suggest_many(requests)
        elapsed = time.perf_counter() - start
        served = len(requests) * args.rounds
        print(
            f"served {served} requests in {elapsed:.2f}s "
            f"({served / elapsed:,.0f} QPS)"
        )
        pool_stats = pool.stats()
        if pool_stats.hot_entries:
            print(
                f"hot tier: {pool_stats.hot_hits}/{served} hits "
                f"({pool_stats.hot_hits / served:.0%}) answered O(1) "
                f"from the shared table"
            )
        for worker in pool_stats.workers:
            line = (
                f"worker {worker.worker_id}: {worker.requests} requests, "
                f"{worker.qps:.0f} QPS, rss {worker.rss_kb / 1024:.0f} MB, "
                f"cache {worker.cache.hits}/{worker.cache.hits + worker.cache.misses} hits, "
                f"shared views: {worker.shares_memory}"
            )
            if pool.serves_profiles:
                line += (
                    f", profile views: {worker.profile_shares_memory} "
                    f"(gen {worker.profile_generation})"
                )
            if worker.spill is not None:
                line += (
                    f", spills {worker.spill['spills']}"
                    f"/{worker.spill['walks']} walks"
                )
            print(line)
        if not args.quiet:
            for query, suggestions in zip(queries, batch):
                print(f"[{query}]")
                if not suggestions:
                    print("(no suggestions)")
                for rank, suggestion in enumerate(suggestions, start=1):
                    print(f"{rank:2d}. {suggestion}")
    finally:
        try:
            if registry is not None and args.metrics_out is not None:
                from repro.obs.export import write_json

                write_json(pool.merged_metrics(), args.metrics_out)
                print(f"wrote metrics snapshot to {args.metrics_out}",
                      file=sys.stderr)
        finally:
            pool.close()
    return 0


def _serve_http(pool, registry, listen, args: argparse.Namespace) -> int:
    """The ``repro serve --listen`` main loop (runs until SIGINT/SIGTERM)."""
    from repro.serve.frontend import FrontendConfig, serve_until_interrupt

    try:
        frontend_config = FrontendConfig(
            batch_window_ms=args.batch_window_ms,
            max_batch=args.max_batch,
            default_deadline_ms=args.deadline_ms,
            shed_rerank_depth=args.shed_rerank_depth,
            shed_personalize_depth=args.shed_personalize_depth,
            reject_depth=args.reject_depth,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    def ready(host: str, port: int) -> None:
        print(f"listening on http://{host}:{port} (Ctrl-C to stop)")
        print("endpoints: GET/POST /suggest, /healthz, /metrics, "
              "/metrics.json")

    host, port = listen
    serve_until_interrupt(
        pool, host, port,
        config=frontend_config,
        registry=registry,
        ready=ready,
    )
    served = int(registry.counter("serve.http.requests").value)
    shed = {
        tier: int(registry.counter(f"serve.http.shed.{tier}").value)
        for tier in ("rerank", "personalize", "reject")
    }
    expired = int(registry.counter("serve.http.deadline_expired").value)
    print(
        f"shut down cleanly: {served} requests "
        f"(shed: {shed['rerank']} rerank, {shed['personalize']} "
        f"personalize, {shed['reject']} rejected; "
        f"{expired} deadline-expired)"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.report import ReportConfig, run_report

    if args.quick:
        config = ReportConfig(
            n_users=15,
            mean_sessions_per_user=8,
            n_test_queries=15,
            n_topics=4,
            gibbs_iterations=8,
            topic_models=("LDA", "UPM"),
            seed=args.seed,
        )
    else:
        config = ReportConfig(seed=args.seed)
    markdown = run_report(config).to_markdown()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(markdown)
        print(f"wrote report to {args.output}")
    else:
        print(markdown)
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "suggest": _cmd_suggest,
    "stats": _cmd_stats,
    "perplexity": _cmd_perplexity,
    "ingest": _cmd_ingest,
    "serve": _cmd_serve,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
