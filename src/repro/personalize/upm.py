"""The User Profiling Model (paper Sec. V-A, Algorithm 2, Eqs. 18-30).

UPM is a collapsed-Gibbs topic model with three departures from LDA:

1. **Session-level topics** — the words and URLs of one session share a
   single topic variable ``z`` (Algorithm 2 line 8);
2. **Temporal channel** — each topic has a Beta distribution over the log's
   normalized time span (Algorithm 2 line 13), capturing topical drift;
3. **Per-user emission counts with learned hyperparameters** — the
   topic-word (and topic-URL) distribution for document *d* is
   ``(C_kwd + β_kw) / (C_k·d + Σβ_k·)``: the *shared* structure lives in the
   learned asymmetric ``β``/``δ`` vectors (Eqs. 26-27) while the per-user
   counts ``C_kwd`` encode the "Toyota vs. Ford" idiosyncrasy the paper
   motivates.

Timestamp convention: the paper's Eq. 22 writes the Beta density with
``(1-t)^{τ₁-1} t^{τ₂-1}`` but its moment updates (Eqs. 28-29) follow the
standard parameterization; we use ``t^{τ₁-1} (1-t)^{τ₂-1}`` with
``τ₁ = t̄(t̄(1-t̄)/s² - 1)`` and ``τ₂ = (1-t̄)(...)``, i.e. the standard
method-of-moments Beta fit (same resolution as Topics-over-Time).

**Engines.**  ``UPMConfig.engine`` selects how ``fit`` runs the sampler:

* ``"fast"`` (default) — the vectorized kernel of
  :mod:`repro.personalize.gibbs_fast`; with ``n_workers > 1`` documents are
  sharded across *processes* (the document partition is exact for the UPM,
  so this is true parallelism, not AD-LDA approximation);
* ``"reference"`` — the straightforward per-session implementation below,
  kept as the executable specification; with ``n_workers > 1`` it uses the
  historical (GIL-bound) thread pool.

Both engines share the per-``(document, sweep)`` RNG streams and every
hyperparameter-optimization code path, and are **bit-identical**: exactly
equal assignments, ``theta``, ``beta``, ``delta`` and ``tau`` for any
worker count (pinned by ``tests/personalize/test_fast_engine.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter

import math

import numpy as np
from scipy import sparse
from scipy.special import betaln, gammaln

from repro.personalize.gibbs_fast import (
    TIME_EPS as _TIME_EPS,
    FastKernel,
    ShardState,
    barrier_segments,
    doc_rng,
    init_worker,
    run_shard_segment,
)
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.personalize.hyperopt import (
    optimize_dirichlet_fixed_point,
    optimize_dirichlet_lbfgs,
)
from repro.topicmodels.corpus import SessionCorpus
from repro.utils.rng import sample_index_with_total
from repro.utils.text import tokenize

__all__ = ["UPMConfig", "UPM", "UPMFitStats", "fit_beta_moments"]

_MIN_TAU = 1.0

#: Bound on the number of per-document ``(K, W)`` topic-word tables kept by
#: the ``topic_word_distribution`` memo (LRU beyond it).
_TWD_CACHE_SIZE = 512


def fit_beta_moments(values: np.ndarray) -> tuple[float, float]:
    """Method-of-moments Beta fit over *values* in [0, 1] (Eqs. 28-29).

    Returns the flat ``(1.0, 1.0)`` for the degenerate cases: fewer than
    two observations, or a spread so large that the common factor
    ``t̄(1-t̄)/s² - 1`` is non-positive (only possible for two-point mass
    at the interval ends).  Zero variance is floored at ``1e-4`` — a very
    concentrated but proper fit.  Fitted parameters are floored at 1.0 so
    a topic's density never diverges at the interval ends.
    """
    values = np.asarray(values, dtype=float)
    if values.size < 2:
        return (1.0, 1.0)
    mean = float(np.clip(values.mean(), _TIME_EPS, 1 - _TIME_EPS))
    var = float(values.var())
    if var <= 0:
        var = 1e-4
    common = mean * (1 - mean) / var - 1.0
    if common <= 0:
        return (1.0, 1.0)
    return (
        max(mean * common, _MIN_TAU),
        max((1 - mean) * common, _MIN_TAU),
    )


@dataclass(frozen=True, slots=True)
class UPMConfig:
    """UPM training parameters.

    Attributes:
        n_topics: Number of latent topics ``K``.
        alpha0: Initial symmetric document-topic prior.
        beta0: Initial symmetric topic-word prior.
        delta0: Initial symmetric topic-URL prior.
        iterations: Gibbs sweeps.
        hyperopt_every: Optimize ``α``, ``β``, ``δ`` and refit ``τ`` every
            this many sweeps (0 disables hyperparameter learning, reducing
            UPM toward a session-level LDA+time model — the ablation knob).
        hyperopt_method: ``"lbfgs"`` (the paper's choice) or
            ``"fixed_point"`` (Minka's iteration; much cheaper).
        use_urls: Include the URL channel (ablation knob).
        use_time: Include the timestamp channel (ablation knob).
        engine: ``"fast"`` (vectorized kernel, process-parallel) or
            ``"reference"`` (the executable specification).  Both produce
            bit-identical fits.
        n_workers: Document-parallel workers — processes for the fast
            engine, threads for the reference engine.  Results are
            identical to the serial run for any worker count.
        seed: RNG seed.
    """

    n_topics: int = 12
    alpha0: float = 0.5
    beta0: float = 0.05
    delta0: float = 0.05
    iterations: int = 60
    hyperopt_every: int = 20
    hyperopt_method: str = "fixed_point"
    use_urls: bool = True
    use_time: bool = True
    engine: str = "fast"
    n_workers: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        for name in ("alpha0", "beta0", "delta0"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.hyperopt_every < 0:
            raise ValueError("hyperopt_every must be >= 0")
        if self.hyperopt_method not in ("lbfgs", "fixed_point"):
            raise ValueError(
                "hyperopt_method must be 'lbfgs' or 'fixed_point', got "
                f"{self.hyperopt_method!r}"
            )
        if self.engine not in ("reference", "fast"):
            raise ValueError(
                f"engine must be 'reference' or 'fast', got {self.engine!r}"
            )
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")


@dataclass(frozen=True)
class UPMFitStats:
    """Training observability for one ``UPM.fit`` run.

    Attributes:
        engine: Which sampler ran (``"reference"`` or ``"fast"``).
        n_workers: Configured worker count.
        sweep_log_likelihood: Per-sweep Gibbs pseudo-log-likelihood — the
            summed log posterior probability of the drawn session topics,
            a free byproduct of the sweep.  Rises (noisily) as the chain
            mixes; identical across engines and worker counts.
        sweep_seconds: Per-sweep sampling wall clock (excluding the
            hyperopt barriers; for process-parallel fits, the slowest
            shard — the critical path).
        total_seconds: End-to-end ``fit`` wall clock including barriers.
    """

    engine: str
    n_workers: int
    sweep_log_likelihood: tuple[float, ...]
    sweep_seconds: tuple[float, ...]
    total_seconds: float

    @property
    def n_sweeps(self) -> int:
        """Number of recorded sweeps."""
        return len(self.sweep_log_likelihood)

    @property
    def mean_sweep_seconds(self) -> float:
        """Mean sampling seconds per sweep."""
        if not self.sweep_seconds:
            return 0.0
        return float(np.mean(self.sweep_seconds))


class UPM:
    """User Profiling Model: fit on a :class:`SessionCorpus`, then score.

    Usage::

        model = UPM(UPMConfig(n_topics=10, seed=0))
        model.fit(corpus)
        theta = model.theta                    # (D, K) user profiles, Eq. 30
        score = model.preference_score("user0001", "sun java")  # Eq. 31
    """

    def __init__(self, config: UPMConfig | None = None) -> None:
        self.config = config if config is not None else UPMConfig()
        self._fitted = False
        self._fit_stats: UPMFitStats | None = None
        self._twd_cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._fit_registry = MetricsRegistry()
        self._s_ll = self._fit_registry.series("upm.sweep.log_likelihood")
        self._s_secs = self._fit_registry.series("upm.sweep.seconds")
        self.attach_metrics(None)

    # -- observability -------------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Mirror per-sweep training metrics into *registry* (``upm.*``).

        Every fit already routes its per-sweep pseudo-log-likelihood and
        wall clock through an internal registry (see :attr:`fit_metrics`);
        attaching an external one additionally feeds the
        ``upm.sweep.seconds`` histogram, the ``upm.sweep.log_likelihood``
        gauge (last sweep's value) and the ``upm.sweeps`` / ``upm.fits``
        counters.  ``None`` detaches (the default no-op binding).
        """
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_sweep_seconds = registry.histogram("upm.sweep.seconds")
        self._m_sweep_ll = registry.gauge("upm.sweep.log_likelihood")
        self._m_sweeps = registry.counter("upm.sweeps")
        self._m_fits = registry.counter("upm.fits")
        self._m_fit_seconds = registry.histogram(
            "upm.fit.seconds", buckets=(0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)
        )

    @property
    def fit_metrics(self) -> MetricsRegistry:
        """The last fit's internal registry (``upm.sweep.*`` series).

        Replaces the ad-hoc per-engine list accumulators: all four engine
        paths observe each sweep through :meth:`_observe_sweep`, and
        :class:`UPMFitStats` is assembled from these series.
        """
        return self._fit_registry

    def _observe_sweep(self, log_likelihood: float, seconds: float) -> None:
        """Record one completed Gibbs sweep (all engines funnel here)."""
        self._s_ll.append(log_likelihood)
        self._s_secs.append(seconds)
        self._m_sweep_seconds.observe(seconds)
        self._m_sweep_ll.set(log_likelihood)
        self._m_sweeps.inc()

    # -- fitting -------------------------------------------------------------------

    def fit(self, corpus: SessionCorpus) -> "UPM":
        """Run collapsed Gibbs with interleaved hyperparameter optimization."""
        if corpus.n_documents == 0:
            raise ValueError("corpus has no documents")
        config = self.config
        K = config.n_topics
        self._fitted = False
        self._twd_cache = OrderedDict()
        self._corpus = corpus
        D, W, U = corpus.n_documents, corpus.n_words, corpus.n_urls

        self._alpha = np.full(K, config.alpha0)
        self._beta = np.full((K, W), config.beta0)
        self._delta = np.full((K, max(U, 1)), config.delta0)
        self._tau = np.ones((K, 2))

        # Per-document local vocabularies keep the count tables small.
        self._local_word: list[dict[int, int]] = []
        self._local_url: list[dict[int, int]] = []
        self._word_counts: list[np.ndarray] = []  # (K, W_d) per doc
        self._url_counts: list[np.ndarray] = []  # (K, U_d) per doc
        self._word_totals = np.zeros((D, K))
        self._url_totals = np.zeros((D, K))
        self._doc_topic = np.zeros((D, K))
        self._assignments: list[np.ndarray] = []

        for d, doc in enumerate(corpus.documents):
            words = sorted({w for s in doc.sessions for w in s.words})
            urls = sorted({u for s in doc.sessions for u in s.urls})
            self._local_word.append({w: i for i, w in enumerate(words)})
            self._local_url.append({u: i for i, u in enumerate(urls)})
            self._word_counts.append(np.zeros((K, len(words))))
            self._url_counts.append(np.zeros((K, max(len(urls), 1))))
            init_rng = self._doc_rng(d, sweep=0)
            z = np.asarray(
                init_rng.integers(0, K, size=len(doc.sessions)), dtype=int
            )
            self._assignments.append(z)
            for s, session in enumerate(doc.sessions):
                self._apply_session(d, s, int(z[s]), +1)

        # Global-id gathers of each document's local vocabulary — the CSR
        # structure the sparse hyperparameter optimization slots counts
        # into (column order == local index order by construction).
        self._doc_word_gids = [
            np.fromiter(m.keys(), dtype=np.int64, count=len(m))
            for m in self._local_word
        ]
        self._doc_url_gids = [
            np.fromiter(m.keys(), dtype=np.int64, count=len(m))
            for m in self._local_url
        ]
        self._word_indices = np.concatenate(self._doc_word_gids)
        self._word_indptr = np.zeros(D + 1, dtype=np.int64)
        np.cumsum(
            [g.size for g in self._doc_word_gids], out=self._word_indptr[1:]
        )
        self._url_indices = np.concatenate(self._doc_url_gids)
        self._url_indptr = np.zeros(D + 1, dtype=np.int64)
        np.cumsum(
            [g.size for g in self._doc_url_gids], out=self._url_indptr[1:]
        )

        self._fit_registry = MetricsRegistry()
        self._s_ll = self._fit_registry.series("upm.sweep.log_likelihood")
        self._s_secs = self._fit_registry.series("upm.sweep.seconds")
        start_time = perf_counter()
        if config.engine == "fast":
            if config.n_workers > 1 and D > 1:
                self._fit_fast_parallel()
            else:
                self._fit_fast_serial()
        elif config.n_workers > 1:
            self._fit_parallel()
        else:
            self._fit_reference_serial()
        total_seconds = perf_counter() - start_time
        self._fit_stats = UPMFitStats(
            engine=config.engine,
            n_workers=config.n_workers,
            sweep_log_likelihood=self._s_ll.values,
            sweep_seconds=self._s_secs.values,
            total_seconds=total_seconds,
        )
        self._m_fit_seconds.observe(total_seconds)
        self._m_fits.inc()
        self._fitted = True
        return self

    def _doc_rng(self, d: int, sweep: int) -> np.random.Generator:
        """Per-(document, sweep) RNG stream (see ``gibbs_fast.doc_rng``)."""
        return doc_rng(self.config.seed, sweep, d)

    def _maybe_optimize(self, sweep: int) -> None:
        config = self.config
        if config.hyperopt_every and sweep % config.hyperopt_every == 0:
            self._optimize_hyperparameters()
            if config.use_time:
                self._refit_tau()

    # -- reference engine ------------------------------------------------------------

    def _fit_reference_serial(self) -> None:
        """Serial per-session sweeps — the executable specification."""
        config = self.config
        D = self._corpus.n_documents
        for sweep in range(1, config.iterations + 1):
            start = perf_counter()
            per_doc = np.empty(D)
            for d in range(D):
                per_doc[d] = self._sweep_document(d, self._doc_rng(d, sweep))
            self._observe_sweep(float(per_doc.sum()), perf_counter() - start)
            self._maybe_optimize(sweep)

    def _fit_parallel(self) -> None:
        """Document-parallel Gibbs over worker *threads* (reference engine).

        Kept as the historical parallel path: correct and bit-identical,
        but GIL-bound — the fast engine's process sharding is the one that
        actually scales (see ``_fit_fast_parallel``).
        """
        from concurrent.futures import ThreadPoolExecutor

        config = self.config
        D = self._corpus.n_documents
        n_workers = min(config.n_workers, D)
        blocks = [list(range(D))[i::n_workers] for i in range(n_workers)]

        def run_block(
            block: list[int], sweep: int, per_doc: np.ndarray
        ) -> None:
            for d in block:
                per_doc[d] = self._sweep_document(d, self._doc_rng(d, sweep))

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            for sweep in range(1, config.iterations + 1):
                start = perf_counter()
                per_doc = np.empty(D)
                futures = [
                    pool.submit(run_block, block, sweep, per_doc)
                    for block in blocks
                ]
                for future in futures:
                    future.result()
                self._observe_sweep(
                    float(per_doc.sum()), perf_counter() - start
                )
                self._maybe_optimize(sweep)

    # -- fast engine -----------------------------------------------------------------

    def _bound_kernel(self) -> FastKernel:
        """A kernel over all documents bound directly to this model's state."""
        kernel = FastKernel(
            self._corpus,
            self.config,
            range(self._corpus.n_documents),
            local_word=self._local_word,
            local_url=self._local_url,
        )
        kernel.bind_state(
            ShardState(
                doc_topic=self._doc_topic,
                word_totals=self._word_totals,
                url_totals=self._url_totals,
                word_counts=self._word_counts,
                url_counts=self._url_counts,
                assignments=self._assignments,
            )
        )
        kernel.set_hyperparameters(
            self._alpha, self._beta, self._delta, self._tau
        )
        return kernel

    def _fit_fast_serial(self) -> None:
        """Vectorized kernel, one process (see ``gibbs_fast.FastKernel``)."""
        config = self.config
        kernel = self._bound_kernel()
        for sweep in range(1, config.iterations + 1):
            start = perf_counter()
            per_doc = kernel.sweep(sweep)
            self._observe_sweep(float(per_doc.sum()), perf_counter() - start)
            if config.hyperopt_every and sweep % config.hyperopt_every == 0:
                self._maybe_optimize(sweep)
                kernel.set_hyperparameters(
                    self._alpha, self._beta, self._delta, self._tau
                )

    def _fit_fast_parallel(self) -> None:
        """Process-based document sharding between hyperopt barriers.

        Workers hold disjoint document shards and sample a whole
        barrier-to-barrier segment without communication (the partition is
        exact — see :mod:`repro.personalize.gibbs_fast`).  At each barrier
        the master merges shard states in canonical document order, runs
        the hyperparameter updates, and rebroadcasts.
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        config = self.config
        D = self._corpus.n_documents
        n_workers = min(config.n_workers, D)
        shards = [list(range(D))[i::n_workers] for i in range(n_workers)]
        segments = barrier_segments(config.iterations, config.hyperopt_every)
        ll_rows = np.empty((config.iterations, D))
        secs = np.zeros(config.iterations)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        with ProcessPoolExecutor(
            max_workers=n_workers,
            mp_context=context,
            initializer=init_worker,
            initargs=(self._corpus, config),
        ) as pool:
            for sweep_start, sweep_stop in segments:
                hyper = (self._alpha, self._beta, self._delta, self._tau)
                futures = [
                    (
                        shard,
                        pool.submit(
                            run_shard_segment,
                            tuple(shard),
                            self._extract_shard(shard),
                            hyper,
                            sweep_start,
                            sweep_stop,
                        ),
                    )
                    for shard in shards
                ]
                rows = slice(sweep_start - 1, sweep_stop)
                for shard, future in futures:
                    state, shard_lls, shard_secs = future.result()
                    self._merge_shard(shard, state)
                    ll_rows[rows, shard] = shard_lls
                    np.maximum(secs[rows], shard_secs, out=secs[rows])
                for row in range(sweep_start - 1, sweep_stop):
                    self._observe_sweep(
                        float(ll_rows[row].sum()), float(secs[row])
                    )
                self._maybe_optimize(sweep_stop)

    def _extract_shard(self, shard: list[int]) -> ShardState:
        return ShardState(
            doc_topic=self._doc_topic[shard],
            word_totals=self._word_totals[shard],
            url_totals=self._url_totals[shard],
            word_counts=[self._word_counts[d] for d in shard],
            url_counts=[self._url_counts[d] for d in shard],
            assignments=[self._assignments[d] for d in shard],
        )

    def _merge_shard(self, shard: list[int], state: ShardState) -> None:
        self._doc_topic[shard] = state.doc_topic
        self._word_totals[shard] = state.word_totals
        self._url_totals[shard] = state.url_totals
        for pos, d in enumerate(shard):
            self._word_counts[d] = state.word_counts[pos]
            self._url_counts[d] = state.url_counts[pos]
            self._assignments[d] = state.assignments[pos]

    # -- reference sampler internals ---------------------------------------------------

    def _apply_session(self, d: int, s: int, k: int, sign: int) -> None:
        doc = self._corpus.documents[d]
        session = doc.sessions[s]
        self._doc_topic[d, k] += sign
        word_map = self._local_word[d]
        for w in session.words:
            self._word_counts[d][k, word_map[w]] += sign
        self._word_totals[d, k] += sign * len(session.words)
        if self.config.use_urls and session.urls:
            url_map = self._local_url[d]
            for u in session.urls:
                self._url_counts[d][k, url_map[u]] += sign
            self._url_totals[d, k] += sign * len(session.urls)

    def _session_log_prob(self, d: int, s: int) -> np.ndarray:
        """Eq. 23 log-probabilities over topics for session (d, s)."""
        config = self.config
        doc = self._corpus.documents[d]
        session = doc.sessions[s]

        logits = np.log(self._doc_topic[d] + self._alpha)

        if config.use_time:
            t = min(max(session.timestamp, _TIME_EPS), 1.0 - _TIME_EPS)
            a, b = self._tau[:, 0], self._tau[:, 1]
            logits += (
                (a - 1.0) * np.log(t)
                + (b - 1.0) * np.log1p(-t)
                - betaln(a, b)
            )

        word_map = self._local_word[d]
        beta_sums = self._beta.sum(axis=1)
        unique_words: dict[int, int] = {}
        for w in session.words:
            unique_words[w] = unique_words.get(w, 0) + 1
        for w, n in unique_words.items():
            base = self._word_counts[d][:, word_map[w]] + self._beta[:, w]
            logits += gammaln(base + n) - gammaln(base)
        totals = self._word_totals[d] + beta_sums
        logits += gammaln(totals) - gammaln(totals + len(session.words))

        if config.use_urls and session.urls:
            url_map = self._local_url[d]
            delta_sums = self._delta.sum(axis=1)
            unique_urls: dict[int, int] = {}
            for u in session.urls:
                unique_urls[u] = unique_urls.get(u, 0) + 1
            for u, n in unique_urls.items():
                base = self._url_counts[d][:, url_map[u]] + self._delta[:, u]
                logits += gammaln(base + n) - gammaln(base)
            url_totals = self._url_totals[d] + delta_sums
            logits += gammaln(url_totals) - gammaln(
                url_totals + len(session.urls)
            )
        return logits

    def _sweep_document(self, d: int, rng: np.random.Generator) -> float:
        """One Gibbs sweep over the sessions of document *d*.

        Returns the document's Gibbs pseudo-log-likelihood (the summed log
        posterior probability of the drawn topics).
        """
        doc = self._corpus.documents[d]
        log_likelihood = 0.0
        for s in range(len(doc.sessions)):
            current = int(self._assignments[d][s])
            self._apply_session(d, s, current, -1)
            logits = self._session_log_prob(d, s)
            logits -= logits.max()
            weights = np.exp(logits)
            new, total = sample_index_with_total(rng, weights)
            log_likelihood += float(logits[new]) - math.log(total)
            self._assignments[d][s] = new
            self._apply_session(d, s, new, +1)
        return log_likelihood

    # -- hyperparameter updates --------------------------------------------------------

    def _optimize_hyperparameters(self) -> None:
        """Evidence-maximize ``α``, ``β``, ``δ`` on the current counts.

        The per-topic count matrices are assembled as CSR over each
        document's local vocabulary (nnz = Σ_d W_d) instead of dense
        ``(D, W)`` tables — zero cells contribute exactly nothing to the
        Dirichlet-multinomial evidence, so the sparse optimizers in
        :mod:`repro.personalize.hyperopt` never look at them.
        """
        config = self.config
        optimize = (
            optimize_dirichlet_lbfgs
            if config.hyperopt_method == "lbfgs"
            else optimize_dirichlet_fixed_point
        )
        # Evidence maximization for alpha needs a population of documents;
        # on a handful of users it just fits noise (alpha blows up and
        # flattens every profile), so keep the prior fixed below 5 docs.
        if self._corpus.n_documents >= 5:
            self._alpha = optimize(self._doc_topic, self._alpha)
        K = config.n_topics
        D = self._corpus.n_documents
        W = self._corpus.n_words
        for k in range(K):
            data = np.concatenate(
                [self._word_counts[d][k] for d in range(D)]
            )
            counts = sparse.csr_matrix(
                (data, self._word_indices, self._word_indptr), shape=(D, W)
            )
            self._beta[k] = optimize(counts, self._beta[k])
        if config.use_urls and self._corpus.n_urls > 0:
            U = self._corpus.n_urls
            for k in range(K):
                data = np.concatenate(
                    [
                        self._url_counts[d][k, : self._doc_url_gids[d].size]
                        for d in range(D)
                    ]
                )
                counts = sparse.csr_matrix(
                    (data, self._url_indices, self._url_indptr), shape=(D, U)
                )
                self._delta[k] = optimize(counts, self._delta[k])

    def _refit_tau(self) -> None:
        """Method-of-moments Beta refit per topic (Eqs. 28-29)."""
        K = self.config.n_topics
        stamps: list[list[float]] = [[] for _ in range(K)]
        for d, doc in enumerate(self._corpus.documents):
            for s, session in enumerate(doc.sessions):
                stamps[int(self._assignments[d][s])].append(session.timestamp)
        for k in range(K):
            self._tau[k] = fit_beta_moments(np.asarray(stamps[k]))

    # -- fitted accessors ------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("UPM is not fitted; call fit(corpus) first")

    @property
    def corpus(self) -> SessionCorpus:
        """The training corpus."""
        self._require_fitted()
        return self._corpus

    @property
    def fit_stats(self) -> UPMFitStats:
        """Per-sweep observability of the last ``fit`` run."""
        self._require_fitted()
        assert self._fit_stats is not None
        return self._fit_stats

    @property
    def alpha(self) -> np.ndarray:
        """Learned document-topic hyperparameters (copy)."""
        self._require_fitted()
        return self._alpha.copy()

    @property
    def beta(self) -> np.ndarray:
        """Learned (K, W) topic-word hyperparameters (copy)."""
        self._require_fitted()
        return self._beta.copy()

    @property
    def delta(self) -> np.ndarray:
        """Learned (K, U) topic-URL hyperparameters (copy)."""
        self._require_fitted()
        return self._delta.copy()

    @property
    def tau(self) -> np.ndarray:
        """Per-topic Beta time parameters, shape (K, 2)."""
        self._require_fitted()
        return self._tau.copy()

    @property
    def theta(self) -> np.ndarray:
        """User profiles ``θ_dk`` (Eq. 30), shape (D, K), rows sum to 1."""
        self._require_fitted()
        raw = self._doc_topic + self._alpha
        return raw / raw.sum(axis=1, keepdims=True)

    def profile_of(self, user_id: str) -> np.ndarray:
        """One user's ``θ_d·`` vector."""
        self._require_fitted()
        d = self._corpus.doc_index[user_id]
        return self.theta[d]

    def topic_word_distribution(self, d: int) -> np.ndarray:
        """(K, W) per-user smoothed topic-word distributions.

        ``φ̂_kwd = (C_kwd + β_kw) / (C_k·d + Σ_w β_kw)`` — the document-
        specific word distributions of Algorithm 2 (``φ_kd``), reconstructed
        from counts and learned ``β``.

        Memoized per document (LRU over the last ``512`` documents) so
        serving-time scoring does not rebuild the dense table per query;
        the cache is invalidated by ``fit``.  Treat the returned array as
        read-only.
        """
        self._require_fitted()
        cached = self._twd_cache.get(d)
        if cached is not None:
            self._twd_cache.move_to_end(d)
            return cached
        W = self._corpus.n_words
        K = self.config.n_topics
        counts = np.zeros((K, W))
        for w, local in self._local_word[d].items():
            counts[:, w] = self._word_counts[d][:, local]
        smoothed = counts + self._beta
        smoothed /= smoothed.sum(axis=1, keepdims=True)
        self._twd_cache[d] = smoothed
        if len(self._twd_cache) > _TWD_CACHE_SIZE:
            self._twd_cache.popitem(last=False)
        return smoothed

    def predictive_word_distribution(self, d: int) -> np.ndarray:
        """``p(w | d) = Σ_k θ_dk φ̂_kwd`` — the Eq. 35 predictive."""
        self._require_fitted()
        return self.theta[d] @ self.topic_word_distribution(d)

    def document_word_counts(self, d: int) -> tuple[np.ndarray, np.ndarray]:
        """Document *d*'s topic-word counts in packable form.

        Returns ``(gids, counts)``: the document's global word ids sorted
        ascending (``int64``, shape ``(W_d,)``) and the matching per-word
        topic-count vectors (``float64``, shape ``(W_d, K)`` — the
        transpose of the internal ``(K, W_d)`` table, copied).  This is
        the exact state :meth:`topic_word_distribution` scatters dense,
        exposed so profile stores can be rebuilt from flat arrays (see
        :class:`repro.personalize.profiles.ProfileArrays`) without
        reaching into sampler internals.
        """
        self._require_fitted()
        gids = np.array(self._doc_word_gids[d], dtype=np.int64)
        counts = np.ascontiguousarray(self._word_counts[d].T, dtype=np.float64)
        return gids, counts

    def user_tau(self, user_id: str) -> np.ndarray:
        """Per-user Beta time parameters, shape (K, 2).

        Method-of-moments fit over the *user's own* session timestamps per
        topic.  Topic labels in the UPM are document-local (the emission
        counts are per-document), so per-user temporal profiles are the
        meaningful unit; topics with fewer than two of the user's sessions
        get the flat Beta(1, 1).
        """
        self._require_fitted()
        d = self._corpus.doc_index[user_id]
        K = self.config.n_topics
        doc = self._corpus.documents[d]
        stamps: list[list[float]] = [[] for _ in range(K)]
        for s, session in enumerate(doc.sessions):
            stamps[int(self._assignments[d][s])].append(session.timestamp)
        tau = np.ones((K, 2))
        for k in range(K):
            tau[k] = fit_beta_moments(np.asarray(stamps[k]))
        return tau

    def profile_at(self, user_id: str, t_norm: float) -> np.ndarray:
        """Time-modulated profile ``θ_d(t) ∝ θ_dk · Beta(t; τ_dk)``.

        Serving-time use of the temporal channel (extension beyond the
        paper's Eq. 31, which ignores the query time): the user's topic
        preferences are re-weighted by each topic's temporal prominence —
        fitted on the *user's own* sessions (see :meth:`user_tau`) — at the
        moment of the query, capturing the "dynamic change of a user's
        preference" the introduction motivates.
        """
        self._require_fitted()
        if not 0.0 <= t_norm <= 1.0:
            raise ValueError(f"t_norm must be in [0, 1], got {t_norm}")
        d = self._corpus.doc_index[user_id]
        theta = self.theta[d]
        if not self.config.use_time:
            return theta
        tau = self.user_tau(user_id)
        t = min(max(t_norm, _TIME_EPS), 1.0 - _TIME_EPS)
        a, b = tau[:, 0], tau[:, 1]
        log_pdf = (
            (a - 1.0) * np.log(t) + (b - 1.0) * np.log1p(-t) - betaln(a, b)
        )
        weighted = theta * np.exp(log_pdf - log_pdf.max())
        total = weighted.sum()
        if total <= 0:
            return theta
        return weighted / total

    def preference_score(
        self, user_id: str, query: str, t_norm: float | None = None
    ) -> float:
        """``P(q | d)`` of Eq. 31: mean per-word preference of the user.

        The paper's multidimensional-Beta ratio, evaluated for the single
        occurrence of each query word, reduces to the smoothed per-user
        topic-word probability mixed by ``θ_d``; out-of-vocabulary words are
        skipped and a query with no known words scores 0.  When *t_norm*
        (normalized query time) is given, the mixture uses the
        time-modulated profile of :meth:`profile_at` instead of ``θ_d``.
        """
        self._require_fitted()
        if user_id not in self._corpus.doc_index:
            return 0.0
        d = self._corpus.doc_index[user_id]
        word_ids = self._corpus.word_ids(tokenize(query))
        if not word_ids:
            return 0.0
        if t_norm is None:
            mixture = self.theta[d]
        else:
            mixture = self.profile_at(user_id, t_norm)
        predictive = mixture @ self.topic_word_distribution(d)
        return float(np.mean(predictive[word_ids]))

    def preference_scores(
        self, user_id: str, queries: list[str], t_norm: float | None = None
    ) -> dict[str, float]:
        """Batched ``P(q | d)``: Eq. 31 over a candidate list.

        Bit-identical to calling :meth:`preference_score` per query, but
        the user's mixed predictive distribution is built once and query
        tokenization is memoized within the call — the serving-path shape
        (:meth:`repro.personalize.profiles.UserProfileStore.score_candidates`
        scores a whole diversified candidate pool per request).
        """
        self._require_fitted()
        if user_id not in self._corpus.doc_index:
            return {query: 0.0 for query in queries}
        d = self._corpus.doc_index[user_id]
        if t_norm is None:
            mixture = self.theta[d]
        else:
            mixture = self.profile_at(user_id, t_norm)
        predictive = mixture @ self.topic_word_distribution(d)
        scores: dict[str, float] = {}
        memo: dict[str, list[int]] = {}
        for query in queries:
            word_ids = memo.get(query)
            if word_ids is None:
                word_ids = self._corpus.word_ids(tokenize(query))
                memo[query] = word_ids
            scores[query] = (
                float(np.mean(predictive[word_ids])) if word_ids else 0.0
            )
        return scores
