"""The User Profiling Model (paper Sec. V-A, Algorithm 2, Eqs. 18-30).

UPM is a collapsed-Gibbs topic model with three departures from LDA:

1. **Session-level topics** — the words and URLs of one session share a
   single topic variable ``z`` (Algorithm 2 line 8);
2. **Temporal channel** — each topic has a Beta distribution over the log's
   normalized time span (Algorithm 2 line 13), capturing topical drift;
3. **Per-user emission counts with learned hyperparameters** — the
   topic-word (and topic-URL) distribution for document *d* is
   ``(C_kwd + β_kw) / (C_k·d + Σβ_k·)``: the *shared* structure lives in the
   learned asymmetric ``β``/``δ`` vectors (Eqs. 26-27) while the per-user
   counts ``C_kwd`` encode the "Toyota vs. Ford" idiosyncrasy the paper
   motivates.

Timestamp convention: the paper's Eq. 22 writes the Beta density with
``(1-t)^{τ₁-1} t^{τ₂-1}`` but its moment updates (Eqs. 28-29) follow the
standard parameterization; we use ``t^{τ₁-1} (1-t)^{τ₂-1}`` with
``τ₁ = t̄(t̄(1-t̄)/s² - 1)`` and ``τ₂ = (1-t̄)(...)``, i.e. the standard
method-of-moments Beta fit (same resolution as Topics-over-Time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import betaln, gammaln

from repro.personalize.hyperopt import (
    optimize_dirichlet_fixed_point,
    optimize_dirichlet_lbfgs,
)
from repro.topicmodels.corpus import SessionCorpus
from repro.utils.rng import sample_index
from repro.utils.text import tokenize

__all__ = ["UPMConfig", "UPM"]

_TIME_EPS = 1e-3
_MIN_TAU = 1.0


@dataclass(frozen=True, slots=True)
class UPMConfig:
    """UPM training parameters.

    Attributes:
        n_topics: Number of latent topics ``K``.
        alpha0: Initial symmetric document-topic prior.
        beta0: Initial symmetric topic-word prior.
        delta0: Initial symmetric topic-URL prior.
        iterations: Gibbs sweeps.
        hyperopt_every: Optimize ``α``, ``β``, ``δ`` and refit ``τ`` every
            this many sweeps (0 disables hyperparameter learning, reducing
            UPM toward a session-level LDA+time model — the ablation knob).
        hyperopt_method: ``"lbfgs"`` (the paper's choice) or
            ``"fixed_point"`` (Minka's iteration; much cheaper).
        use_urls: Include the URL channel (ablation knob).
        use_time: Include the timestamp channel (ablation knob).
        n_workers: Worker threads for document-parallel Gibbs (see
            ``UPM._fit_parallel``); results are identical to the serial
            run for any worker count.
        seed: RNG seed.
    """

    n_topics: int = 12
    alpha0: float = 0.5
    beta0: float = 0.05
    delta0: float = 0.05
    iterations: int = 60
    hyperopt_every: int = 20
    hyperopt_method: str = "fixed_point"
    use_urls: bool = True
    use_time: bool = True
    n_workers: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_topics < 1:
            raise ValueError("n_topics must be >= 1")
        for name in ("alpha0", "beta0", "delta0"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.hyperopt_every < 0:
            raise ValueError("hyperopt_every must be >= 0")
        if self.hyperopt_method not in ("lbfgs", "fixed_point"):
            raise ValueError(
                "hyperopt_method must be 'lbfgs' or 'fixed_point', got "
                f"{self.hyperopt_method!r}"
            )
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")


class UPM:
    """User Profiling Model: fit on a :class:`SessionCorpus`, then score.

    Usage::

        model = UPM(UPMConfig(n_topics=10, seed=0))
        model.fit(corpus)
        theta = model.theta                    # (D, K) user profiles, Eq. 30
        score = model.preference_score("user0001", "sun java")  # Eq. 31
    """

    def __init__(self, config: UPMConfig | None = None) -> None:
        self.config = config if config is not None else UPMConfig()
        self._fitted = False

    # -- fitting -------------------------------------------------------------------

    def fit(self, corpus: SessionCorpus) -> "UPM":
        """Run collapsed Gibbs with interleaved hyperparameter optimization."""
        if corpus.n_documents == 0:
            raise ValueError("corpus has no documents")
        config = self.config
        K = config.n_topics
        self._corpus = corpus
        D, W, U = corpus.n_documents, corpus.n_words, corpus.n_urls

        self._alpha = np.full(K, config.alpha0)
        self._beta = np.full((K, W), config.beta0)
        self._delta = np.full((K, max(U, 1)), config.delta0)
        self._tau = np.ones((K, 2))

        # Per-document local vocabularies keep the count tables small.
        self._local_word: list[dict[int, int]] = []
        self._local_url: list[dict[int, int]] = []
        self._word_counts: list[np.ndarray] = []  # (K, W_d) per doc
        self._url_counts: list[np.ndarray] = []  # (K, U_d) per doc
        self._word_totals = np.zeros((D, K))
        self._url_totals = np.zeros((D, K))
        self._doc_topic = np.zeros((D, K))
        self._assignments: list[np.ndarray] = []

        for d, doc in enumerate(corpus.documents):
            words = sorted({w for s in doc.sessions for w in s.words})
            urls = sorted({u for s in doc.sessions for u in s.urls})
            self._local_word.append({w: i for i, w in enumerate(words)})
            self._local_url.append({u: i for i, u in enumerate(urls)})
            self._word_counts.append(np.zeros((K, len(words))))
            self._url_counts.append(np.zeros((K, max(len(urls), 1))))
            init_rng = self._doc_rng(d, sweep=0)
            z = np.asarray(
                init_rng.integers(0, K, size=len(doc.sessions)), dtype=int
            )
            self._assignments.append(z)
            for s, session in enumerate(doc.sessions):
                self._apply_session(d, s, int(z[s]), +1)

        if config.n_workers > 1:
            self._fit_parallel()
        else:
            for sweep in range(1, config.iterations + 1):
                for d in range(corpus.n_documents):
                    self._sweep_document(d, self._doc_rng(d, sweep))
                self._maybe_optimize(sweep)
        self._fitted = True
        return self

    def _doc_rng(self, d: int, sweep: int) -> np.random.Generator:
        """Per-(document, sweep) RNG stream.

        Documents only interact through the hyperparameters, which are
        frozen within a sweep — deriving independent streams per document
        makes document-parallel sampling *bit-identical* to the serial run.
        """
        return np.random.default_rng(
            np.random.SeedSequence([self.config.seed, sweep, d])
        )

    def _maybe_optimize(self, sweep: int) -> None:
        config = self.config
        if config.hyperopt_every and sweep % config.hyperopt_every == 0:
            self._optimize_hyperparameters()
            if config.use_time:
                self._refit_tau()

    def _fit_parallel(self) -> None:
        """Document-parallel Gibbs over worker threads.

        The paper notes the UPM "can take advantage of parallel Gibbs
        sampling paradigms [31]".  For the UPM the document partition is
        exact (not an AD-LDA approximation): all cross-document coupling
        goes through the hyperparameters, which only change at the
        synchronization barrier between sweeps.
        """
        from concurrent.futures import ThreadPoolExecutor

        config = self.config
        D = self._corpus.n_documents
        n_workers = min(config.n_workers, D)
        blocks = [list(range(D))[i::n_workers] for i in range(n_workers)]

        def run_block(block: list[int], sweep: int) -> None:
            for d in block:
                self._sweep_document(d, self._doc_rng(d, sweep))

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            for sweep in range(1, config.iterations + 1):
                futures = [
                    pool.submit(run_block, block, sweep) for block in blocks
                ]
                for future in futures:
                    future.result()
                self._maybe_optimize(sweep)

    def _apply_session(self, d: int, s: int, k: int, sign: int) -> None:
        doc = self._corpus.documents[d]
        session = doc.sessions[s]
        self._doc_topic[d, k] += sign
        word_map = self._local_word[d]
        for w in session.words:
            self._word_counts[d][k, word_map[w]] += sign
        self._word_totals[d, k] += sign * len(session.words)
        if self.config.use_urls and session.urls:
            url_map = self._local_url[d]
            for u in session.urls:
                self._url_counts[d][k, url_map[u]] += sign
            self._url_totals[d, k] += sign * len(session.urls)

    def _session_log_prob(self, d: int, s: int) -> np.ndarray:
        """Eq. 23 log-probabilities over topics for session (d, s)."""
        config = self.config
        doc = self._corpus.documents[d]
        session = doc.sessions[s]
        K = config.n_topics

        logits = np.log(self._doc_topic[d] + self._alpha)

        if config.use_time:
            t = min(max(session.timestamp, _TIME_EPS), 1.0 - _TIME_EPS)
            a, b = self._tau[:, 0], self._tau[:, 1]
            logits += (
                (a - 1.0) * np.log(t)
                + (b - 1.0) * np.log1p(-t)
                - betaln(a, b)
            )

        word_map = self._local_word[d]
        beta_sums = self._beta.sum(axis=1)
        unique_words: dict[int, int] = {}
        for w in session.words:
            unique_words[w] = unique_words.get(w, 0) + 1
        for w, n in unique_words.items():
            base = self._word_counts[d][:, word_map[w]] + self._beta[:, w]
            logits += gammaln(base + n) - gammaln(base)
        totals = self._word_totals[d] + beta_sums
        logits += gammaln(totals) - gammaln(totals + len(session.words))

        if config.use_urls and session.urls:
            url_map = self._local_url[d]
            delta_sums = self._delta.sum(axis=1)
            unique_urls: dict[int, int] = {}
            for u in session.urls:
                unique_urls[u] = unique_urls.get(u, 0) + 1
            for u, n in unique_urls.items():
                base = self._url_counts[d][:, url_map[u]] + self._delta[:, u]
                logits += gammaln(base + n) - gammaln(base)
            url_totals = self._url_totals[d] + delta_sums
            logits += gammaln(url_totals) - gammaln(
                url_totals + len(session.urls)
            )
        return logits

    def _sweep_document(self, d: int, rng: np.random.Generator) -> None:
        """One Gibbs sweep over the sessions of document *d*."""
        doc = self._corpus.documents[d]
        for s in range(len(doc.sessions)):
            current = int(self._assignments[d][s])
            self._apply_session(d, s, current, -1)
            logits = self._session_log_prob(d, s)
            logits -= logits.max()
            new = sample_index(rng, np.exp(logits))
            self._assignments[d][s] = new
            self._apply_session(d, s, new, +1)

    def _optimize_hyperparameters(self) -> None:
        config = self.config
        optimize = (
            optimize_dirichlet_lbfgs
            if config.hyperopt_method == "lbfgs"
            else optimize_dirichlet_fixed_point
        )
        # Evidence maximization for alpha needs a population of documents;
        # on a handful of users it just fits noise (alpha blows up and
        # flattens every profile), so keep the prior fixed below 5 docs.
        if self._corpus.n_documents >= 5:
            self._alpha = optimize(self._doc_topic, self._alpha)
        K = config.n_topics
        D = self._corpus.n_documents
        W = self._corpus.n_words
        for k in range(K):
            counts = np.zeros((D, W))
            for d in range(D):
                for w, local in self._local_word[d].items():
                    counts[d, w] = self._word_counts[d][k, local]
            self._beta[k] = optimize(counts, self._beta[k])
        if config.use_urls and self._corpus.n_urls > 0:
            U = self._corpus.n_urls
            for k in range(K):
                counts = np.zeros((D, U))
                for d in range(D):
                    for u, local in self._local_url[d].items():
                        counts[d, u] = self._url_counts[d][k, local]
                self._delta[k] = optimize(counts, self._delta[k])

    def _refit_tau(self) -> None:
        """Method-of-moments Beta refit per topic (Eqs. 28-29)."""
        K = self.config.n_topics
        stamps: list[list[float]] = [[] for _ in range(K)]
        for d, doc in enumerate(self._corpus.documents):
            for s, session in enumerate(doc.sessions):
                stamps[int(self._assignments[d][s])].append(session.timestamp)
        for k in range(K):
            values = np.asarray(stamps[k])
            if values.size < 2:
                self._tau[k] = (1.0, 1.0)
                continue
            mean = float(np.clip(values.mean(), _TIME_EPS, 1 - _TIME_EPS))
            var = float(values.var())
            if var <= 0:
                var = 1e-4
            common = mean * (1 - mean) / var - 1.0
            if common <= 0:
                self._tau[k] = (1.0, 1.0)
                continue
            self._tau[k, 0] = max(mean * common, _MIN_TAU)
            self._tau[k, 1] = max((1 - mean) * common, _MIN_TAU)

    # -- fitted accessors ------------------------------------------------------------

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("UPM is not fitted; call fit(corpus) first")

    @property
    def corpus(self) -> SessionCorpus:
        """The training corpus."""
        self._require_fitted()
        return self._corpus

    @property
    def alpha(self) -> np.ndarray:
        """Learned document-topic hyperparameters (copy)."""
        self._require_fitted()
        return self._alpha.copy()

    @property
    def beta(self) -> np.ndarray:
        """Learned (K, W) topic-word hyperparameters (copy)."""
        self._require_fitted()
        return self._beta.copy()

    @property
    def delta(self) -> np.ndarray:
        """Learned (K, U) topic-URL hyperparameters (copy)."""
        self._require_fitted()
        return self._delta.copy()

    @property
    def tau(self) -> np.ndarray:
        """Per-topic Beta time parameters, shape (K, 2)."""
        self._require_fitted()
        return self._tau.copy()

    @property
    def theta(self) -> np.ndarray:
        """User profiles ``θ_dk`` (Eq. 30), shape (D, K), rows sum to 1."""
        self._require_fitted()
        raw = self._doc_topic + self._alpha
        return raw / raw.sum(axis=1, keepdims=True)

    def profile_of(self, user_id: str) -> np.ndarray:
        """One user's ``θ_d·`` vector."""
        self._require_fitted()
        d = self._corpus.doc_index[user_id]
        return self.theta[d]

    def topic_word_distribution(self, d: int) -> np.ndarray:
        """(K, W) per-user smoothed topic-word distributions.

        ``φ̂_kwd = (C_kwd + β_kw) / (C_k·d + Σ_w β_kw)`` — the document-
        specific word distributions of Algorithm 2 (``φ_kd``), reconstructed
        from counts and learned ``β``.
        """
        self._require_fitted()
        W = self._corpus.n_words
        K = self.config.n_topics
        counts = np.zeros((K, W))
        for w, local in self._local_word[d].items():
            counts[:, w] = self._word_counts[d][:, local]
        smoothed = counts + self._beta
        return smoothed / smoothed.sum(axis=1, keepdims=True)

    def predictive_word_distribution(self, d: int) -> np.ndarray:
        """``p(w | d) = Σ_k θ_dk φ̂_kwd`` — the Eq. 35 predictive."""
        self._require_fitted()
        return self.theta[d] @ self.topic_word_distribution(d)

    def user_tau(self, user_id: str) -> np.ndarray:
        """Per-user Beta time parameters, shape (K, 2).

        Method-of-moments fit over the *user's own* session timestamps per
        topic.  Topic labels in the UPM are document-local (the emission
        counts are per-document), so per-user temporal profiles are the
        meaningful unit; topics with fewer than two of the user's sessions
        get the flat Beta(1, 1).
        """
        self._require_fitted()
        d = self._corpus.doc_index[user_id]
        K = self.config.n_topics
        doc = self._corpus.documents[d]
        stamps: list[list[float]] = [[] for _ in range(K)]
        for s, session in enumerate(doc.sessions):
            stamps[int(self._assignments[d][s])].append(session.timestamp)
        tau = np.ones((K, 2))
        for k in range(K):
            values = np.asarray(stamps[k])
            if values.size < 2:
                continue
            mean = float(np.clip(values.mean(), _TIME_EPS, 1 - _TIME_EPS))
            var = float(values.var())
            if var <= 0:
                var = 1e-4
            common = mean * (1 - mean) / var - 1.0
            if common <= 0:
                continue
            tau[k, 0] = max(mean * common, _MIN_TAU)
            tau[k, 1] = max((1 - mean) * common, _MIN_TAU)
        return tau

    def profile_at(self, user_id: str, t_norm: float) -> np.ndarray:
        """Time-modulated profile ``θ_d(t) ∝ θ_dk · Beta(t; τ_dk)``.

        Serving-time use of the temporal channel (extension beyond the
        paper's Eq. 31, which ignores the query time): the user's topic
        preferences are re-weighted by each topic's temporal prominence —
        fitted on the *user's own* sessions (see :meth:`user_tau`) — at the
        moment of the query, capturing the "dynamic change of a user's
        preference" the introduction motivates.
        """
        self._require_fitted()
        if not 0.0 <= t_norm <= 1.0:
            raise ValueError(f"t_norm must be in [0, 1], got {t_norm}")
        d = self._corpus.doc_index[user_id]
        theta = self.theta[d]
        if not self.config.use_time:
            return theta
        tau = self.user_tau(user_id)
        t = min(max(t_norm, _TIME_EPS), 1.0 - _TIME_EPS)
        a, b = tau[:, 0], tau[:, 1]
        log_pdf = (
            (a - 1.0) * np.log(t) + (b - 1.0) * np.log1p(-t) - betaln(a, b)
        )
        weighted = theta * np.exp(log_pdf - log_pdf.max())
        total = weighted.sum()
        if total <= 0:
            return theta
        return weighted / total

    def preference_score(
        self, user_id: str, query: str, t_norm: float | None = None
    ) -> float:
        """``P(q | d)`` of Eq. 31: mean per-word preference of the user.

        The paper's multidimensional-Beta ratio, evaluated for the single
        occurrence of each query word, reduces to the smoothed per-user
        topic-word probability mixed by ``θ_d``; out-of-vocabulary words are
        skipped and a query with no known words scores 0.  When *t_norm*
        (normalized query time) is given, the mixture uses the
        time-modulated profile of :meth:`profile_at` instead of ``θ_d``.
        """
        self._require_fitted()
        if user_id not in self._corpus.doc_index:
            return 0.0
        d = self._corpus.doc_index[user_id]
        word_ids = self._corpus.word_ids(tokenize(query))
        if not word_ids:
            return 0.0
        if t_norm is None:
            mixture = self.theta[d]
        else:
            mixture = self.profile_at(user_id, t_norm)
        predictive = mixture @ self.topic_word_distribution(d)
        return float(np.mean([predictive[w] for w in word_ids]))
