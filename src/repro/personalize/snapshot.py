"""Serialisable user-profile snapshots for online serving.

The paper stresses that UPM profiles are "concise enough for offline
storage and efficient online personalization" (Sec. V-A).  This module
materialises that claim: a :class:`SnapshotStore` captures, per user, the
topic vector ``θ_d`` and a truncated predictive word distribution, round-
trips through JSON, and serves ``P(q|d)`` scores without the fitted model
object (or the training corpus) in memory.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from pathlib import Path

from repro.personalize.upm import UPM
from repro.utils.ranking import RankedList, ranks_from_scores
from repro.utils.text import tokenize

__all__ = ["ProfileSnapshot", "SnapshotStore"]

#: Words below this predictive probability are dropped from the snapshot;
#: scoring treats missing words as having exactly this floor probability.
_FLOOR = 1e-5


@dataclass(frozen=True)
class ProfileSnapshot:
    """One user's serialisable profile.

    Attributes:
        user_id: The user.
        theta: Topic-preference vector (Eq. 30) as a plain list.
        predictive: Word -> predictive probability, truncated to the words
            whose probability exceeds the snapshot floor.
    """

    user_id: str
    theta: tuple[float, ...]
    predictive: dict[str, float]

    def score(self, query: str) -> float:
        """``P(q|d)`` from the truncated predictive (Eq. 31)."""
        words = tokenize(query)
        if not words:
            return 0.0
        return sum(self.predictive.get(w, _FLOOR) for w in words) / len(words)


class SnapshotStore:
    """Offline-storable profile store with the live store's interface."""

    def __init__(self, profiles: dict[str, ProfileSnapshot]) -> None:
        self._profiles = dict(profiles)

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_model(cls, model: UPM, top_words: int = 500) -> "SnapshotStore":
        """Snapshot a fitted UPM, keeping each user's *top_words* words."""
        if top_words < 1:
            raise ValueError("top_words must be >= 1")
        corpus = model.corpus
        words = corpus.word_of_id
        profiles: dict[str, ProfileSnapshot] = {}
        theta = model.theta
        for d, doc in enumerate(corpus.documents):
            predictive = model.predictive_word_distribution(d)
            order = predictive.argsort()[::-1][:top_words]
            truncated = {
                words[int(w)]: float(predictive[int(w)])
                for w in order
                if predictive[int(w)] > _FLOOR
            }
            profiles[doc.user_id] = ProfileSnapshot(
                user_id=doc.user_id,
                theta=tuple(float(x) for x in theta[d]),
                predictive=truncated,
            )
        return cls(profiles)

    @classmethod
    def from_profile_store(
        cls, store, top_words: int = 500
    ) -> "SnapshotStore":
        """Snapshot an :class:`~repro.personalize.profiles.ArrayProfileStore`.

        Same truncation as :meth:`from_model`, but built from the packed
        serving arrays — so a worker attached to a shared profile plane
        (or a folded profile generation) can be persisted to JSON without
        the fitted model object anywhere in the process.
        """
        if top_words < 1:
            raise ValueError("top_words must be >= 1")
        words = store.words
        profiles: dict[str, ProfileSnapshot] = {}
        for user_id in store.user_ids:
            predictive = store.predictive_word_distribution(user_id)
            order = predictive.argsort()[::-1][:top_words]
            truncated = {
                words[int(w)]: float(predictive[int(w)])
                for w in order
                if predictive[int(w)] > _FLOOR
            }
            profiles[user_id] = ProfileSnapshot(
                user_id=user_id,
                theta=tuple(float(x) for x in store.profile(user_id).theta),
                predictive=truncated,
            )
        return cls(profiles)

    # -- store interface -------------------------------------------------------------

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    @property
    def user_ids(self) -> list[str]:
        """All snapshotted users, sorted."""
        return sorted(self._profiles)

    def profile(self, user_id: str) -> ProfileSnapshot:
        """The snapshot of *user_id*; raises ``KeyError`` if unknown."""
        try:
            return self._profiles[user_id]
        except KeyError:
            raise KeyError(f"no snapshot for user {user_id!r}") from None

    def score(self, user_id: str, query: str) -> float:
        """``P(q|d)`` (0.0 for unknown users)."""
        profile = self._profiles.get(user_id)
        if profile is None:
            return 0.0
        return profile.score(query)

    def score_candidates(
        self, user_id: str, candidates: list[str]
    ) -> dict[str, float]:
        """``P(q|d)`` for every candidate."""
        return {query: self.score(user_id, query) for query in candidates}

    def rank_candidates(
        self, user_id: str, candidates: list[str]
    ) -> RankedList[str]:
        """Candidates by descending snapshot preference."""
        return ranks_from_scores(self.score_candidates(user_id, candidates))

    # -- (de)serialisation -----------------------------------------------------------

    def to_json(self, destination: str | Path | io.TextIOBase) -> None:
        """Write the store as a single JSON document."""
        payload = {
            "format": "pqsda-profile-snapshot-v1",
            "profiles": [
                {
                    "user_id": profile.user_id,
                    "theta": list(profile.theta),
                    "predictive": profile.predictive,
                }
                for profile in self._profiles.values()
            ],
        }
        if isinstance(destination, io.TextIOBase):
            json.dump(payload, destination)
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)

    @classmethod
    def from_json(cls, source: str | Path | io.TextIOBase) -> "SnapshotStore":
        """Load a store written by :meth:`to_json`."""
        if isinstance(source, io.TextIOBase):
            payload = json.load(source)
        else:
            with open(source, encoding="utf-8") as handle:
                payload = json.load(handle)
        if payload.get("format") != "pqsda-profile-snapshot-v1":
            raise ValueError(
                f"unrecognised snapshot format {payload.get('format')!r}"
            )
        profiles = {
            entry["user_id"]: ProfileSnapshot(
                user_id=entry["user_id"],
                theta=tuple(entry["theta"]),
                predictive={k: float(v) for k, v in entry["predictive"].items()},
            )
            for entry in payload["profiles"]
        }
        return cls(profiles)
