"""Vectorized, process-parallel Gibbs kernel behind ``UPM.fit`` (fast engine).

The reference sampler (``UPM._session_log_prob`` / ``UPM._sweep_document``)
is the specification: per session it rebuilds a unique-token dict, calls
``gammaln`` twice per unique token on a ``(K,)`` vector, and recomputes the
``β``/``δ`` row sums — a full ``(K, W)`` reduction — on *every* session
evaluation.  This module evaluates the identical Eq. 23 quantities an
order of magnitude faster while remaining **bit-identical**:

* per-session token structure (unique ids in first-occurrence order, their
  multiplicities, local column indices) is precomputed once per fit
  (:func:`repro.topicmodels.corpus.first_occurrence_counts`);
* the ``2·(n_unique)+2`` (plus URL) ``gammaln`` arguments of one session
  are assembled into a single matrix and evaluated with one ufunc call
  into a preallocated buffer; ``gammaln`` is elementwise, so each output
  value equals the per-token call of the reference exactly;
* the whole Eq. 23 computation is one left-to-right chain of ``(K,)``
  additions — prior, time term, per-token terms, totals terms — so the
  kernel lays the terms out as rows of a ``(width, K)`` matrix and folds
  them with a single ``np.add.accumulate``, which is *sequential by
  definition* (``r[i] = r[i-1] + a[i]``, never pairwise) and therefore
  reproduces the reference's ``+=`` chain bit for bit;
* ``β``/``δ`` row sums, per-session ``β``/``δ`` column gathers, and the
  Beta-time log density are cached and refreshed only at hyperparameter
  barriers — the only points where they can change;
* count updates apply a session's whole token vector at once (integer
  counts are exact in float64, so ``+= n`` equals ``n`` repetitions of
  ``+= 1`` bitwise).

The bit-identity contract (enforced by ``tests/personalize/``):

1. the per-``(document, sweep)`` RNG streams are shared with the reference
   engine (:func:`doc_rng`), so draws depend on neither the engine nor the
   worker count;
2. addition order follows the reference exactly (floating-point addition
   is not associative): the accumulate chain lists the terms in the
   reference's accumulation order, and every term is produced by exact
   elementwise operations (copies, ``+``, ``-``) from values the reference
   also computes;
3. values the reference computes through transcendental ufuncs
   (``log``/``log1p``/``exp``) are evaluated on inputs with the same
   memory layout (contiguous ``(K,)``) so potentially SIMD-divergent
   strided paths are never involved, and cached scalars (the time logit)
   reuse the reference's exact scalar expressions.

**Process parallelism.**  The paper notes the UPM "can take advantage of
parallel Gibbs sampling paradigms [31]" (AD-LDA-style document
partitioning).  For the UPM the partition is *exact*, not an
approximation: all cross-document coupling flows through ``α``/``β``/
``δ``/``τ``, which are frozen between hyperopt barriers.  Workers
therefore sample disjoint document shards for a whole barrier-to-barrier
segment with no communication, and the master merges their count deltas
(in canonical document order) before optimizing hyperparameters.  The
module-level worker entrypoints are spawn-safe; the fork start method is
preferred when the platform offers it because it shares the read-only
corpus with workers for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import betaln, gammaln

from repro.topicmodels.corpus import SessionCorpus, first_occurrence_counts
from repro.utils.rng import sample_index_with_total

__all__ = [
    "TIME_EPS",
    "doc_rng",
    "barrier_segments",
    "FastKernel",
    "ShardState",
]

#: Session timestamps are clipped into [TIME_EPS, 1 - TIME_EPS] before the
#: Beta density is evaluated (shared with the reference engine in upm.py).
TIME_EPS = 1e-3


def doc_rng(seed: int, sweep: int, d: int) -> np.random.Generator:
    """The per-``(document, sweep)`` RNG stream of document *d*.

    Documents only interact through the hyperparameters, which are frozen
    within a sweep — deriving independent streams per document makes
    document-parallel sampling *bit-identical* to the serial run for any
    worker count, in either engine.
    """
    return np.random.default_rng(np.random.SeedSequence([seed, sweep, d]))


def barrier_segments(
    iterations: int, hyperopt_every: int
) -> list[tuple[int, int]]:
    """Split sweeps ``1..iterations`` at hyperparameter barriers.

    Returns inclusive ``(start, stop)`` ranges such that every multiple of
    *hyperopt_every* ends a segment; between barriers no cross-document
    state changes, so each segment can run fully in parallel.
    """
    if not hyperopt_every:
        return [(1, iterations)]
    segments: list[tuple[int, int]] = []
    start = 1
    while start <= iterations:
        stop = min(iterations, ((start - 1) // hyperopt_every + 1)
                   * hyperopt_every)
        segments.append((start, stop))
        start = stop + 1
    return segments


class _SessionView:
    """Precomputed per-session structure: the session's unique-token CSR row
    plus barrier-cached hyperparameter gathers and buffer widths."""

    __slots__ = (
        "w_loc", "w_cnt", "w_cnt_col", "w_gid", "n_words",
        "u_loc", "u_cnt", "u_cnt_col", "u_gid", "n_urls",
        "t", "time_logit", "beta_rows", "delta_rows",
        "args_width", "chain_width",
    )

    def __init__(self) -> None:
        self.u_loc = None
        self.time_logit = None
        self.beta_rows = None
        self.delta_rows = None


@dataclass
class ShardState:
    """Mutable sampler state of one document shard (rows in shard order).

    This is the unit shipped between master and worker processes at
    segment boundaries: everything a worker needs beyond the read-only
    corpus and the frozen hyperparameters.
    """

    doc_topic: np.ndarray  # (n_docs, K)
    word_totals: np.ndarray  # (n_docs, K)
    url_totals: np.ndarray  # (n_docs, K)
    word_counts: list  # per doc: (K, W_d)
    url_counts: list  # per doc: (K, max(U_d, 1))
    assignments: list  # per doc: (S_d,) int


class FastKernel:
    """Vectorized Gibbs sweeps over one shard of documents.

    The kernel binds *references* to the sampler state (it mutates the
    arrays in place) and caches every quantity that is constant between
    hyperparameter barriers.  ``set_hyperparameters`` must be called after
    every barrier to refresh the caches.
    """

    def __init__(
        self,
        corpus: SessionCorpus,
        config,
        doc_ids,
        local_word: list | None = None,
        local_url: list | None = None,
    ) -> None:
        self._seed = config.seed
        self._K = config.n_topics
        self._use_time = config.use_time
        self._use_urls = config.use_urls
        self._doc_ids = list(doc_ids)
        self._views: list[list[_SessionView]] = []
        # Chain row 0 is the topic prior; the time logit, when enabled,
        # is row 1 and every Eq. 23 evidence term follows.
        self._terms_at = 2 if self._use_time else 1
        max_args = 1
        max_chain = 1
        for d in self._doc_ids:
            doc = corpus.documents[d]
            if local_word is not None:
                word_map = local_word[d]
            else:
                words = sorted({w for s in doc.sessions for w in s.words})
                word_map = {w: i for i, w in enumerate(words)}
            if local_url is not None:
                url_map = local_url[d]
            else:
                urls = sorted({u for s in doc.sessions for u in s.urls})
                url_map = {u: i for i, u in enumerate(urls)}
            views: list[_SessionView] = []
            for session in doc.sessions:
                view = _SessionView()
                gids, counts = first_occurrence_counts(session.words)
                view.w_gid = gids
                view.w_cnt = counts
                view.w_cnt_col = counts[:, None].copy()
                view.w_loc = np.array(
                    [word_map[w] for w in gids], dtype=np.intp
                )
                view.n_words = float(len(session.words))
                n = gids.size
                view.args_width = 2 * n + 2
                view.chain_width = self._terms_at + n + 1
                if self._use_urls and session.urls:
                    ugids, ucounts = first_occurrence_counts(session.urls)
                    view.u_gid = ugids
                    view.u_cnt = ucounts
                    view.u_cnt_col = ucounts[:, None].copy()
                    view.u_loc = np.array(
                        [url_map[u] for u in ugids], dtype=np.intp
                    )
                    view.n_urls = float(len(session.urls))
                    view.args_width += 2 * ugids.size + 2
                    view.chain_width += ugids.size + 1
                view.t = min(max(session.timestamp, TIME_EPS), 1.0 - TIME_EPS)
                max_args = max(max_args, view.args_width)
                max_chain = max(max_chain, view.chain_width)
                views.append(view)
            self._views.append(views)
        # Scratch buffers shared by every session (sliced to each session's
        # width); rows are (K,) vectors so the hot unary ufuncs always see
        # contiguous memory, like the reference's fresh arrays.
        self._args = np.empty((max_args, self._K))
        self._gammas = np.empty((max_args, self._K))
        self._chain = np.empty((max_chain, self._K))

    # -- state + hyperparameter binding ----------------------------------------------

    def bind_state(self, state: ShardState) -> None:
        """Attach the mutable sampler state (mutated in place, by row)."""
        self._state = state

    def set_hyperparameters(
        self,
        alpha: np.ndarray,
        beta: np.ndarray,
        delta: np.ndarray,
        tau: np.ndarray,
    ) -> None:
        """Bind current hyperparameters and refresh the barrier caches."""
        self._alpha = alpha
        self._beta_sums = beta.sum(axis=1)
        self._delta_sums = delta.sum(axis=1)
        beta_t = beta.T
        delta_t = delta.T
        if self._use_time:
            a, b = tau[:, 0], tau[:, 1]
            log_beta_norm = betaln(a, b)
        for views in self._views:
            for view in views:
                view.beta_rows = beta_t[view.w_gid]
                if view.u_loc is not None:
                    view.delta_rows = delta_t[view.u_gid]
                if self._use_time:
                    # Scalar-input expressions, exactly as the reference
                    # engine evaluates them per session.
                    t = view.t
                    view.time_logit = (
                        (a - 1.0) * np.log(t)
                        + (b - 1.0) * np.log1p(-t)
                        - log_beta_norm
                    )

    # -- sweeps ----------------------------------------------------------------------

    def sweep(self, sweep_index: int) -> np.ndarray:
        """One Gibbs sweep over the shard; returns per-document pseudo-LL."""
        out = np.empty(len(self._doc_ids))
        for pos, d in enumerate(self._doc_ids):
            out[pos] = self.sweep_document(
                pos, doc_rng(self._seed, sweep_index, d)
            )
        return out

    def sweep_document(self, pos: int, rng: np.random.Generator) -> float:
        """Resample every session of the document at shard position *pos*.

        Returns the document's Gibbs pseudo-log-likelihood: the summed log
        posterior probability of the drawn assignments, a free byproduct
        of the already-computed logits.
        """
        state = self._state
        doc_topic = state.doc_topic[pos]
        word_counts = state.word_counts[pos]
        url_counts = state.url_counts[pos]
        word_totals = state.word_totals[pos]
        url_totals = state.url_totals[pos]
        word_counts_t = word_counts.T
        url_counts_t = url_counts.T
        z = state.assignments[pos]
        alpha = self._alpha
        beta_sums = self._beta_sums
        delta_sums = self._delta_sums
        terms_at = self._terms_at
        log_likelihood = 0.0

        for s, view in enumerate(self._views[pos]):
            k_old = int(z[s])
            has_urls = view.u_loc is not None
            doc_topic[k_old] -= 1.0
            word_counts[k_old, view.w_loc] -= view.w_cnt
            word_totals[k_old] -= view.n_words
            if has_urls:
                url_counts[k_old, view.u_loc] -= view.u_cnt
                url_totals[k_old] -= view.n_urls

            chain = self._chain[: view.chain_width]
            args = self._args[: view.args_width]

            prior = chain[0]
            np.add(doc_topic, alpha, out=prior)
            np.log(prior, out=prior)
            if view.time_logit is not None:
                chain[1] = view.time_logit

            # Rows of ``args``: [base + count | base | totals | totals + len]
            # per channel, where base = counts + hyperparameter gather.
            n = view.w_loc.size
            base = args[n: 2 * n]
            np.add(word_counts_t[view.w_loc], view.beta_rows, out=base)
            np.add(base, view.w_cnt_col, out=args[:n])
            totals = args[2 * n]
            np.add(word_totals, beta_sums, out=totals)
            np.add(totals, view.n_words, out=args[2 * n + 1])
            if has_urls:
                offset = 2 * n + 2
                m = view.u_loc.size
                url_base = args[offset + m: offset + 2 * m]
                np.add(
                    url_counts_t[view.u_loc], view.delta_rows, out=url_base
                )
                np.add(url_base, view.u_cnt_col, out=args[offset: offset + m])
                url_tot = args[offset + 2 * m]
                np.add(url_totals, delta_sums, out=url_tot)
                np.add(url_tot, view.n_urls, out=args[offset + 2 * m + 1])

            gammas = self._gammas[: view.args_width]
            gammaln(args, out=gammas)

            # Lay the Eq. 23 terms out in the reference's accumulation
            # order; subtraction is exact, so each chain row holds the
            # identical term the reference adds with ``+=``.
            np.subtract(
                gammas[:n], gammas[n: 2 * n],
                out=chain[terms_at: terms_at + n],
            )
            np.subtract(
                gammas[2 * n], gammas[2 * n + 1], out=chain[terms_at + n]
            )
            if has_urls:
                at = terms_at + n + 1
                np.subtract(
                    gammas[offset: offset + m],
                    gammas[offset + m: offset + 2 * m],
                    out=chain[at: at + m],
                )
                np.subtract(
                    gammas[offset + 2 * m], gammas[offset + 2 * m + 1],
                    out=chain[at + m],
                )

            # Sequential left-to-right fold == the reference's += chain.
            np.add.accumulate(chain, axis=0, out=chain)
            logits = chain[view.chain_width - 1]
            logits -= logits.max()
            weights = np.exp(logits)
            k_new, total = sample_index_with_total(rng, weights)
            log_likelihood += float(logits[k_new]) - math.log(total)

            z[s] = k_new
            doc_topic[k_new] += 1.0
            word_counts[k_new, view.w_loc] += view.w_cnt
            word_totals[k_new] += view.n_words
            if has_urls:
                url_counts[k_new, view.u_loc] += view.u_cnt
                url_totals[k_new] += view.n_urls
        return log_likelihood


# -- process-worker entrypoints (spawn-safe: module level, no closures) --------------

_WORKER: dict = {}


def init_worker(corpus: SessionCorpus, config) -> None:
    """Process-pool initializer: pin the read-only corpus and config."""
    _WORKER["corpus"] = corpus
    _WORKER["config"] = config
    _WORKER["kernels"] = {}


def run_shard_segment(
    doc_ids: tuple,
    state: ShardState,
    hyperparameters: tuple,
    sweep_start: int,
    sweep_stop: int,
):
    """Run sweeps ``sweep_start..sweep_stop`` over one document shard.

    Returns ``(state, log_likelihoods, seconds)`` where *log_likelihoods*
    is ``(n_sweeps, n_docs)`` in shard order and *seconds* the per-sweep
    wall clock of this shard.  The kernel (per-session precompute) is
    cached across segments in the worker process; only the mutable state
    and the refreshed hyperparameters travel.
    """
    from time import perf_counter

    kernels = _WORKER["kernels"]
    kernel = kernels.get(doc_ids)
    if kernel is None:
        kernel = FastKernel(_WORKER["corpus"], _WORKER["config"], doc_ids)
        kernels[doc_ids] = kernel
    kernel.bind_state(state)
    kernel.set_hyperparameters(*hyperparameters)
    n_sweeps = sweep_stop - sweep_start + 1
    log_likelihoods = np.empty((n_sweeps, len(doc_ids)))
    seconds = np.empty(n_sweeps)
    for i, sweep in enumerate(range(sweep_start, sweep_stop + 1)):
        start = perf_counter()
        log_likelihoods[i] = kernel.sweep(sweep)
        seconds[i] = perf_counter() - start
    return state, log_likelihoods, seconds
