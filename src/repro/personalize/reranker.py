"""Personalized re-ranking wrapper for arbitrary suggesters.

The paper's Fig. 5 applies "our personalization method" to every
diversification-stage baseline (FRW(P), BRW(P), HT(P), DQS(P)): the base
method produces candidates, the UPM profile scores them, and Borda fuses
the two rankings — exactly PQS-DA's own final stage.  This wrapper makes
that composition a first-class object.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import Suggester
from repro.logs.schema import QueryRecord
from repro.personalize.borda import personalize_ranking
from repro.personalize.profiles import UserProfileStore

__all__ = ["PersonalizedReranker"]


class PersonalizedReranker(Suggester):
    """Wrap *base* so its output is re-ranked by the user's UPM profile.

    Suggested name follows the paper: ``"FRW(P)"`` for a wrapped FRW.
    Anonymous calls (no ``user_id`` or unprofiled user) pass the base
    ranking through unchanged.
    """

    def __init__(
        self,
        base: Suggester,
        store: UserProfileStore,
        personalization_weight: float = 1.0,
    ) -> None:
        if personalization_weight < 0:
            raise ValueError("personalization_weight must be >= 0")
        self._base = base
        self._store = store
        self._weight = personalization_weight
        self.name = f"{base.name}(P)"

    @property
    def base(self) -> Suggester:
        """The wrapped suggester."""
        return self._base

    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
    ) -> list[str]:
        candidates = self._base.suggest(
            query, k=k, user_id=user_id, context=context, timestamp=timestamp
        )
        if not candidates or user_id is None or user_id not in self._store:
            return candidates
        scores = self._store.score_candidates(user_id, candidates)
        final = personalize_ranking(
            candidates, scores, personalization_weight=self._weight
        )
        return final.top(k)
