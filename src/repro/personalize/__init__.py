"""Personalization component (paper Sec. V).

Offline, the **User Profiling Model** (:mod:`repro.personalize.upm`) is a
collapsed-Gibbs topic model over per-user documents whose topic unit is the
search session; it jointly models query words, clicked URLs and
Beta-distributed timestamps, and learns asymmetric hyperparameters so each
user's idiosyncratic word/URL usage is captured.  Online, a candidate's
preference score ``P(q|d)`` (Eq. 31) yields a personal ranking which is
fused with the diversification ranking via Borda's method
(:mod:`repro.personalize.borda`).
"""

from repro.personalize.borda import personalize_ranking
from repro.personalize.hyperopt import (
    dirichlet_log_likelihood,
    optimize_dirichlet_fixed_point,
    optimize_dirichlet_lbfgs,
)
from repro.personalize.profiles import (
    ArrayProfileStore,
    ProfileArrays,
    UserProfile,
    UserProfileStore,
)
from repro.personalize.upm import UPM, UPMConfig, UPMFitStats, fit_beta_moments

__all__ = [
    "UPM",
    "UPMConfig",
    "UPMFitStats",
    "ArrayProfileStore",
    "ProfileArrays",
    "UserProfile",
    "UserProfileStore",
    "fit_beta_moments",
    "dirichlet_log_likelihood",
    "optimize_dirichlet_fixed_point",
    "optimize_dirichlet_lbfgs",
    "personalize_ranking",
]
