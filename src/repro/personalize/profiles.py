"""User profiles and the online preference-scoring store (paper Sec. V-B).

:class:`UserProfileStore` is the serving-side view of a fitted UPM: compact
per-user topic vectors plus the scoring needed to rank suggestion
candidates.  Profiles are plain data (the paper stresses they are "concise
enough for offline storage"), so the store can also be built from persisted
vectors without the model object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.personalize.upm import UPM
from repro.utils.ranking import RankedList, ranks_from_scores

__all__ = ["UserProfile", "UserProfileStore"]


@dataclass(frozen=True)
class UserProfile:
    """One user's offline profile.

    Attributes:
        user_id: The user.
        theta: Topic-preference vector (Eq. 30), sums to 1.
    """

    user_id: str
    theta: np.ndarray

    def __post_init__(self) -> None:
        theta = np.asarray(self.theta, dtype=float)
        if theta.ndim != 1:
            raise ValueError("theta must be a vector")
        if theta.size == 0 or not np.isclose(theta.sum(), 1.0, atol=1e-6):
            raise ValueError("theta must be a non-empty distribution")
        object.__setattr__(self, "theta", theta)

    @property
    def dominant_topic(self) -> int:
        """Index of the user's strongest topic."""
        return int(self.theta.argmax())


class UserProfileStore:
    """Per-user preference scoring over suggestion candidates."""

    def __init__(self, model: UPM) -> None:
        self._model = model
        self._profiles = {
            doc.user_id: UserProfile(
                user_id=doc.user_id,
                theta=model.theta[i],
            )
            for i, doc in enumerate(model.corpus.documents)
        }

    @property
    def model(self) -> UPM:
        """The fitted UPM behind the store (e.g. for ``fit_stats``)."""
        return self._model

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    @property
    def user_ids(self) -> list[str]:
        """All profiled users, sorted."""
        return sorted(self._profiles)

    def profile(self, user_id: str) -> UserProfile:
        """The profile of *user_id*; raises ``KeyError`` if unknown."""
        try:
            return self._profiles[user_id]
        except KeyError:
            raise KeyError(f"no profile for user {user_id!r}") from None

    def score(self, user_id: str, query: str) -> float:
        """``P(q|d)`` for one candidate (0.0 for unprofiled users)."""
        return self._model.preference_score(user_id, query)

    def score_candidates(
        self, user_id: str, candidates: list[str]
    ) -> dict[str, float]:
        """``P(q|d)`` for every candidate."""
        return {query: self.score(user_id, query) for query in candidates}

    def rank_candidates(
        self, user_id: str, candidates: list[str]
    ) -> RankedList[str]:
        """Candidates sorted by descending personal preference."""
        return ranks_from_scores(self.score_candidates(user_id, candidates))
