"""User profiles and the online preference-scoring store (paper Sec. V-B).

:class:`UserProfileStore` is the serving-side view of a fitted UPM: compact
per-user topic vectors plus the scoring needed to rank suggestion
candidates.  Profiles are plain data (the paper stresses they are "concise
enough for offline storage"), so the store can also be built from persisted
vectors without the model object — :class:`ProfileArrays` is that persisted
form (flat numpy arrays), and :class:`ArrayProfileStore` scores straight
over it, **bit-identically** to the model-backed store.  The arrays are
exactly what :class:`repro.serve.profile_plane.SharedProfileStore` packs
into a shared-memory segment, so pool workers rebuild the scorer zero-copy.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.obs.registry import NULL_REGISTRY
from repro.personalize.upm import UPM, _TWD_CACHE_SIZE
from repro.utils.ranking import RankedList, ranks_from_scores
from repro.utils.text import tokenize

__all__ = [
    "ArrayProfileStore",
    "ProfileArrays",
    "UserProfile",
    "UserProfileStore",
]


@dataclass(frozen=True)
class UserProfile:
    """One user's offline profile.

    Attributes:
        user_id: The user.
        theta: Topic-preference vector (Eq. 30), sums to 1.
    """

    user_id: str
    theta: np.ndarray

    def __post_init__(self) -> None:
        theta = np.asarray(self.theta, dtype=float)
        if theta.ndim != 1:
            raise ValueError("theta must be a vector")
        if theta.size == 0 or not np.isclose(theta.sum(), 1.0, atol=1e-6):
            raise ValueError("theta must be a non-empty distribution")
        object.__setattr__(self, "theta", theta)

    @property
    def dominant_topic(self) -> int:
        """Index of the user's strongest topic."""
        return int(self.theta.argmax())


@dataclass(frozen=True)
class ProfileArrays:
    """A fitted UPM's serving state as flat arrays (the packable form).

    Everything :meth:`UPM.preference_score` touches, laid out so one copy
    into a shared-memory segment suffices to score in another process:

    Attributes:
        users: User ids in document order (sorted — ``build_corpus`` orders
            documents by user id — which is what the binary-search lookup
            of :class:`ArrayProfileStore` relies on).
        theta: ``(D, K)`` topic-preference matrix (Eq. 30), rows sum to 1.
        theta_weight: ``(D,)`` Dirichlet concentration behind each theta
            row (``n_sessions_d + Σα``) — the state that lets click
            feedback fold into theta incrementally without the model.
        beta: ``(K, W)`` learned topic-word hyperparameters.
        counts_indptr: ``(D+1,)`` row pointer of the per-document word
            counts; document *d*'s block is ``[indptr[d], indptr[d+1])``.
        counts_gids: ``(nnz,)`` global word ids per block row, sorted
            ascending within each document.
        counts: ``(nnz, K)`` per-document topic-word counts ``C_kwd``,
            transposed so each block row is one word's K-vector.
        words: Global word vocabulary in id order (the backoff
            tokenization vocab of serving-time queries).
        tau: Optional ``(D, K, 2)`` per-user Beta time parameters for
            time-modulated profiles, or ``None``.
        generation: Profile generation ordinal (0 = the batch fit).
    """

    users: tuple[str, ...]
    theta: np.ndarray
    theta_weight: np.ndarray
    beta: np.ndarray
    counts_indptr: np.ndarray
    counts_gids: np.ndarray
    counts: np.ndarray
    words: tuple[str, ...]
    tau: np.ndarray | None = None
    generation: int = 0

    @property
    def n_users(self) -> int:
        """Number of profiled users D."""
        return len(self.users)

    @property
    def n_topics(self) -> int:
        """Number of topics K."""
        return int(self.theta.shape[1]) if self.theta.ndim == 2 else 0

    @property
    def n_words(self) -> int:
        """Vocabulary size W."""
        return len(self.words)

    @property
    def nbytes(self) -> int:
        """Total numeric payload bytes (excluding the string vocabs)."""
        total = (
            self.theta.nbytes
            + self.theta_weight.nbytes
            + self.beta.nbytes
            + self.counts_indptr.nbytes
            + self.counts_gids.nbytes
            + self.counts.nbytes
        )
        if self.tau is not None:
            total += self.tau.nbytes
        return total


class ArrayProfileStore:
    """Per-user preference scoring over :class:`ProfileArrays`.

    Drop-in compatible with :class:`UserProfileStore` on the serving
    surface (``in`` / ``len`` / ``user_ids`` / ``profile`` / ``score`` /
    ``score_candidates`` / ``rank_candidates``) and **bit-identical** to
    it: scoring replicates the exact floating-point op order of
    :meth:`UPM.preference_score` (scatter the sparse counts dense, add
    ``β``, row-normalize, mix by ``θ_d``, mean over the query's word ids),
    so a pooled worker scoring from shared views produces the same bytes
    as the single-process model-backed path.

    The arrays may be read-only shared-memory views (the zero-copy attach
    path) or plain in-process arrays; user lookup binary-searches the
    sorted user-id list, and per-document topic-word tables are memoized
    LRU exactly like the model's (bounded by the same constant).
    """

    def __init__(self, arrays: ProfileArrays) -> None:
        self._arrays = arrays
        self._users = arrays.users
        self._theta = arrays.theta
        self._theta_weight = arrays.theta_weight
        self._beta = arrays.beta
        self._indptr = arrays.counts_indptr
        self._gids = arrays.counts_gids
        self._counts = arrays.counts
        self._words = arrays.words
        self._tau = arrays.tau
        # Documents arrive in sorted user-id order (build_corpus), but the
        # lookup stays correct for any order: sort once, bisect per query.
        order = sorted(range(len(arrays.users)), key=arrays.users.__getitem__)
        self._sorted_users = [arrays.users[i] for i in order]
        self._sorted_docs = order
        self._word_index = {word: i for i, word in enumerate(arrays.words)}
        self._twd_cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self.attach_metrics(None)

    # -- observability ---------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Mirror lookup traffic into *registry* (``serve.profile.*``).

        ``serve.profile.lookups`` counts scoring calls,
        ``serve.profile.unprofiled_misses`` the calls for users with no
        profile (served unpersonalized), and the ``serve.profile.users``
        gauge holds the store size.  ``None`` detaches (no-op default).
        """
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_lookups = registry.counter("serve.profile.lookups")
        self._m_misses = registry.counter("serve.profile.unprofiled_misses")
        registry.gauge("serve.profile.users").set(len(self._users))

    # -- store surface ---------------------------------------------------------

    @property
    def arrays(self) -> ProfileArrays:
        """The backing arrays (views when attached from shared memory)."""
        return self._arrays

    @property
    def generation(self) -> int:
        """Profile generation ordinal."""
        return self._arrays.generation

    @property
    def words(self) -> tuple[str, ...]:
        """Global word vocabulary in id order."""
        return self._words

    def to_arrays(self) -> ProfileArrays:
        """The packable form (alias of :attr:`arrays`)."""
        return self._arrays

    def __contains__(self, user_id: str) -> bool:
        return self._doc_of(user_id) >= 0

    def __len__(self) -> int:
        return len(self._users)

    @property
    def user_ids(self) -> list[str]:
        """All profiled users, sorted."""
        return list(self._sorted_users)

    def _doc_of(self, user_id: str) -> int:
        """Document index of *user_id* via binary search, -1 if unknown."""
        i = bisect_left(self._sorted_users, user_id)
        if i < len(self._sorted_users) and self._sorted_users[i] == user_id:
            return self._sorted_docs[i]
        return -1

    def profile(self, user_id: str) -> UserProfile:
        """The profile of *user_id*; raises ``KeyError`` if unknown.

        The returned theta is a view over the backing array (zero-copy
        when attached from shared memory).
        """
        d = self._doc_of(user_id)
        if d < 0:
            raise KeyError(f"no profile for user {user_id!r}")
        return UserProfile(user_id=user_id, theta=self._theta[d])

    def user_tau(self, user_id: str) -> np.ndarray:
        """Per-user Beta time parameters ``(K, 2)``.

        Raises ``KeyError`` for unknown users and ``ValueError`` when the
        arrays were packed without the temporal channel.
        """
        d = self._doc_of(user_id)
        if d < 0:
            raise KeyError(f"no profile for user {user_id!r}")
        if self._tau is None:
            raise ValueError("profile arrays were packed without tau")
        return self._tau[d]

    # -- scoring (bit-identical to the UPM path) -------------------------------

    def _topic_word_distribution(self, d: int) -> np.ndarray:
        """(K, W) smoothed per-user topic-word table, LRU-memoized.

        Replicates :meth:`UPM.topic_word_distribution` op for op: dense
        scatter of the document's count block, ``+ β``, in-place row
        normalization — identical inputs, identical op order, identical
        output bits.
        """
        cached = self._twd_cache.get(d)
        if cached is not None:
            self._twd_cache.move_to_end(d)
            return cached
        K, W = self._beta.shape
        counts = np.zeros((K, W))
        lo, hi = int(self._indptr[d]), int(self._indptr[d + 1])
        counts[:, self._gids[lo:hi]] = self._counts[lo:hi].T
        smoothed = counts + self._beta
        smoothed /= smoothed.sum(axis=1, keepdims=True)
        self._twd_cache[d] = smoothed
        if len(self._twd_cache) > _TWD_CACHE_SIZE:
            self._twd_cache.popitem(last=False)
        return smoothed

    def _word_ids(self, query: str) -> list[int]:
        """Query terms mapped to word ids, OOV terms silently dropped."""
        index = self._word_index
        return [index[term] for term in tokenize(query) if term in index]

    def score(self, user_id: str, query: str) -> float:
        """``P(q|d)`` for one candidate (0.0 for unprofiled users)."""
        return self.score_candidates(user_id, [query])[query]

    def score_candidates(
        self, user_id: str, candidates: list[str]
    ) -> dict[str, float]:
        """``P(q|d)`` for every candidate (Eq. 31).

        One lookup, one ``θ_d``-mixed predictive per call; candidate
        tokenization is memoized within the call.
        """
        self._m_lookups.inc()
        d = self._doc_of(user_id)
        if d < 0:
            self._m_misses.inc()
            return {query: 0.0 for query in candidates}
        predictive = self._theta[d] @ self._topic_word_distribution(d)
        scores: dict[str, float] = {}
        memo: dict[str, list[int]] = {}
        for query in candidates:
            word_ids = memo.get(query)
            if word_ids is None:
                word_ids = self._word_ids(query)
                memo[query] = word_ids
            scores[query] = (
                float(np.mean(predictive[word_ids])) if word_ids else 0.0
            )
        return scores

    def rank_candidates(
        self, user_id: str, candidates: list[str]
    ) -> RankedList[str]:
        """Candidates sorted by descending personal preference."""
        return ranks_from_scores(self.score_candidates(user_id, candidates))

    def predictive_word_distribution(self, user_id: str) -> np.ndarray:
        """``p(w | d) = Σ_k θ_dk φ̂_kwd`` — the Eq. 35 predictive."""
        d = self._doc_of(user_id)
        if d < 0:
            raise KeyError(f"no profile for user {user_id!r}")
        return self._theta[d] @ self._topic_word_distribution(d)

    # -- incremental click-feedback fold ---------------------------------------

    def _block_totals(self, d: int) -> np.ndarray:
        """``C_k·d`` — per-topic word-count totals of document *d*."""
        lo, hi = int(self._indptr[d]), int(self._indptr[d + 1])
        return np.asarray(self._counts[lo:hi].sum(axis=0), dtype=float)

    def _count_row(self, d: int, word_id: int) -> np.ndarray | None:
        """``C_·wd`` for one word of document *d* (``None`` if absent)."""
        lo, hi = int(self._indptr[d]), int(self._indptr[d + 1])
        gids = self._gids[lo:hi]
        pos = int(np.searchsorted(gids, word_id))
        if pos < gids.size and int(gids[pos]) == word_id:
            return self._counts[lo + pos]
        return None

    def fold_feedback(self, records, generation: int | None = None):
        """Fold click feedback into a **new** store (copy-on-write).

        Each record is treated as one pseudo-session of its user: the
        query's in-vocabulary words are assigned the MAP topic under the
        user's current state (``argmax_k θ_dk Π_w φ̂_kwd`` — the
        deterministic limit of the Gibbs draw, lowest ``k`` on ties), that
        topic's per-user word counts absorb the words, and the theta row
        is re-normalized with one more unit of concentration
        (``θ ∝ θ·weight + e_k``).  Records of unprofiled users or with no
        in-vocabulary words are skipped.  Later records see earlier
        updates (the fold is sequential and order-deterministic).

        The receiver is untouched — readers keep serving the old
        generation while the publisher swaps in the returned store, whose
        arrays are freshly owned (never views into a shared segment).
        """
        K = self._beta.shape[0]
        D = len(self._users)
        theta = np.array(self._theta, dtype=float)
        weight = np.array(self._theta_weight, dtype=float)
        beta_row_sums = np.asarray(self._beta).sum(axis=1)
        overlays: dict[int, dict[int, np.ndarray]] = {}
        totals: dict[int, np.ndarray] = {}
        for record in records:
            d = self._doc_of(record.user_id)
            if d < 0:
                continue
            word_ids = self._word_ids(record.query)
            if not word_ids:
                continue
            doc_totals = totals.get(d)
            if doc_totals is None:
                doc_totals = self._block_totals(d)
                totals[d] = doc_totals
            overlay = overlays.setdefault(d, {})
            log_posterior = np.log(theta[d])
            log_denominator = np.log(doc_totals + beta_row_sums)
            for word_id in word_ids:
                base = self._count_row(d, word_id)
                count = overlay.get(word_id)
                if base is not None:
                    count = count + base if count is not None else base
                elif count is None:
                    count = 0.0
                log_posterior = (
                    log_posterior
                    + np.log(count + np.asarray(self._beta)[:, word_id])
                    - log_denominator
                )
            k = int(np.argmax(log_posterior))
            for word_id in word_ids:
                vector = overlay.get(word_id)
                if vector is None:
                    vector = np.zeros(K)
                    overlay[word_id] = vector
                vector[k] += 1.0
            doc_totals[k] += float(len(word_ids))
            raw = theta[d] * weight[d]
            raw[k] += 1.0
            weight[d] += 1.0
            theta[d] = raw / raw.sum()
        # Rebuild the CSR blocks, merging overlay words per touched doc.
        gid_blocks: list[np.ndarray] = []
        count_blocks: list[np.ndarray] = []
        indptr = np.zeros(D + 1, dtype=np.int64)
        for d in range(D):
            lo, hi = int(self._indptr[d]), int(self._indptr[d + 1])
            gids = np.array(self._gids[lo:hi])
            block = np.array(self._counts[lo:hi])
            overlay = overlays.get(d)
            if overlay:
                known = set(int(g) for g in gids)
                fresh = sorted(w for w in overlay if w not in known)
                if fresh:
                    gids = np.concatenate(
                        [gids, np.asarray(fresh, dtype=np.int64)]
                    )
                    block = np.concatenate([block, np.zeros((len(fresh), K))])
                    order = np.argsort(gids, kind="stable")
                    gids = gids[order]
                    block = block[order]
                position = {int(g): i for i, g in enumerate(gids)}
                for word_id, vector in overlay.items():
                    block[position[word_id]] += vector
            gid_blocks.append(gids)
            count_blocks.append(block)
            indptr[d + 1] = indptr[d] + gids.size
        arrays = replace(
            self._arrays,
            theta=theta,
            theta_weight=weight,
            beta=np.array(self._beta),
            counts_indptr=indptr,
            counts_gids=(
                np.concatenate(gid_blocks)
                if gid_blocks
                else np.zeros(0, dtype=np.int64)
            ),
            counts=(
                np.concatenate(count_blocks)
                if count_blocks
                else np.zeros((0, K))
            ),
            tau=np.array(self._tau) if self._tau is not None else None,
            generation=(
                generation
                if generation is not None
                else self._arrays.generation + 1
            ),
        )
        return ArrayProfileStore(arrays)


class UserProfileStore:
    """Per-user preference scoring over suggestion candidates."""

    def __init__(self, model: UPM) -> None:
        self._model = model
        self._profiles = {
            doc.user_id: UserProfile(
                user_id=doc.user_id,
                theta=model.theta[i],
            )
            for i, doc in enumerate(model.corpus.documents)
        }
        # user_ids is on the serving path (pool startup packs it, stats
        # report it); sort once instead of per property access.
        self._sorted_ids = sorted(self._profiles)

    @property
    def model(self) -> UPM:
        """The fitted UPM behind the store (e.g. for ``fit_stats``)."""
        return self._model

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    @property
    def user_ids(self) -> list[str]:
        """All profiled users, sorted (cached at construction)."""
        return list(self._sorted_ids)

    def profile(self, user_id: str) -> UserProfile:
        """The profile of *user_id*; raises ``KeyError`` if unknown."""
        try:
            return self._profiles[user_id]
        except KeyError:
            raise KeyError(f"no profile for user {user_id!r}") from None

    def score(self, user_id: str, query: str) -> float:
        """``P(q|d)`` for one candidate (0.0 for unprofiled users)."""
        return self._model.preference_score(user_id, query)

    def score_candidates(
        self, user_id: str, candidates: list[str]
    ) -> dict[str, float]:
        """``P(q|d)`` for every candidate.

        One batched model call: the user's predictive distribution is
        built once and candidate tokenization is memoized within the call
        (bit-identical to scoring each candidate separately).
        """
        return self._model.preference_scores(user_id, candidates)

    def rank_candidates(
        self, user_id: str, candidates: list[str]
    ) -> RankedList[str]:
        """Candidates sorted by descending personal preference."""
        return ranks_from_scores(self.score_candidates(user_id, candidates))

    def to_arrays(
        self, include_tau: bool = True, generation: int = 0
    ) -> ProfileArrays:
        """Extract the packable serving state (see :class:`ProfileArrays`).

        The arrays reproduce the model's scoring bit-for-bit through
        :class:`ArrayProfileStore`; *include_tau* additionally packs the
        per-user Beta time parameters when the model trained the temporal
        channel.
        """
        model = self._model
        corpus = model.corpus
        users = tuple(doc.user_id for doc in corpus.documents)
        D = corpus.n_documents
        K = model.config.n_topics
        alpha_total = float(model.alpha.sum())
        gid_blocks: list[np.ndarray] = []
        count_blocks: list[np.ndarray] = []
        indptr = np.zeros(D + 1, dtype=np.int64)
        for d in range(D):
            gids, counts = model.document_word_counts(d)
            gid_blocks.append(gids)
            count_blocks.append(counts)
            indptr[d + 1] = indptr[d] + gids.size
        tau = None
        if include_tau and model.config.use_time:
            tau = np.stack([model.user_tau(user) for user in users])
        return ProfileArrays(
            users=users,
            theta=model.theta,
            theta_weight=np.asarray(
                [
                    len(corpus.documents[d].sessions) + alpha_total
                    for d in range(D)
                ],
                dtype=np.float64,
            ),
            beta=model.beta,
            counts_indptr=indptr,
            counts_gids=(
                np.concatenate(gid_blocks)
                if gid_blocks
                else np.zeros(0, dtype=np.int64)
            ),
            counts=(
                np.concatenate(count_blocks)
                if count_blocks
                else np.zeros((0, K))
            ),
            words=tuple(corpus.word_of_id),
            tau=tau,
            generation=generation,
        )
