"""Dirichlet-multinomial hyperparameter optimization (paper Eqs. 25-27).

Unlike plain LDA, the UPM *must* learn its hyperparameters: the asymmetric
``β_{·k}`` / ``δ_{·k}`` vectors are where per-topic word and URL preferences
live.  The objective for one parameter vector ``η`` over count matrix
``C`` (rows = documents, columns = items) is the evidence of the
Dirichlet-multinomial::

    LL(η) = Σ_d Σ_w [lnΓ(C_dw + η_w) − lnΓ(η_w)]
          + Σ_d [lnΓ(Σ_w η_w) − lnΓ(Σ_w C_dw + Σ_w η_w)]

The paper maximizes with limited-memory BFGS [30]; we provide exactly that
(:func:`optimize_dirichlet_lbfgs`, scipy's L-BFGS-B with the analytic
digamma gradient) plus Minka's classical fixed-point iteration
(:func:`optimize_dirichlet_fixed_point`) as a cheaper fallback.

**Sparse counts.**  Every function also accepts a ``scipy.sparse`` matrix.
The UPM's per-topic count matrices are per-document local and tiny (each
user only ever emits their own vocabulary), so the dense ``(D, W)`` view is
almost entirely zeros — and a zero cell contributes *exactly* nothing to
the objective and its derivatives:

    lnΓ(0 + η_w) − lnΓ(η_w) = 0        ψ(0 + η_w) − ψ(η_w) = 0

so the zero-cell "correction" is closed-form zero, the per-cell sums run
over the nonzero cells only, and the per-document term needs nothing but
the row sums.  The sparse path therefore costs O(nnz) per iteration
instead of O(D·W).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import minimize
from scipy.special import gammaln, psi

__all__ = [
    "dirichlet_log_likelihood",
    "dirichlet_log_likelihood_gradient",
    "optimize_dirichlet_fixed_point",
    "optimize_dirichlet_lbfgs",
]

_MIN_PARAM = 1e-4

#: Union of accepted count-matrix types (dense array or any scipy.sparse).
CountMatrix = "np.ndarray | sparse.spmatrix"


def _validate(counts, eta: np.ndarray) -> tuple[object, np.ndarray]:
    eta = np.asarray(eta, dtype=float)
    if sparse.issparse(counts):
        counts = counts.tocsr()
        if counts.dtype != np.float64:
            counts = counts.astype(np.float64)
        if (counts.data < 0).any():
            raise ValueError("counts must be non-negative")
    else:
        counts = np.asarray(counts, dtype=float)
        if counts.ndim != 2:
            raise ValueError(
                f"counts must be 2-D (docs x items), got {counts.ndim}-D"
            )
        if (counts < 0).any():
            raise ValueError("counts must be non-negative")
    if eta.shape != (counts.shape[1],):
        raise ValueError(
            f"eta has shape {eta.shape}, expected ({counts.shape[1]},)"
        )
    if (eta <= 0).any():
        raise ValueError("eta entries must be positive")
    return counts, eta


def _row_sums(counts) -> np.ndarray:
    if sparse.issparse(counts):
        return np.asarray(counts.sum(axis=1)).ravel()
    return counts.sum(axis=1)


def dirichlet_log_likelihood(counts, eta: np.ndarray) -> float:
    """The Eqs. 25-27 objective for one hyperparameter vector."""
    counts, eta = _validate(counts, eta)
    eta_sum = eta.sum()
    row_sums = _row_sums(counts)
    if sparse.issparse(counts):
        cols = counts.indices
        per_cell = gammaln(counts.data + eta[cols]) - gammaln(eta)[cols]
    else:
        per_cell = gammaln(counts + eta) - gammaln(eta)
    per_doc = gammaln(eta_sum) - gammaln(row_sums + eta_sum)
    return float(per_cell.sum() + per_doc.sum())


def dirichlet_log_likelihood_gradient(counts, eta: np.ndarray) -> np.ndarray:
    """Analytic gradient of :func:`dirichlet_log_likelihood` w.r.t. ``eta``."""
    counts, eta = _validate(counts, eta)
    eta_sum = eta.sum()
    row_sums = _row_sums(counts)
    if sparse.issparse(counts):
        cols = counts.indices
        per_cell = psi(counts.data + eta[cols]) - psi(eta)[cols]
        grad = np.bincount(cols, weights=per_cell, minlength=eta.size)
    else:
        grad = (psi(counts + eta) - psi(eta)).sum(axis=0)
    grad += (psi(eta_sum) - psi(row_sums + eta_sum)).sum()
    return grad


def optimize_dirichlet_lbfgs(
    counts,
    eta0: np.ndarray,
    max_iterations: int = 50,
) -> np.ndarray:
    """Maximize the evidence with L-BFGS-B (the paper's choice, ref. [30])."""
    counts, eta0 = _validate(counts, eta0)

    def objective(eta: np.ndarray) -> tuple[float, np.ndarray]:
        eta = np.maximum(eta, _MIN_PARAM)
        value = dirichlet_log_likelihood(counts, eta)
        grad = dirichlet_log_likelihood_gradient(counts, eta)
        return -value, -grad

    result = minimize(
        objective,
        eta0,
        jac=True,
        method="L-BFGS-B",
        bounds=[(_MIN_PARAM, None)] * eta0.size,
        options={"maxiter": max_iterations},
    )
    return np.maximum(result.x, _MIN_PARAM)


def optimize_dirichlet_fixed_point(
    counts,
    eta0: np.ndarray,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> np.ndarray:
    """Minka's fixed-point update; monotone and cheap.

    ``η_w ← η_w · Σ_d [ψ(C_dw + η_w) − ψ(η_w)] /
              Σ_d [ψ(C_d· + Ση) − ψ(Ση)]``

    Convergence is declared when every component moves by less than
    ``tolerance`` in the mixed absolute/relative sense
    ``|Δη_w| < tolerance · max(1, |η_w|)`` — for parameters below 1 this is
    the plain absolute criterion, while large components (common when the
    evidence supports a concentrated Dirichlet) converge on relative
    change instead of iterating until the absolute drift of a 100-scale
    value crawls under 1e-6.
    """
    counts, eta = _validate(counts, eta0)
    is_sparse = sparse.issparse(counts)
    row_sums = _row_sums(counts)
    if is_sparse:
        cols = counts.indices
        data = counts.data
    for _ in range(max_iterations):
        eta_sum = eta.sum()
        if is_sparse:
            per_cell = psi(data + eta[cols]) - psi(eta)[cols]
            numerator = np.bincount(cols, weights=per_cell, minlength=eta.size)
        else:
            numerator = (psi(counts + eta) - psi(eta)).sum(axis=0)
        denominator = (psi(row_sums + eta_sum) - psi(eta_sum)).sum()
        if denominator <= 0:
            break
        updated = np.maximum(eta * numerator / denominator, _MIN_PARAM)
        change = np.abs(updated - eta)
        eta = updated
        if (change < tolerance * np.maximum(1.0, np.abs(eta))).all():
            break
    return eta
