"""Dirichlet-multinomial hyperparameter optimization (paper Eqs. 25-27).

Unlike plain LDA, the UPM *must* learn its hyperparameters: the asymmetric
``β_{·k}`` / ``δ_{·k}`` vectors are where per-topic word and URL preferences
live.  The objective for one parameter vector ``η`` over count matrix
``C`` (rows = documents, columns = items) is the evidence of the
Dirichlet-multinomial::

    LL(η) = Σ_d Σ_w [lnΓ(C_dw + η_w) − lnΓ(η_w)]
          + Σ_d [lnΓ(Σ_w η_w) − lnΓ(Σ_w C_dw + Σ_w η_w)]

The paper maximizes with limited-memory BFGS [30]; we provide exactly that
(:func:`optimize_dirichlet_lbfgs`, scipy's L-BFGS-B with the analytic
digamma gradient) plus Minka's classical fixed-point iteration
(:func:`optimize_dirichlet_fixed_point`) as a cheaper fallback.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize
from scipy.special import gammaln, psi

__all__ = [
    "dirichlet_log_likelihood",
    "dirichlet_log_likelihood_gradient",
    "optimize_dirichlet_fixed_point",
    "optimize_dirichlet_lbfgs",
]

_MIN_PARAM = 1e-4


def _validate(counts: np.ndarray, eta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    counts = np.asarray(counts, dtype=float)
    eta = np.asarray(eta, dtype=float)
    if counts.ndim != 2:
        raise ValueError(f"counts must be 2-D (docs x items), got {counts.ndim}-D")
    if eta.shape != (counts.shape[1],):
        raise ValueError(
            f"eta has shape {eta.shape}, expected ({counts.shape[1]},)"
        )
    if (eta <= 0).any():
        raise ValueError("eta entries must be positive")
    if (counts < 0).any():
        raise ValueError("counts must be non-negative")
    return counts, eta


def dirichlet_log_likelihood(counts: np.ndarray, eta: np.ndarray) -> float:
    """The Eqs. 25-27 objective for one hyperparameter vector."""
    counts, eta = _validate(counts, eta)
    eta_sum = eta.sum()
    row_sums = counts.sum(axis=1)
    per_cell = gammaln(counts + eta) - gammaln(eta)
    per_doc = gammaln(eta_sum) - gammaln(row_sums + eta_sum)
    return float(per_cell.sum() + per_doc.sum())


def dirichlet_log_likelihood_gradient(
    counts: np.ndarray, eta: np.ndarray
) -> np.ndarray:
    """Analytic gradient of :func:`dirichlet_log_likelihood` w.r.t. ``eta``."""
    counts, eta = _validate(counts, eta)
    eta_sum = eta.sum()
    row_sums = counts.sum(axis=1)
    grad = (psi(counts + eta) - psi(eta)).sum(axis=0)
    grad += (psi(eta_sum) - psi(row_sums + eta_sum)).sum()
    return grad


def optimize_dirichlet_lbfgs(
    counts: np.ndarray,
    eta0: np.ndarray,
    max_iterations: int = 50,
) -> np.ndarray:
    """Maximize the evidence with L-BFGS-B (the paper's choice, ref. [30])."""
    counts, eta0 = _validate(counts, eta0)

    def objective(eta: np.ndarray) -> tuple[float, np.ndarray]:
        eta = np.maximum(eta, _MIN_PARAM)
        value = dirichlet_log_likelihood(counts, eta)
        grad = dirichlet_log_likelihood_gradient(counts, eta)
        return -value, -grad

    result = minimize(
        objective,
        eta0,
        jac=True,
        method="L-BFGS-B",
        bounds=[(_MIN_PARAM, None)] * eta0.size,
        options={"maxiter": max_iterations},
    )
    return np.maximum(result.x, _MIN_PARAM)


def optimize_dirichlet_fixed_point(
    counts: np.ndarray,
    eta0: np.ndarray,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> np.ndarray:
    """Minka's fixed-point update; monotone and cheap.

    ``η_w ← η_w · Σ_d [ψ(C_dw + η_w) − ψ(η_w)] /
              Σ_d [ψ(C_d· + Ση) − ψ(Ση)]``
    """
    counts, eta = _validate(counts, eta0)
    row_sums = counts.sum(axis=1)
    for _ in range(max_iterations):
        eta_sum = eta.sum()
        numerator = (psi(counts + eta) - psi(eta)).sum(axis=0)
        denominator = (psi(row_sums + eta_sum) - psi(eta_sum)).sum()
        if denominator <= 0:
            break
        updated = np.maximum(eta * numerator / denominator, _MIN_PARAM)
        if np.abs(updated - eta).max() < tolerance:
            eta = updated
            break
        eta = updated
    return eta
