"""Rank aggregation of the diversification and personalization rankings.

The paper (Sec. V-B) ranks candidates by personalized preference score, then
"aggregate[s] this ranking list with the ranking list from the
diversification component via Borda's method" — the final suggestion list
blends query-affinity relevance with per-user preference.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.utils.ranking import RankedList, borda_aggregate, ranks_from_scores

__all__ = ["personalize_ranking"]


def personalize_ranking(
    diversified: Sequence[str],
    preference_scores: Mapping[str, float],
    personalization_weight: float = 1.0,
) -> RankedList[str]:
    """Fuse the diversified ranking with per-user preference via Borda.

    Args:
        diversified: Candidates in the diversification component's order.
        preference_scores: ``P(q|d)`` per candidate (missing candidates are
            treated as score 0 — they still keep their diversification
            points).
        personalization_weight: Relative Borda weight of the preference
            ranking (1.0 = the paper's plain Borda; 0.0 reduces to the
            diversification order — the ablation knob).

    Returns:
        The final personalized suggestion list over the same candidates.
    """
    if personalization_weight < 0:
        raise ValueError(
            f"personalization_weight must be >= 0, got {personalization_weight}"
        )
    candidates = list(diversified)
    if not candidates:
        return RankedList([])
    scores = {query: preference_scores.get(query, 0.0) for query in candidates}
    personal = ranks_from_scores(scores)
    return borda_aggregate(
        [candidates, list(personal)],
        weights=[1.0, personalization_weight],
    )
