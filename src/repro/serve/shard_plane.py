"""Per-shard shared-memory segments of the sharded graph plane.

The sharded counterpart of :mod:`repro.serve.shm`: instead of one segment
holding the whole plane, each :class:`~repro.graphs.shard.ShardSlice`
packs into its **own** named segment (:class:`SharedShardStore`), so a
per-shard epoch publish creates, swaps and unlinks exactly one shard's
bytes — the other shards' segments, the hot tier and the profile plane
are untouched.

A worker attaches only the shards it serves
(:class:`AttachedShardedPlane` eagerly maps the home shards and lazily
maps foreign ones the first time a walk spills or a term backoff needs
them) and rebuilds a :class:`~repro.graphs.shard.ShardedExpander` whose
``expand``/``walk_mass`` are bit-identical to the unsharded plane.  The
facades a worker's :class:`~repro.core.suggester.PQSDA` serves against:

* :class:`ShardedRepresentation` — membership tests route through the
  shard plan (attaching the owning shard on demand) and the ``"T"``
  bipartite merges the per-shard query-term adjacencies;
* :class:`ShardedTermBipartite` — ``queries_of`` is the union of every
  shard's home rows for that term (shards partition the query side, so
  the merged dict equals the global one key-for-key and bit-for-bit) and
  ``facet_set`` answers from the query's home shard, whose restricted
  bipartite keeps every term of a home query.

Lifecycle mirrors the full-plane store: the publisher owns
:meth:`~SharedShardStore.unlink`; attachers only
:meth:`~AttachedShard.close` their mapping, and both are idempotent.
"""

from __future__ import annotations

import gc
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np
from scipy import sparse

from repro.graphs.matrices import csr_from_parts
from repro.graphs.multibipartite import BIPARTITE_KINDS
from repro.graphs.shard import ShardPlan, ShardSlice, ShardedExpander
from repro.serve.shm import (
    SharedHotTable,
    SharedTermBipartite,
    _ArraySpec,
    _decode_vocab,
    _encode_vocab,
    _hot_table_arrays,
    _pack_segment,
    _term_adjacency,
    _unregister_from_tracker,
)

__all__ = [
    "AttachedShard",
    "AttachedShardedPlane",
    "ShardSegmentMeta",
    "SharedShardStore",
    "ShardedRepresentation",
    "ShardedTermBipartite",
]


@dataclass(frozen=True)
class ShardSegmentMeta:
    """Picklable manifest of one shard's published segment.

    The per-shard analogue of
    :class:`~repro.serve.shm.SharedPlaneMeta`: everything a worker needs
    to rebuild the shard's :class:`~repro.graphs.shard.ShardSlice` as
    read-only views — CSR manifests for the local incidence, walk stacks
    and (closed shards) gram, the home-query and per-kind facet-name
    vocabularies, and the global row ordinals.
    """

    segment: str
    arrays: dict[str, _ArraySpec]
    csr_shapes: dict[str, tuple[int, int]]
    csr_sorted: dict[str, bool]
    shard_id: int
    n_queries: int
    n_queries_global: int
    closed: bool
    has_gram: bool
    n_terms: int
    epoch_id: int
    total_bytes: int

    @property
    def has_term_index(self) -> bool:
        """Whether the shard's query-term adjacency was published."""
        return "terms.blob" in self.arrays

    @property
    def has_hot_table(self) -> bool:
        """Whether the shard's hot-query partition was published."""
        return "hot.hashes" in self.arrays


class SharedShardStore:
    """Publisher-side owner of one shard's shared segment.

    Same ownership contract as the full-plane store: hand :attr:`meta`
    to workers, :meth:`unlink` exactly once after every attacher acked
    moving off this shard generation, then :meth:`close`.
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, meta: ShardSegmentMeta
    ) -> None:
        self._segment = segment
        self._meta = meta
        self._unlinked = False
        self._closed = False

    @classmethod
    def publish(
        cls,
        piece: ShardSlice,
        epoch_id: int = 0,
        prefix: str = "pqsda-shard",
        term_bipartite=None,
        hot_table: Mapping[str, Sequence[str]] | None = None,
    ) -> "SharedShardStore":
        """Copy one shard slice into a fresh named segment.

        *term_bipartite* is the **global** query-term
        :class:`~repro.graphs.bipartite.Bipartite`; it is restricted to
        the shard's home queries before packing, so the published
        adjacency carries exactly the home rows of the global index (the
        cross-shard merge in :class:`ShardedTermBipartite` reassembles
        the global dicts verbatim).  *hot_table* is this shard's
        partition of the precomputed hot rankings — it rides the shard's
        segment, so a per-shard swap refreshes exactly its own hot
        entries.
        """
        plan: list[tuple[str, np.ndarray]] = []
        csr_shapes: dict[str, tuple[int, int]] = {}
        csr_sorted: dict[str, bool] = {}

        def add_csr(name: str, matrix: sparse.csr_matrix) -> None:
            csr_shapes[name] = (int(matrix.shape[0]), int(matrix.shape[1]))
            csr_sorted[name] = bool(matrix.has_sorted_indices)
            plan.append((f"{name}.indptr", np.ascontiguousarray(matrix.indptr)))
            plan.append(
                (f"{name}.indices", np.ascontiguousarray(matrix.indices))
            )
            plan.append((f"{name}.data", np.ascontiguousarray(matrix.data)))

        for kind in BIPARTITE_KINDS:
            add_csr(f"incidence.{kind}", piece.incidence[kind])
            if piece.gram is not None:
                add_csr(f"gram.{kind}", piece.gram[kind])
        add_csr("stack.forward", piece.forward_stack.tocsr())
        add_csr("stack.backward", piece.backward_stack.tocsr())

        plan.append(("rows", np.ascontiguousarray(piece.rows, dtype=np.int64)))
        blob, offsets = _encode_vocab(list(piece.queries))
        plan.append(("vocab.queries.blob", blob))
        plan.append(("vocab.queries.offsets", offsets))
        for kind in BIPARTITE_KINDS:
            facet_blob, facet_offsets = _encode_vocab(
                list(piece.facet_names[kind])
            )
            plan.append((f"facets.{kind}.blob", facet_blob))
            plan.append((f"facets.{kind}.offsets", facet_offsets))

        n_terms = 0
        if term_bipartite is not None:
            home = term_bipartite.restrict_queries(piece.queries)
            terms, term_arrays, (_, n_terms) = _term_adjacency(
                home, list(piece.queries), piece.query_index
            )
            term_blob, term_offsets = _encode_vocab(terms)
            plan.append(("terms.blob", term_blob))
            plan.append(("terms.offsets", term_offsets))
            plan.extend(term_arrays.items())

        if hot_table:
            plan.extend(_hot_table_arrays(hot_table).items())

        segment, specs, total = _pack_segment(
            plan, f"{prefix}{piece.shard_id}", epoch_id
        )
        meta = ShardSegmentMeta(
            segment=segment.name,
            arrays=specs,
            csr_shapes=csr_shapes,
            csr_sorted=csr_sorted,
            shard_id=piece.shard_id,
            n_queries=piece.n_queries,
            n_queries_global=piece.n_queries_global,
            closed=piece.closed,
            has_gram=piece.gram is not None,
            n_terms=n_terms,
            epoch_id=epoch_id,
            total_bytes=total,
        )
        return cls(segment, meta)

    @property
    def meta(self) -> ShardSegmentMeta:
        """The picklable manifest workers attach from."""
        return self._meta

    @property
    def shard_id(self) -> int:
        """The shard this store publishes."""
        return self._meta.shard_id

    @property
    def segment_name(self) -> str:
        """The shared-memory segment name."""
        return self._meta.segment

    @property
    def total_bytes(self) -> int:
        """Bytes held by this shard's segment."""
        return self._meta.total_bytes

    def hot_table(self) -> SharedHotTable | None:
        """This shard's packed hot partition (snapshot arrays, not views)."""
        if not self._meta.has_hot_table:
            return None
        meta = self._meta
        segment = self._segment

        def snapshot(name: str) -> np.ndarray:
            spec = meta.arrays[name]
            return np.array(
                np.ndarray(
                    spec.shape,
                    dtype=spec.dtype,
                    buffer=segment.buf,
                    offset=spec.offset,
                )
            )

        return SharedHotTable._from_views(snapshot)

    def unlink(self) -> None:
        """Remove the segment from the system (idempotent)."""
        if not self._unlinked:
            self._unlinked = True
            self._segment.unlink()

    def close(self) -> None:
        """Drop this process's mapping (idempotent; unlink is separate)."""
        if not self._closed:
            self._closed = True
            self._segment.close()


class AttachedShard:
    """Read-only mapping of one published shard segment.

    Rebuilds the shard's :class:`~repro.graphs.shard.ShardSlice` over
    zero-copy views (CSR parts, walk stacks, row ordinals) plus the
    shard's :class:`~repro.serve.shm.SharedTermBipartite` when the term
    adjacency was published.
    """

    def __init__(self, meta: ShardSegmentMeta, untrack: bool = False) -> None:
        self._meta = meta
        self._segment = shared_memory.SharedMemory(name=meta.segment)
        if untrack:
            _unregister_from_tracker(self._segment)
        self._closed = False

        def view(name: str) -> np.ndarray:
            spec = meta.arrays[name]
            array = np.ndarray(
                spec.shape,
                dtype=spec.dtype,
                buffer=self._segment.buf,
                offset=spec.offset,
            )
            array.flags.writeable = False
            return array

        def csr(name: str) -> sparse.csr_matrix:
            return csr_from_parts(
                view(f"{name}.data"),
                view(f"{name}.indices"),
                view(f"{name}.indptr"),
                meta.csr_shapes[name],
                sorted_indices=meta.csr_sorted[name],
            )

        queries = _decode_vocab(
            view("vocab.queries.blob"), view("vocab.queries.offsets")
        )
        incidence = {kind: csr(f"incidence.{kind}") for kind in BIPARTITE_KINDS}
        gram = (
            {kind: csr(f"gram.{kind}") for kind in BIPARTITE_KINDS}
            if meta.has_gram
            else None
        )
        facet_names = {
            kind: tuple(
                _decode_vocab(
                    view(f"facets.{kind}.blob"), view(f"facets.{kind}.offsets")
                )
            )
            for kind in BIPARTITE_KINDS
        }
        self.slice = ShardSlice(
            shard_id=meta.shard_id,
            queries=tuple(queries),
            rows=view("rows"),
            n_queries_global=meta.n_queries_global,
            closed=meta.closed,
            incidence=incidence,
            facet_names=facet_names,
            gram=gram,
            stacks=(csr("stack.forward"), csr("stack.backward")),
        )
        self.term_bipartite = None
        if meta.has_term_index:
            self.term_bipartite = SharedTermBipartite(
                _decode_vocab(view("terms.blob"), view("terms.offsets")),
                queries,
                (
                    view("termidx.qt.indptr"),
                    view("termidx.qt.indices"),
                    view("termidx.qt.data"),
                ),
                (
                    view("termidx.tq.indptr"),
                    view("termidx.tq.indices"),
                    view("termidx.tq.data"),
                ),
            )
        self.hot_table = (
            SharedHotTable._from_views(view) if meta.has_hot_table else None
        )

    @property
    def meta(self) -> ShardSegmentMeta:
        """The manifest this shard attached from."""
        return self._meta

    @property
    def epoch_id(self) -> int:
        """The shard generation's epoch ordinal."""
        return self._meta.epoch_id

    def shares_memory(self) -> bool:
        """True when every matrix payload is a view into the segment."""
        base = np.ndarray(
            (self._meta.total_bytes,),
            dtype=np.uint8,
            buffer=self._segment.buf,
        )
        payloads = [
            self.slice.incidence[kind].data for kind in BIPARTITE_KINDS
        ] + [self.slice.forward_stack.data, self.slice.backward_stack.data]
        if self.slice.gram is not None:
            payloads += [
                self.slice.gram[kind].data for kind in BIPARTITE_KINDS
            ]
        return all(np.shares_memory(base, payload) for payload in payloads)

    def close(self) -> None:
        """Release the mapping (idempotent; views must be unreachable)."""
        if self._closed:
            return
        self._closed = True
        self.slice = None
        self.term_bipartite = None
        self.hot_table = None
        gc.collect()
        try:
            self._segment.close()
        except BufferError:  # views still referenced elsewhere
            pass


class ShardedTermBipartite:
    """Cross-shard facade over the per-shard query-term adjacencies.

    Shards partition the query side, so ``queries_of`` is an exact
    reassembly: each shard contributes its home rows of the global
    term -> query dict (disjoint keys, original weights), and the
    downstream jaccard scoring sorts by ``(-score, query)`` — merge
    order cannot change the result.  ``facet_set`` answers from the
    query's home shard, whose restricted bipartite keeps every term of a
    home query.
    """

    def __init__(self, plane: "AttachedShardedPlane") -> None:
        self._plane = plane

    @property
    def facets(self) -> list[str]:
        """Sorted union of every shard's term vocabulary."""
        merged: set[str] = set()
        for shard_id in range(self._plane.plan.n_shards):
            adapter = self._plane.term_adapter(shard_id)
            if adapter is not None:
                merged.update(adapter.facets)
        return sorted(merged)

    def queries_of(self, facet: str) -> dict[str, float]:
        """Query -> weight for one term, merged across every shard."""
        merged: dict[str, float] = {}
        for shard_id in range(self._plane.plan.n_shards):
            adapter = self._plane.term_adapter(shard_id)
            if adapter is not None:
                merged.update(adapter.queries_of(facet))
        return merged

    def facet_set(self, query: str) -> frozenset[str]:
        """The terms of *query*, answered by its home shard."""
        shard_id = self._plane.plan.shard_of(query)
        adapter = self._plane.term_adapter(shard_id)
        return adapter.facet_set(query) if adapter is not None else frozenset()


class ShardedRepresentation:
    """The representation handle a sharded worker's ``PQSDA`` serves against.

    Mirrors :class:`~repro.serve.shm.SharedRepresentation` over a lazily
    attached shard set: membership routes through the plan (attaching
    the owning shard on demand) and ``bipartite("T")`` yields the
    cross-shard term facade.
    """

    def __init__(self, plane: "AttachedShardedPlane") -> None:
        self._plane = plane
        self._term = ShardedTermBipartite(plane)

    @property
    def n_queries(self) -> int:
        """Global query-node count."""
        return self._plane.expander.n_queries_global

    def __contains__(self, query: str) -> bool:
        return query in self._plane.expander.matrices.query_index

    def bipartite(self, kind: str):
        """The cross-shard query-term facade (only ``"T"`` is served)."""
        if kind != "T":
            raise KeyError(
                f"sharded representations expose only the 'T' bipartite, "
                f"got {kind!r}"
            )
        if not self._plane.has_term_index:
            raise KeyError(
                "term index was not published (publish with multibipartite "
                "to enable the unseen-query backoff)"
            )
        return self._term


class AttachedShardedPlane:
    """Worker-side view of a sharded generation: home eager, foreign lazy.

    Args:
        metas: Shard id -> :class:`ShardSegmentMeta` for every shard.
        plan: The shard plan (routing + membership).
        home_shards: The shards this worker serves; they are attached
            eagerly, everything else the first time a spill or a term
            backoff reaches for it.
        untrack: Passed through to each attach (see
            :func:`repro.serve.shm._unregister_from_tracker`).

    Attributes:
        expander: :class:`~repro.graphs.shard.ShardedExpander` over the
            attached slices; bit-identical to the unsharded expander.
        representation: The :class:`ShardedRepresentation` facade.
    """

    def __init__(
        self,
        metas: Mapping[int, ShardSegmentMeta],
        plan: ShardPlan,
        home_shards: Sequence[int],
        untrack: bool = False,
    ) -> None:
        self._metas = dict(metas)
        self._plan = plan
        self._untrack = untrack
        self._attached: dict[int, AttachedShard] = {}
        self._home = sorted(int(s) for s in home_shards)
        slices = {
            shard_id: self._attach(shard_id).slice for shard_id in self._home
        }
        any_meta = next(iter(self._metas.values()))
        self.expander = ShardedExpander(
            plan,
            slices=slices,
            loader=self._load_slice,
            home_shards=self._home,
            n_queries_global=any_meta.n_queries_global,
        )
        self.representation = ShardedRepresentation(self)

    @property
    def plan(self) -> ShardPlan:
        """The shard plan."""
        return self._plan

    @property
    def home_shards(self) -> list[int]:
        """The shards this worker attaches eagerly."""
        return list(self._home)

    @property
    def has_term_index(self) -> bool:
        """Whether the generation was published with term adjacencies."""
        return any(meta.has_term_index for meta in self._metas.values())

    @property
    def epoch_ids(self) -> dict[int, int]:
        """Shard id -> epoch ordinal of the current manifests."""
        return {
            shard_id: meta.epoch_id
            for shard_id, meta in sorted(self._metas.items())
        }

    @property
    def epoch_id(self) -> int:
        """The newest shard epoch (what the worker reports upstream)."""
        return max(meta.epoch_id for meta in self._metas.values())

    @property
    def attached_shards(self) -> frozenset[int]:
        """Shards currently mapped in this process."""
        return frozenset(self._attached)

    def _attach(self, shard_id: int) -> AttachedShard:
        attached = self._attached.get(shard_id)
        if attached is None:
            attached = AttachedShard(
                self._metas[shard_id], untrack=self._untrack
            )
            self._attached[shard_id] = attached
        return attached

    def _load_slice(self, shard_id: int) -> ShardSlice:
        return self._attach(shard_id).slice

    def term_adapter(self, shard_id: int):
        """The shard's term adjacency adapter (attaching on demand)."""
        return self._attach(shard_id).term_bipartite

    def update_shard(self, meta: ShardSegmentMeta) -> None:
        """Swap one shard onto *meta* (the worker half of an ``sswap``).

        Only the touched shard's mapping moves: if the shard is attached
        the new segment is mapped, the expander's slice is replaced in
        place (same query set — per-shard publishes never renumber), and
        the superseded mapping is released; an unattached shard just
        records the new manifest for its eventual lazy attach.
        """
        shard_id = meta.shard_id
        self._metas[shard_id] = meta
        old = self._attached.pop(shard_id, None)
        if old is not None:
            fresh = self._attach(shard_id)
            self.expander.update_slice(fresh.slice)
            old.close()

    def shares_memory(self) -> bool:
        """True when every attached shard's payloads are segment views."""
        return all(
            attached.shares_memory() for attached in self._attached.values()
        )

    def close(self) -> None:
        """Release every mapping (idempotent)."""
        self.expander = None
        self.representation = None
        attached, self._attached = self._attached, {}
        for shard in attached.values():
            shard.close()
