"""Async HTTP front-end: micro-batching, deadlines, tiered load shedding.

The socket layer of the serving stack (ROADMAP item 1): an
``asyncio``-streams HTTP/1.1 server — hand-rolled on the stdlib, no new
dependency — over a :class:`~repro.serve.pool.SuggestWorkerPool`.  The
pool is process-parallel but synchronous; this module turns it into an
online service that answers real sockets under real overload:

Micro-batching
    Requests land in an asyncio queue; a batcher task accumulates them
    for a configurable window (``batch_window_ms``, or until
    ``max_batch``) and dispatches each accumulated batch to
    :meth:`~repro.serve.pool.SuggestWorkerPool.suggest_many` on an
    executor thread **without awaiting it**, so consecutive batches
    overlap — the pool's reply dispatcher correlates them by batch id.
    One pool call per window amortizes the per-request IPC tax exactly
    like ``suggest_many`` amortizes the per-request queue hop.

Admission control and shed tiers
    Every request is admitted at a *shed tier* chosen from the live
    per-worker queue depth (the number behind the ``serve.pool.queue_depth``
    gauge, plus the front-end's own not-yet-dispatched queue):

    ========  =========================  ===============================
    tier      entered when depth/worker  degradation
    ========  =========================  ===============================
    0         < ``shed_rerank_depth``    full pipeline
    1         ≥ ``shed_rerank_depth``    skip hitting-time rerank
    2         ≥ ``shed_personalize_depth``  + skip personalization
    3         ≥ ``reject_depth``         reject with 503, never enqueued
    ========  =========================  ===============================

    Tiers 1 and 2 ride into the workers as ``SuggestRequest.shed`` (see
    :class:`~repro.core.serving.ShedOptions`); tier 3 is answered here.
    Each tier entry is counted in ``serve.http.shed.{rerank,personalize,
    reject}``.  Hot-table hits are unaffected — they are O(1) whatever
    the tier.

Deadlines
    Each request carries a deadline (``deadline_ms`` query parameter,
    default ``default_deadline_ms``).  A request that cannot be answered
    in time — still queued or still being served — returns 504 and is
    counted in ``serve.http.deadline_expired``; a request already
    expired when its batch dispatches is skipped, never burning worker
    time on an answer nobody is waiting for.

Failure isolation
    The pool is called with ``return_errors=True``: a request whose
    worker-side ``suggest`` raised maps to *its own* 500 (traceback in
    the JSON body) while every sibling in the batch is answered
    normally.

Endpoints
    * ``GET /suggest?q=Q[&k=K][&user=U][&timestamp=T][&deadline_ms=D]``
    * ``POST /suggest`` — JSON ``{"q": ...}`` or ``{"requests": [...]}``
    * ``GET /healthz`` — liveness (never shed, never batched)
    * ``GET /metrics`` — Prometheus text of the attached registry
    * ``GET /metrics.json`` — the same snapshot as JSON

Run it inline with :meth:`SuggestFrontend.start` on a running loop,
blocking with :func:`serve_until_interrupt` (the ``repro serve --listen``
path; SIGINT/SIGTERM-clean), or on a dedicated loop thread with
:func:`run_in_thread` (tests and benchmarks).
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

from repro.baselines.base import SuggestRequest
from repro.obs.export import to_json, to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.serve.pool import SuggestError, SuggestWorkerPool

__all__ = [
    "FrontendConfig",
    "FrontendHandle",
    "SuggestFrontend",
    "run_in_thread",
    "serve_until_interrupt",
    "tier_for_depth",
]

#: Batch-size histogram bounds (requests per dispatched micro-batch).
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Hard cap on an HTTP request body (bytes) — requests are tiny JSON.
_MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass(frozen=True, slots=True)
class FrontendConfig:
    """Tuning of the HTTP front-end.

    Attributes:
        batch_window_ms: Micro-batch accumulation window.  ``0`` disables
            waiting — each batch takes whatever is already queued.
        max_batch: Dispatch a batch early once it holds this many
            requests.
        default_deadline_ms: Per-request deadline when the request does
            not carry ``deadline_ms`` itself.
        shed_rerank_depth: Per-worker queue depth at which tier 1 starts
            (skip the hitting-time rerank).
        shed_personalize_depth: Per-worker depth at which tier 2 starts
            (additionally skip personalization).
        reject_depth: Per-worker depth at which tier 3 starts (reject
            with 503 before enqueueing).
        max_dispatchers: Executor threads calling into the pool — the
            bound on concurrently in-flight pool batches.
    """

    batch_window_ms: float = 2.0
    max_batch: int = 64
    default_deadline_ms: float = 1000.0
    shed_rerank_depth: float = 4.0
    shed_personalize_depth: float = 8.0
    reject_depth: float = 16.0
    max_dispatchers: int = 4

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ValueError("batch_window_ms must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.default_deadline_ms <= 0:
            raise ValueError("default_deadline_ms must be positive")
        if not 0 < self.shed_rerank_depth <= self.shed_personalize_depth <= self.reject_depth:
            raise ValueError(
                "shed depths must satisfy 0 < rerank <= personalize <= "
                f"reject, got {self.shed_rerank_depth}/"
                f"{self.shed_personalize_depth}/{self.reject_depth}"
            )
        if self.max_dispatchers < 1:
            raise ValueError("max_dispatchers must be >= 1")


def tier_for_depth(depth_per_worker: float, config: FrontendConfig) -> int:
    """The shed tier a request arriving at *depth_per_worker* enters.

    Monotone in depth by construction (the config validates the
    threshold ordering), so the server degrades in documented tier order
    as load rises: 0 → 1 → 2 → 3.
    """
    if depth_per_worker >= config.reject_depth:
        return 3
    if depth_per_worker >= config.shed_personalize_depth:
        return 2
    if depth_per_worker >= config.shed_rerank_depth:
        return 1
    return 0


@dataclass(slots=True)
class _HttpRequest:
    """One parsed HTTP/1.1 request."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes
    keep_alive: bool


@dataclass(slots=True)
class _Ticket:
    """One admitted suggest request waiting for its batch's answer."""

    request: SuggestRequest
    deadline: float  # loop-time deadline
    future: asyncio.Future = field(init=False)


async def _read_request(reader: asyncio.StreamReader) -> _HttpRequest | None:
    """Parse one HTTP/1.1 request off *reader* (``None`` on clean EOF)."""
    try:
        line = await reader.readline()
    except (ValueError, ConnectionError):
        return None
    if not line or line in (b"\r\n", b"\n"):
        return None
    try:
        method, target, version = line.decode("latin-1").strip().split(" ", 2)
    except ValueError:
        raise _BadRequest("malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if not raw:
            return None
        if raw in (b"\r\n", b"\n"):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY_BYTES:
        raise _BadRequest("request body too large", status=413)
    body = await reader.readexactly(length) if length else b""
    parts = urlsplit(target)
    keep_alive = headers.get("connection", "").lower() != "close" and (
        version.upper() != "HTTP/1.0"
        or headers.get("connection", "").lower() == "keep-alive"
    )
    return _HttpRequest(
        method=method.upper(),
        path=unquote(parts.path),
        query=parse_qs(parts.query),
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


class _BadRequest(Exception):
    """A request the parser or router rejects with a 4xx."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def _render(status: int, payload: bytes, content_type: str,
            keep_alive: bool) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    connection = "keep-alive" if keep_alive else "close"
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {connection}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + payload


class SuggestFrontend:
    """Asyncio HTTP/1.1 front-end over a :class:`SuggestWorkerPool`.

    Args:
        pool: The worker pool (its :attr:`~SuggestWorkerPool.queue_depth`
            drives admission control; ``suggest_many(..., return_errors=
            True)`` is the dispatch path).  Anything pool-shaped with
            those three members works — tests inject fakes.
        config: Batching/deadline/shed thresholds.
        registry: Metrics registry for the ``serve.http.*`` instruments
            (and ``/metrics``).  Pass the pool's registry to export both
            planes from one endpoint; ``None`` creates a private one.
    """

    def __init__(
        self,
        pool: SuggestWorkerPool,
        config: FrontendConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._pool = pool
        self._config = config if config is not None else FrontendConfig()
        self._registry = registry if registry is not None else MetricsRegistry()
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue[_Ticket] | None = None
        self._batcher: asyncio.Task | None = None
        self._dispatches: set[asyncio.Task] = set()
        self._executor = None  # created on start, torn down on stop
        self._closed = False

        registry = self._registry
        self._m_requests = registry.counter("serve.http.requests")
        self._m_batches = registry.counter("serve.http.batches")
        self._m_batch_size = registry.histogram(
            "serve.http.batch_size", buckets=_BATCH_SIZE_BUCKETS
        )
        self._m_latency = registry.histogram("serve.http.latency_seconds")
        self._m_inflight = registry.gauge("serve.http.inflight")
        self._m_deadline = registry.counter("serve.http.deadline_expired")
        self._m_shed = {
            1: registry.counter("serve.http.shed.rerank"),
            2: registry.counter("serve.http.shed.personalize"),
            3: registry.counter("serve.http.shed.reject"),
        }
        self._m_responses: dict[int, object] = {}

    # -- lifecycle ---------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving on the running loop (port 0 = ephemeral)."""
        if self._server is not None:
            raise RuntimeError("frontend already started")
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._executor = ThreadPoolExecutor(
            max_workers=self._config.max_dispatchers,
            thread_name_prefix="http-dispatch",
        )
        self._batcher = self._loop.create_task(self._batch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (resolves an ephemeral port)."""
        if self._server is None:
            raise RuntimeError("frontend not started")
        return self._server.sockets[0].getsockname()[:2]

    async def stop(self) -> None:
        """Stop accepting, fail queued work, and release the executor."""
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
        # Nothing new can arrive; fail whatever never got dispatched.
        if self._queue is not None:
            while not self._queue.empty():
                ticket = self._queue.get_nowait()
                if not ticket.future.done():
                    ticket.future.set_exception(
                        ConnectionError("frontend shutting down")
                    )
        if self._dispatches:
            await asyncio.gather(*self._dispatches, return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as exc:
                    writer.write(self._json_response(
                        exc.status, {"error": str(exc)}, keep_alive=False
                    ))
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                started = self._loop.time()
                status, payload, content_type = await self._route(request)
                self._m_latency.observe(self._loop.time() - started)
                self._count_response(status)
                writer.write(_render(
                    status, payload, content_type, request.keep_alive
                ))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _count_response(self, status: int) -> None:
        counter = self._m_responses.get(status)
        if counter is None:
            counter = self._registry.counter(
                "serve.http.responses", labels={"code": str(status)}
            )
            self._m_responses[status] = counter
        counter.inc()

    def _json_response(
        self, status: int, body: dict, keep_alive: bool
    ) -> bytes:
        self._count_response(status)
        return _render(
            status,
            json.dumps(body).encode("utf-8"),
            "application/json",
            keep_alive,
        )

    # -- routing -----------------------------------------------------------------

    async def _route(
        self, request: _HttpRequest
    ) -> tuple[int, bytes, str]:
        path = request.path
        if path == "/healthz":
            body = {"status": "ok", "workers": self._pool.n_workers}
            return 200, json.dumps(body).encode(), "application/json"
        if path == "/metrics":
            text = to_prometheus(self._registry.snapshot())
            return 200, text.encode(), "text/plain; version=0.0.4"
        if path == "/metrics.json":
            text = to_json(self._registry.snapshot())
            return 200, text.encode(), "application/json"
        if path == "/suggest":
            if request.method == "GET":
                return await self._suggest_single(request.query)
            if request.method == "POST":
                return await self._suggest_post(request.body)
            return 405, json.dumps({"error": "use GET or POST"}).encode(), \
                "application/json"
        return 404, json.dumps({"error": f"no route {path}"}).encode(), \
            "application/json"

    @staticmethod
    def _parse_params(params: dict) -> tuple[SuggestRequest, float | None]:
        """A ``SuggestRequest`` (tier 0) + deadline override from *params*.

        *params* maps names to either strings (JSON body) or lists of
        strings (query string).
        """

        def one(name: str, default=None):
            value = params.get(name, default)
            if isinstance(value, list):
                value = value[0] if value else default
            return value

        query = one("q") or one("query")
        if not query or not str(query).strip():
            raise _BadRequest("missing query parameter 'q'")
        try:
            k = int(one("k", 10))
            timestamp = float(one("timestamp", 0.0))
            deadline_ms = one("deadline_ms")
            deadline_ms = float(deadline_ms) if deadline_ms is not None else None
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f"bad numeric parameter: {exc}") from None
        if deadline_ms is not None and deadline_ms <= 0:
            raise _BadRequest("deadline_ms must be positive")
        user = one("user") or one("user_id")
        try:
            request = SuggestRequest(
                query=str(query), k=k, user_id=user, timestamp=timestamp
            )
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        return request, deadline_ms

    async def _suggest_single(self, params: dict) -> tuple[int, bytes, str]:
        try:
            request, deadline_ms = self._parse_params(params)
        except _BadRequest as exc:
            return exc.status, json.dumps({"error": str(exc)}).encode(), \
                "application/json"
        status, body = await self._admit_and_serve(request, deadline_ms)
        return status, json.dumps(body).encode(), "application/json"

    async def _suggest_post(self, body: bytes) -> tuple[int, bytes, str]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError):
            return 400, json.dumps({"error": "body is not JSON"}).encode(), \
                "application/json"
        if isinstance(payload, dict) and "requests" in payload:
            items = payload["requests"]
            if not isinstance(items, list) or not items:
                return 400, json.dumps(
                    {"error": "'requests' must be a non-empty list"}
                ).encode(), "application/json"
            outcomes = await asyncio.gather(*(
                self._admit_one(item) for item in items
            ))
            results = [
                {"status": status, **body} for status, body in outcomes
            ]
            return 200, json.dumps({"results": results}).encode(), \
                "application/json"
        status, body = await self._admit_one(payload)
        return status, json.dumps(body).encode(), "application/json"

    async def _admit_one(self, params) -> tuple[int, dict]:
        if not isinstance(params, dict):
            return 400, {"error": "each request must be a JSON object"}
        try:
            request, deadline_ms = self._parse_params(params)
        except _BadRequest as exc:
            return exc.status, {"error": str(exc)}
        return await self._admit_and_serve(request, deadline_ms)

    # -- admission + batching ----------------------------------------------------

    def _current_depth(self) -> float:
        """Per-worker load signal: dispatched + still-queued requests."""
        queued = self._queue.qsize() if self._queue is not None else 0
        depth = self._pool.queue_depth + queued
        return depth / max(1, self._pool.n_workers)

    async def _admit_and_serve(
        self, request: SuggestRequest, deadline_ms: float | None
    ) -> tuple[int, dict]:
        """Admission control, batching, deadline — one request end to end."""
        self._m_requests.inc()
        depth = self._current_depth()
        tier = tier_for_depth(depth, self._config)
        if tier:
            self._m_shed[tier].inc()
        if tier >= 3:
            return 503, {
                "error": "overloaded",
                "shed_tier": 3,
                "depth_per_worker": depth,
            }
        if tier:
            request = SuggestRequest(
                query=request.query,
                k=request.k,
                user_id=request.user_id,
                context=request.context,
                timestamp=request.timestamp,
                shed=tier,
            )
        if deadline_ms is None:
            deadline_ms = self._config.default_deadline_ms
        ticket = _Ticket(
            request=request,
            deadline=self._loop.time() + deadline_ms / 1000.0,
        )
        ticket.future = self._loop.create_future()
        self._m_inflight.inc()
        try:
            await self._queue.put(ticket)
            timeout = ticket.deadline - self._loop.time()
            try:
                result = await asyncio.wait_for(ticket.future, timeout)
            except asyncio.TimeoutError:
                self._m_deadline.inc()
                return 504, {
                    "error": "deadline expired",
                    "query": request.query,
                    "deadline_ms": deadline_ms,
                    "shed_tier": tier,
                }
            except ConnectionError as exc:
                return 503, {"error": str(exc), "query": request.query}
        finally:
            self._m_inflight.dec()
        if isinstance(result, SuggestError):
            return 500, {
                "error": result.error,
                "worker": result.worker_id,
                "query": request.query,
            }
        if isinstance(result, Exception):
            return 500, {"error": str(result), "query": request.query}
        return 200, {
            "query": request.query,
            "suggestions": result,
            "shed_tier": tier,
            "k": request.k,
        }

    async def _batch_loop(self) -> None:
        """Accumulate tickets for one window, dispatch, repeat.

        Dispatch is fire-and-forget (a task per batch): the next window
        starts accumulating immediately, so batches overlap in the pool
        exactly as concurrent ``suggest_many`` callers do.
        """
        window = self._config.batch_window_ms / 1000.0
        while True:
            batch = [await self._queue.get()]
            if window > 0:
                window_end = self._loop.time() + window
                while len(batch) < self._config.max_batch:
                    timeout = window_end - self._loop.time()
                    if timeout <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), timeout)
                        )
                    except asyncio.TimeoutError:
                        break
            else:
                while (
                    len(batch) < self._config.max_batch
                    and not self._queue.empty()
                ):
                    batch.append(self._queue.get_nowait())
            self._m_batches.inc()
            self._m_batch_size.observe(len(batch))
            task = self._loop.create_task(self._dispatch(batch))
            self._dispatches.add(task)
            task.add_done_callback(self._dispatches.discard)

    async def _dispatch(self, batch: list[_Ticket]) -> None:
        """Send one micro-batch through the pool on an executor thread."""
        pool = self._pool

        def call() -> tuple[list[_Ticket], object]:
            # The expiry filter runs HERE — when an executor slot is
            # actually free — not when the batch was formed: a request
            # whose deadline passed while earlier batches hogged the
            # dispatchers gets its 504 without ever burning a worker.
            # (asyncio's loop clock is ``time.monotonic``, so ticket
            # deadlines compare directly.)
            cutoff = time.monotonic()
            live = [t for t in batch if t.deadline > cutoff]
            if not live:
                return live, []
            requests = [t.request for t in live]
            try:
                return live, pool.suggest_many(requests, return_errors=True)
            except Exception as exc:
                # Pool-level failure (timeout, dead worker): every ticket
                # of this batch fails; other batches are untouched.
                return live, exc

        live, results = await self._loop.run_in_executor(self._executor, call)
        if isinstance(results, Exception):
            for ticket in live:
                if not ticket.future.done():
                    ticket.future.set_result(results)
            return
        for ticket, result in zip(live, results):
            if not ticket.future.done():
                ticket.future.set_result(result)


class FrontendHandle:
    """A :class:`SuggestFrontend` running on its own event-loop thread."""

    def __init__(
        self,
        frontend: SuggestFrontend,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self._frontend = frontend
        self._loop = loop
        self._thread = thread

    @property
    def frontend(self) -> SuggestFrontend:
        return self._frontend

    @property
    def address(self) -> tuple[str, int]:
        return self._frontend.address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the server and join its loop thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "FrontendHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def run_in_thread(
    pool,
    host: str = "127.0.0.1",
    port: int = 0,
    config: FrontendConfig | None = None,
    registry: MetricsRegistry | None = None,
    start_timeout: float = 30.0,
) -> FrontendHandle:
    """Start a frontend on a dedicated event-loop thread and return it.

    The blocking-world adapter used by tests, benchmarks and anything
    else that already owns its thread of control.  ``port=0`` binds an
    ephemeral port; read it off ``handle.address``.
    """
    started = threading.Event()
    holder: dict = {}

    def runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        frontend = SuggestFrontend(pool, config, registry)
        try:
            loop.run_until_complete(frontend.start(host, port))
        except Exception as exc:  # surface bind errors to the caller
            holder["error"] = exc
            started.set()
            loop.close()
            return
        holder["loop"] = loop
        holder["frontend"] = frontend
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(frontend.stop())
            loop.close()

    thread = threading.Thread(target=runner, daemon=True, name="suggest-http")
    thread.start()
    if not started.wait(timeout=start_timeout):
        raise TimeoutError("frontend failed to start in time")
    if "error" in holder:
        raise holder["error"]
    return FrontendHandle(holder["frontend"], holder["loop"], thread)


def serve_until_interrupt(
    pool,
    host: str,
    port: int,
    config: FrontendConfig | None = None,
    registry: MetricsRegistry | None = None,
    ready=None,
) -> None:
    """Serve on the calling thread until SIGINT/SIGTERM (then stop cleanly).

    The ``repro serve --listen`` main loop: binds, reports the bound
    address through *ready* (a callable receiving ``(host, port)``), and
    shuts the front-end down — failing queued requests, joining dispatch
    tasks, releasing the executor — before returning, whatever ends the
    loop.
    """

    async def _main() -> None:
        frontend = SuggestFrontend(pool, config, registry)
        await frontend.start(host, port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        registered: list[signal.Signals] = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
                registered.append(signum)
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass  # non-main thread / non-Unix: KeyboardInterrupt path
        if ready is not None:
            ready(*frontend.address)
        try:
            await stop.wait()
        finally:
            for signum in registered:
                loop.remove_signal_handler(signum)
            await frontend.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - non-Unix fallback
        pass
