"""Scale-out serving: zero-copy shared memory + multi-process workers.

:mod:`repro.serve.shm` publishes one generation of the serving plane (the
CSR incidences/grams, the walk stacks, the vocabularies, and optionally a
precomputed hot-query table) into a single ``multiprocessing``
shared-memory segment; :mod:`repro.serve.pool` spawns suggest workers
that attach read-only views over it, route requests by query hash for
cache affinity, batch each call into one envelope per worker, answer
head queries O(1) from the hot table in the parent, and swap generations
through an epoch-consistent handshake.  See ``docs/algorithms.md``
("Scale-out serving" and "Batched IPC & hot-query fast tier") for the
layout and protocols.
"""

from repro.serve.pool import PoolStats, SuggestWorkerPool, WorkerStats
from repro.serve.shm import (
    AttachedPlane,
    SharedHotTable,
    SharedMatrixStore,
    SharedPlaneMeta,
    SharedRepresentation,
    SharedTermBipartite,
    attach,
)

__all__ = [
    "AttachedPlane",
    "PoolStats",
    "SharedHotTable",
    "SharedMatrixStore",
    "SharedPlaneMeta",
    "SharedRepresentation",
    "SharedTermBipartite",
    "SuggestWorkerPool",
    "WorkerStats",
    "attach",
]
