"""Scale-out serving: zero-copy shared memory + multi-process workers.

:mod:`repro.serve.shm` publishes one generation of the serving plane (the
CSR incidences/grams, the walk stacks, the vocabularies) into a single
``multiprocessing`` shared-memory segment; :mod:`repro.serve.pool` spawns
suggest workers that attach read-only views over it, route requests by
query hash for cache affinity, and swap generations through an
epoch-consistent handshake.  See ``docs/algorithms.md`` ("Scale-out
serving") for the layout and protocol.
"""

from repro.serve.pool import PoolStats, SuggestWorkerPool, WorkerStats
from repro.serve.shm import (
    AttachedPlane,
    SharedMatrixStore,
    SharedPlaneMeta,
    SharedRepresentation,
    SharedTermBipartite,
    attach,
)

__all__ = [
    "AttachedPlane",
    "PoolStats",
    "SharedMatrixStore",
    "SharedPlaneMeta",
    "SharedRepresentation",
    "SharedTermBipartite",
    "SuggestWorkerPool",
    "WorkerStats",
    "attach",
]
