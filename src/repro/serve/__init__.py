"""Scale-out serving: zero-copy shared memory + multi-process workers.

:mod:`repro.serve.shm` publishes one generation of the serving plane (the
CSR incidences/grams, the walk stacks, the vocabularies, and optionally a
precomputed hot-query table) into a single ``multiprocessing``
shared-memory segment; :mod:`repro.serve.profile_plane` does the same for
the personalization layer (theta profiles, per-user topic-word counts,
user/word vocabs, optional tau) so workers score ``P(q|d)`` zero-copy;
:mod:`repro.serve.pool` spawns suggest workers that attach read-only
views over both, route requests by query hash for cache affinity, batch
each call into one envelope per worker, answer unpersonalized head
queries O(1) from the hot table in the parent (profiled requests bypass
the table — their ranking is Borda-fused per user), and swap matrix and
profile generations through epoch-consistent handshakes;
:mod:`repro.serve.frontend` puts an asyncio HTTP/1.1 front-end over the
pool with micro-batching, per-request deadlines, and depth-driven tiered
load shedding.  See ``docs/algorithms.md`` ("Scale-out serving",
"Batched IPC & hot-query fast tier", "Shared profile plane" and "Async
HTTP front-end") for the layouts and protocols.
"""

from repro.serve.frontend import (
    FrontendConfig,
    FrontendHandle,
    SuggestFrontend,
    run_in_thread,
    serve_until_interrupt,
)
from repro.serve.pool import (
    PoolStats,
    SuggestError,
    SuggestWorkerPool,
    WorkerStats,
)
from repro.serve.profile_plane import (
    AttachedProfilePlane,
    SharedProfileMeta,
    SharedProfileStore,
    attach_profiles,
)
from repro.serve.shm import (
    AttachedPlane,
    SharedHotTable,
    SharedMatrixStore,
    SharedPlaneMeta,
    SharedRepresentation,
    SharedTermBipartite,
    attach,
)

__all__ = [
    "AttachedPlane",
    "AttachedProfilePlane",
    "FrontendConfig",
    "FrontendHandle",
    "PoolStats",
    "SharedHotTable",
    "SharedMatrixStore",
    "SharedPlaneMeta",
    "SharedProfileMeta",
    "SharedProfileStore",
    "SharedRepresentation",
    "SharedTermBipartite",
    "SuggestError",
    "SuggestFrontend",
    "SuggestWorkerPool",
    "WorkerStats",
    "attach",
    "attach_profiles",
    "run_in_thread",
    "serve_until_interrupt",
]
