"""Multi-process suggest workers over the shared-memory matrix plane.

:class:`SuggestWorkerPool` scales the serving fast path across CPU cores
without duplicating the representation: the parent publishes one
:class:`~repro.serve.shm.SharedMatrixStore` generation, spawns N workers,
and each worker attaches read-only views (see :mod:`repro.serve.shm`) and
builds its own :class:`~repro.core.suggester.PQSDA` plus
:class:`~repro.core.serving.CompactCache` over them.  Matrix bytes exist
once per generation however many workers serve.

Routing, affinity and batched envelopes
    Requests are routed by ``crc32(normalized_query) % n_workers`` — a
    process-stable hash (builtin ``hash`` is salted per process), so
    repeats of a query land on the same worker and hit its compact-entry
    cache.  :meth:`~SuggestWorkerPool.suggest_many` groups the requests
    of one call by route and sends **one** compact envelope per worker —
    a batch id plus primitive-encoded request tuples, never a pickled
    :class:`~repro.baselines.base.SuggestRequest` per request — and each
    worker replies with one envelope per batch, so the per-request IPC
    tax (queue hop + pickle) is amortized across the batch.  Results
    come back in request order and are bit-identical to the
    single-process path — personalized requests included: a
    profile-bearing suggester's store is packed into a shared **profile
    plane** (:mod:`repro.serve.profile_plane`) that workers attach
    zero-copy and Borda-fuse against exactly like the single-process
    ``PersonalizedSuggester`` path.  Reply envelopes are tagged with
    their batch id: envelopes surfacing late from a timed-out batch are
    drained, never matched against the next call.

Concurrent callers (the front-end contract)
    :meth:`~SuggestWorkerPool.suggest_many` is safe to call from any
    number of threads, and overlapping calls genuinely overlap: a single
    dispatcher thread drains the shared reply queue and correlates each
    reply envelope to its batch by id, so a caller only waits on *its
    own* batch's completion event — one slow batch never serializes the
    others behind a whole-call lock.  Per-request failures inside an
    envelope are propagated per request (``return_errors=True`` returns
    :class:`SuggestError` placeholders; the default re-raises, matching
    single-caller semantics), so one poisoned request cannot discard the
    sibling results its batch already computed.  Requests carry their
    load-shed tier (``SuggestRequest.shed``) into the envelope, which the
    worker forwards to ``PQSDA.suggest`` — the degraded modes the HTTP
    front-end (:mod:`repro.serve.frontend`) sheds into under load.

Hot-query fast tier
    Real query streams are head-skewed.  Given ``hot_queries`` (or
    ``hot_top`` over streaming epochs), the pool precomputes the full
    expand/solve/walk pipeline for those head queries at publish time,
    packs the results into the same shared segment as the matrices (see
    :class:`~repro.serve.shm.SharedHotTable`), verifies the packed bytes
    round-trip bit-identically, and answers context-free hits O(1) in
    the parent — head traffic never touches a worker queue.  The table
    stores each query's full diversified ranking, which never depends on
    the request's ``k`` (``suggest`` slices ``ranking[:k]``), so any
    ``k`` is served from the same entry; requests carrying a search
    context — or a profiled ``user_id``, whose worker-side ranking would
    be Borda-fused with preference scores the table never saw — take the
    full worker path.  Every :meth:`~SuggestWorkerPool.publish_plane` /
    epoch swap rebuilds the table against the new generation and swaps it
    atomically with the segment, so no stale answer survives an epoch.

Shared profile plane (personalized serving)
    Given ``profiles`` (or a profile-bearing suggester via
    :meth:`~SuggestWorkerPool.from_suggester`), the pool packs the fitted
    UPM's serving state into its own shared-memory segment
    (:class:`~repro.serve.profile_plane.SharedProfileStore`); each worker
    attaches a read-only zero-copy scorer and binds it to its ``PQSDA``,
    so profiled requests come back Borda-fused bit-identically to the
    single-process path while profile bytes exist once per generation.
    Profile generations swap through the same in-band handshake as the
    matrix plane (:meth:`~SuggestWorkerPool.publish_profiles`, message
    kind ``pswap``), and epochs carrying folded click feedback
    (``epoch.profiles``) republish automatically.

Generation handshake (epoch-consistent publication)
    :meth:`~SuggestWorkerPool.publish_plane` shares the next generation as
    a fresh segment and sends a swap control message down every worker's
    *request queue*.  Workers are single-threaded loops, so the swap is
    processed strictly between requests — no request ever observes half of
    each generation (torn view).  The publisher unlinks the superseded
    segment only after every worker acks the swap, so a slow worker can
    finish in-flight requests against arrays that are guaranteed to stay
    mapped.  :meth:`~SuggestWorkerPool.attach_epochs` wires this to an
    :class:`~repro.stream.epoch.EpochManager` publish stream.

Observability
    Workers run their own :class:`~repro.obs.registry.MetricsRegistry`;
    :meth:`~SuggestWorkerPool.merged_metrics` fetches the per-worker
    snapshots, relabels them with ``worker=<id>``, and merges them with
    the pool-level registry (queue-depth gauge, request counter,
    attach/swap latency histograms) into one deterministic snapshot.
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
import time
import traceback
import zlib
from dataclasses import asdict, dataclass
from collections.abc import Mapping
from multiprocessing import get_context
from typing import Sequence

from repro.baselines.base import SuggestRequest
from repro.core.config import PQSDAConfig
from repro.core.serving import CacheStats
from repro.core.suggester import PQSDA
from repro.graphs.compact import RandomWalkExpander
from repro.graphs.shard import (
    ShardPlan,
    ShardSlice,
    ShardedExpander,
    build_shard_slices,
)
from repro.logs.schema import QueryRecord
from repro.obs.registry import MetricsRegistry, NULL_REGISTRY
from repro.personalize.profiles import (
    ArrayProfileStore,
    ProfileArrays,
    UserProfileStore,
)
from repro.serve.profile_plane import (
    AttachedProfilePlane,
    SharedProfileMeta,
    SharedProfileStore,
)
from repro.serve.shard_plane import (
    AttachedShardedPlane,
    ShardSegmentMeta,
    SharedShardStore,
)
from repro.serve.shm import (
    AttachedPlane,
    SharedHotTable,
    SharedMatrixStore,
    SharedPlaneMeta,
    SharedRepresentation,
)
from repro.utils.text import normalize_query

__all__ = [
    "PoolStats",
    "ShardedPlaneHandle",
    "SuggestError",
    "SuggestWorkerPool",
    "WorkerStats",
]

#: Batch-size histogram bounds (requests per worker envelope).
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(frozen=True)
class ShardedPlaneHandle:
    """Picklable manifest of one sharded generation: plan + shard metas.

    The sharded analogue of a :class:`~repro.serve.shm.SharedPlaneMeta`:
    one handle describes every shard's segment, and each worker derives
    its own home-shard set from its worker id (see :func:`_home_shards`),
    so a full swap broadcasts a single object down every request queue.
    """

    plan: ShardPlan
    metas: dict[int, ShardSegmentMeta]
    n_workers: int


def _home_shards(worker_id: int, n_workers: int, n_shards: int) -> list[int]:
    """The shards worker *worker_id* attaches eagerly (serves as home).

    With at least as many shards as workers, shards stripe over workers
    (``shard % n_workers``); with fewer shards than workers, each worker
    homes exactly one shard (``worker % n_shards``) and shards are
    replicated across the workers that map to them.
    """
    if n_shards >= n_workers:
        return [s for s in range(n_shards) if s % n_workers == worker_id]
    return [worker_id % n_shards]


def _shard_route(shard_id: int, crc: int, n_workers: int, n_shards: int) -> int:
    """Worker serving *shard_id* for a query with routing hash *crc*.

    The exact inverse of :func:`_home_shards`: striped shards route to
    their unique owner; replicated shards (fewer shards than workers)
    spread over their replica set by the query hash, so repeats of a
    query still land on one worker and hit its compact-entry cache.
    """
    if n_shards >= n_workers:
        return shard_id % n_workers
    replicas = [w for w in range(n_workers) if w % n_shards == shard_id]
    return replicas[crc % len(replicas)]


def _attach_worker_plane(meta, worker_id: int):
    """Attach whichever plane flavor *meta* describes (full or sharded)."""
    if isinstance(meta, ShardedPlaneHandle):
        return AttachedShardedPlane(
            meta.metas,
            meta.plan,
            _home_shards(worker_id, meta.n_workers, meta.plan.n_shards),
        )
    return AttachedPlane(meta)


class _ShardedHotView:
    """Parent-side hot-table lookup composed over per-shard partitions.

    Each shard's hot entries live in that shard's segment, so a
    per-shard swap replaces exactly one partition; lookups route by the
    plan's home-shard hash like every other request.
    """

    def __init__(self, plan: ShardPlan, tables: dict[int, SharedHotTable]):
        self._plan = plan
        self._tables = dict(tables)

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def lookup(self, normalized_query: str) -> list[str] | None:
        table = self._tables.get(self._plan.shard_of(normalized_query))
        return table.lookup(normalized_query) if table is not None else None

    def replace(self, shard_id: int, table: SharedHotTable | None) -> None:
        if table is None:
            self._tables.pop(shard_id, None)
        else:
            self._tables[shard_id] = table


@dataclass(frozen=True, slots=True)
class SuggestError:
    """Per-request failure marker returned by ``suggest_many(return_errors=True)``.

    Attributes:
        worker_id: The worker whose ``suggest`` call raised.
        error: The worker-side traceback, formatted.
    """

    worker_id: int
    error: str

    def __str__(self) -> str:
        return f"worker {self.worker_id} failed:\n{self.error}"


class _PendingBatch:
    """Parent-side completion state of one in-flight request batch."""

    __slots__ = ("event", "expected", "outstanding", "replies")

    def __init__(self, expected_workers, outstanding: int) -> None:
        self.event = threading.Event()
        self.expected = frozenset(expected_workers)
        self.replies: dict[int, list] = {}
        #: Requests dispatched and not yet replied (exact depth gauge).
        self.outstanding = outstanding


def _encode_request(request: SuggestRequest) -> tuple:
    """Primitive-tuple encoding of one request for a worker envelope.

    Dataclass pickling (class lookup + per-field ``__reduce__``) is the
    measurable per-request cost of the old one-message-per-request path;
    plain tuples of builtins keep the envelope compact.
    """
    return (
        request.query,
        request.k,
        request.user_id,
        tuple(
            (r.user_id, r.query, r.timestamp, r.clicked_url, r.record_id)
            for r in request.context
        ),
        request.timestamp,
        request.shed,
    )


def _verified_hot_table(
    store: SharedMatrixStore, computed: dict[str, list[str]] | None
) -> SharedHotTable | None:
    """The store's packed hot table, bit-identity-checked entry by entry.

    Every ranking that went in must come back out of the packed segment
    bytes verbatim — this is the publish-time proof that a hot hit equals
    the full expand/solve/walk path it was precomputed from.
    """
    if not computed:
        return None
    packed = store.hot_table()
    for query, ranking in computed.items():
        unpacked = packed.lookup(query)
        if unpacked != list(ranking):
            raise RuntimeError(
                f"hot-table round-trip mismatch for {query!r}: packed "
                f"{unpacked!r} != computed {list(ranking)!r}"
            )
    return packed


def _profile_arrays(
    profiles: UserProfileStore | ArrayProfileStore | ProfileArrays,
) -> ProfileArrays:
    """The packable form of any profile-store flavor the pool accepts."""
    if isinstance(profiles, ProfileArrays):
        return profiles
    return profiles.to_arrays()


def _decode_context(encoded: tuple) -> tuple[QueryRecord, ...]:
    """Rebuild the context records a worker passes into ``suggest``."""
    return tuple(
        QueryRecord(
            user_id=user_id,
            query=query,
            timestamp=timestamp,
            clicked_url=clicked_url,
            record_id=record_id,
        )
        for user_id, query, timestamp, clicked_url, record_id in encoded
    )


def _rss_kb() -> int:
    """This process's resident set size in kB (0 where /proc is absent)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return 0


def _worker_main(
    worker_id: int,
    meta,
    profile_meta: SharedProfileMeta | None,
    config: PQSDAConfig,
    request_queue,
    reply_queue,
    ack_queue,
) -> None:
    """One suggest worker: attach, serve, swap on command, report stats.

    *meta* is either a :class:`~repro.serve.shm.SharedPlaneMeta` (the
    single-segment plane) or a :class:`ShardedPlaneHandle` (one segment
    per shard; this worker eagerly attaches only its home shards).

    The loop is strictly serial, which is the torn-view guarantee: a swap
    (matrix, shard or profile) message is only ever handled between two
    requests, so every request runs start-to-finish against exactly one
    generation's views.
    """
    started = time.perf_counter()
    # multiprocessing children (spawn and fork alike, on POSIX) inherit the
    # publisher's resource_tracker fd, so attach-time registrations land in
    # the publisher's registry where they are idempotent — no untracking.
    attach_start = time.perf_counter()
    plane = _attach_worker_plane(meta, worker_id)
    profile_plane = (
        AttachedProfilePlane(profile_meta) if profile_meta is not None else None
    )
    attach_seconds = time.perf_counter() - attach_start
    registry = MetricsRegistry()
    profiles = profile_plane.store if profile_plane is not None else None
    if profiles is not None:
        profiles.attach_metrics(registry)
    pqsda = PQSDA(plane.representation, plane.expander, profiles, config)
    pqsda.attach_metrics(registry)
    requests_served = 0
    busy_seconds = 0.0
    generation = 0
    profile_generation = (
        profile_plane.generation if profile_plane is not None else 0
    )
    ack_queue.put(
        (
            "ready",
            worker_id,
            {
                "pid": os.getpid(),
                "attach_seconds": attach_seconds,
                "shares_memory": plane.shares_memory(),
                "profile_shares_memory": (
                    profile_plane.shares_memory()
                    if profile_plane is not None
                    else True
                ),
                "profile_users": len(profiles) if profiles is not None else 0,
                "rss_kb": _rss_kb(),
                "epoch_id": plane.epoch_id,
            },
        )
    )
    try:
        while True:
            message = request_queue.get()
            kind = message[0]
            if kind == "batch":
                _, batch_id, items = message
                begin = time.perf_counter()
                replies = []
                for query, k, user_id, context, timestamp, shed in items:
                    try:
                        result = pqsda.suggest(
                            query,
                            k=k,
                            user_id=user_id,
                            context=_decode_context(context),
                            timestamp=timestamp,
                            shed=shed,
                        )
                        replies.append((result, None))
                    except Exception:
                        replies.append((None, traceback.format_exc()))
                busy_seconds += time.perf_counter() - begin
                requests_served += len(items)
                reply_queue.put(("bres", batch_id, worker_id, replies))
            elif kind == "swap":
                _, new_meta, new_generation, touched = message
                swap_start = time.perf_counter()
                error = None
                try:
                    new_plane = _attach_worker_plane(new_meta, worker_id)
                    pqsda.rebind_representation(
                        new_plane.representation, new_plane.expander, touched
                    )
                    plane.close()
                    plane = new_plane
                    generation = new_generation
                except Exception:
                    error = traceback.format_exc()
                ack_queue.put(
                    (
                        "ack",
                        worker_id,
                        new_generation,
                        {
                            "swap_seconds": time.perf_counter() - swap_start,
                            "error": error,
                        },
                    )
                )
            elif kind == "sswap":
                # Per-shard generation swap: only the touched shard's
                # segment is remapped; every other shard's views — and
                # the profile plane — stay exactly as they are.  Same
                # serial-loop torn-view guarantee as a full swap.
                _, shard_meta, new_generation, touched = message
                swap_start = time.perf_counter()
                error = None
                try:
                    plane.update_shard(shard_meta)
                    pqsda.rebind_representation(
                        plane.representation, plane.expander, touched
                    )
                    generation = new_generation
                except Exception:
                    error = traceback.format_exc()
                ack_queue.put(
                    (
                        "ack",
                        worker_id,
                        new_generation,
                        {
                            "swap_seconds": time.perf_counter() - swap_start,
                            "error": error,
                        },
                    )
                )
            elif kind == "pswap":
                # Profile-generation swap: same serial-loop guarantee as a
                # matrix swap — never observed mid-request, old segment
                # released only after this ack reaches the publisher.
                _, new_profile_meta, new_profile_generation = message
                swap_start = time.perf_counter()
                error = None
                try:
                    new_profile_plane = AttachedProfilePlane(new_profile_meta)
                    profiles = new_profile_plane.store
                    profiles.attach_metrics(registry)
                    pqsda.rebind_profiles(profiles)
                    if profile_plane is not None:
                        profile_plane.close()
                    profile_plane = new_profile_plane
                    profile_generation = new_profile_generation
                except Exception:
                    error = traceback.format_exc()
                ack_queue.put(
                    (
                        "pswap_ack",
                        worker_id,
                        new_profile_generation,
                        {
                            "swap_seconds": time.perf_counter() - swap_start,
                            "shares_memory": (
                                profile_plane.shares_memory()
                                if profile_plane is not None and error is None
                                else True
                            ),
                            "error": error,
                        },
                    )
                )
            elif kind == "stats":
                (_, token) = message
                uptime = time.perf_counter() - started
                spill = None
                if isinstance(plane, AttachedShardedPlane):
                    spill = plane.expander.spill_stats()
                    registry.gauge("serve.shard.walks").set(spill["walks"])
                    registry.gauge("serve.shard.spills").set(spill["spills"])
                    registry.gauge("serve.shard.spill_fraction").set(
                        spill["spill_fraction"]
                    )
                    registry.gauge("serve.shard.foreign_attaches").set(
                        spill["foreign_attaches"]
                    )
                ack_queue.put(
                    (
                        "stats",
                        worker_id,
                        token,
                        {
                            "pid": os.getpid(),
                            "requests": requests_served,
                            "busy_seconds": busy_seconds,
                            "uptime_seconds": uptime,
                            "generation": generation,
                            "epoch_id": plane.epoch_id,
                            "rss_kb": _rss_kb(),
                            "shares_memory": plane.shares_memory(),
                            "profile_generation": profile_generation,
                            "profile_users": (
                                len(profiles) if profiles is not None else 0
                            ),
                            "profile_shares_memory": (
                                profile_plane.shares_memory()
                                if profile_plane is not None
                                else True
                            ),
                            "cache": asdict(pqsda.cache_stats),
                            "spill": spill,
                            "snapshot": registry.snapshot(),
                        },
                    )
                )
            elif kind == "stop":
                break
    finally:
        plane.close()
        if profile_plane is not None:
            profile_plane.close()


@dataclass(frozen=True, slots=True)
class WorkerStats:
    """Point-in-time counters of one pool worker.

    Attributes:
        worker_id: Routing slot of the worker (0-based).
        pid: OS process id.
        requests: Requests served since spawn.
        busy_seconds: Wall time spent inside ``suggest`` calls.
        uptime_seconds: Wall time since the worker process started.
        qps: ``requests / uptime_seconds``.
        generation: Last plane generation the worker acked.
        epoch_id: Epoch ordinal of the attached plane.
        rss_kb: Worker resident set size (kB).
        shares_memory: Whether every matrix payload is still a shared view.
        cache: The worker's compact-entry cache counters.
        profile_generation: Last profile generation the worker acked (0
            when the pool serves without profiles).
        profile_users: Users in the worker's attached profile store.
        profile_shares_memory: Whether every profile payload is still a
            shared view (vacuously true without profiles).
        spill: Shard-walk spill counters of the worker's sharded
            expander (``None`` when the pool serves the unsharded plane).
    """

    worker_id: int
    pid: int
    requests: int
    busy_seconds: float
    uptime_seconds: float
    qps: float
    generation: int
    epoch_id: int
    rss_kb: int
    shares_memory: bool
    cache: CacheStats
    profile_generation: int = 0
    profile_users: int = 0
    profile_shares_memory: bool = True
    spill: dict | None = None


@dataclass(frozen=True, slots=True)
class PoolStats:
    """Pool-level snapshot: one :class:`WorkerStats` per worker.

    Attributes:
        n_workers: Worker count.
        generation: Current plane generation (0 = the bootstrap plane).
        epoch_id: Epoch ordinal of the current plane.
        segment_bytes: Bytes of the current shared segment (counted once,
            however many workers attach).
        workers: Per-worker counters, ordered by ``worker_id``.
        hot_entries: Entries in the current generation's hot-query table
            (0 when the hot tier is off).
        hot_hits: Requests the parent answered O(1) from the hot table
            since the pool started — these never reached a worker, so
            they are *not* part of any worker's ``requests`` count.
        profile_users: Profiled users in the current profile generation
            (0 = the pool serves without the profile plane).
        profile_generation: Current profile generation ordinal.
        profile_segment_bytes: Bytes of the current profile segment.
        n_shards: Shards of the current plan (0 = unsharded plane).
        shard_segment_bytes: Per-shard segment sizes, indexed by shard id
            (empty when unsharded).
        shard_epoch_ids: Per-shard epoch ordinals — independent per-shard
            publishes make these diverge on purpose.
    """

    n_workers: int
    generation: int
    epoch_id: int
    segment_bytes: int
    workers: tuple[WorkerStats, ...]
    hot_entries: int = 0
    hot_hits: int = 0
    profile_users: int = 0
    profile_generation: int = 0
    profile_segment_bytes: int = 0
    n_shards: int = 0
    shard_segment_bytes: tuple[int, ...] = ()
    shard_epoch_ids: tuple[int, ...] = ()

    @property
    def total_requests(self) -> int:
        """Requests served by the pool (worker batches + parent hot hits)."""
        return sum(worker.requests for worker in self.workers) + self.hot_hits


class SuggestWorkerPool:
    """N suggest workers sharing one zero-copy matrix plane.

    Args:
        expander: Full-graph expander whose matrices and walk stacks seed
            the first published generation.
        config: Serving configuration for every worker's ``PQSDA``.
        multibipartite: Representation handle; publishes the query-term
            adjacency so workers serve the unseen-query backoff.  ``None``
            disables the backoff in workers.
        profiles: Profile store (or packed
            :class:`~repro.personalize.profiles.ProfileArrays`) to publish
            as the shared profile plane.  Workers attach zero-copy scorers
            over it and Borda-fuse personalized requests bit-identically
            to the single-process personalized suggester; ``None`` serves
            unpersonalized (the pre-profile-plane behavior).
        n_workers: Worker process count.
        registry: Optional pool-level metrics registry.
        start_method: ``multiprocessing`` start method.  The default
            ``"spawn"`` is the honest zero-copy demonstration — children
            inherit nothing, every shared byte travels through the
            segment.  (``"fork"`` also works and attaches faster.)
        ready_timeout: Seconds to wait for workers to attach at startup.
        ack_timeout: Seconds to wait for swap acks, batch replies and
            stats replies.
        prefix: Shared-memory segment name prefix.
        hot_queries: Head queries to precompute into the shared hot-query
            table (``None``/empty = no hot tier).  Use
            :func:`repro.core.suggester.head_queries` to extract them
            from a log by frequency.
        hot_top: When > 0 and the pool is wired to an epoch manager,
            every epoch publish re-derives ``hot_top`` head queries from
            the epoch's log and rebuilds the table against the new
            generation (explicit ``hot_queries`` seed the table until the
            first epoch arrives).
        n_shards: Partition the graph plane into this many per-shard
            segments (0 = the single-segment plane).  Sharded serving is
            bit-identical to unsharded at any shard count; requests route
            by the shard plan composed with the worker stripe, each
            worker eagerly attaches only its home shards, and per-shard
            epoch publishes (:meth:`publish_shard`) swap exactly one
            shard's segment.  Requires *multibipartite* (the facet
            vocabularies make shard slices stitchable).
        shard_plan: An explicit :class:`~repro.graphs.shard.ShardPlan`
            (e.g. a component-packed plan so walks never spill);
            overrides *n_shards*.

    Use as a context manager (or call :meth:`close`): shutdown stops the
    workers and unlinks the current segments, leaving nothing in
    ``/dev/shm``.
    """

    def __init__(
        self,
        expander: RandomWalkExpander,
        config: PQSDAConfig,
        multibipartite=None,
        profiles: UserProfileStore | ArrayProfileStore | ProfileArrays | None = None,
        n_workers: int = 2,
        registry=None,
        start_method: str = "spawn",
        ready_timeout: float = 120.0,
        ack_timeout: float = 120.0,
        prefix: str = "pqsda",
        hot_queries: Sequence[str] | None = None,
        hot_top: int = 0,
        n_shards: int = 0,
        shard_plan: ShardPlan | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self._n_workers = n_workers
        self._config = config
        self._multibipartite = multibipartite
        self._ack_timeout = ack_timeout
        self._prefix = prefix
        self._generation = 0
        self._closed = False
        self._hot_queries = list(hot_queries) if hot_queries else None
        self._hot_top = hot_top
        self._hot = None
        self._hot_hits_total = 0
        if shard_plan is None and n_shards > 0:
            shard_plan = ShardPlan.hashed(n_shards)
        self._plan = shard_plan
        if self._plan is not None and multibipartite is None:
            raise ValueError(
                "sharded serving needs the multibipartite (its facet "
                "vocabularies make the shard slices stitchable)"
            )

        registry = registry if registry is not None else NULL_REGISTRY
        self._registry = registry
        self._m_requests = registry.counter("serve.pool.requests")
        self._m_depth = registry.gauge("serve.pool.queue_depth")
        self._m_workers = registry.gauge("serve.pool.workers")
        self._m_generations = registry.counter("serve.pool.generations")
        self._m_attach = registry.histogram("serve.pool.attach_seconds")
        self._m_swap = registry.histogram("serve.pool.swap_seconds")
        self._m_hot_hits = registry.counter("serve.pool.hot_hits")
        self._m_batch_size = registry.histogram(
            "serve.pool.batch_size", buckets=_BATCH_SIZE_BUCKETS
        )
        self._m_profile_swaps = registry.counter(
            "serve.profile.generation_swaps"
        )
        self._m_profile_users = registry.gauge("serve.profile.users")
        self._m_workers.set(n_workers)
        self._m_shards = registry.gauge("serve.shard.count")
        self._m_shard_swaps = registry.counter("serve.shard.swaps")

        hot_table = self._compute_hot_table(
            expander, multibipartite, self._hot_queries
        )
        self._store: SharedMatrixStore | None = None
        self._shard_stores: dict[int, SharedShardStore] = {}
        self._slices: dict[int, ShardSlice] = {}
        if self._plan is not None:
            self._m_shards.set(self._plan.n_shards)
            self._slices = build_shard_slices(
                expander.matrices, self._plan, multibipartite
            )
            self._shard_stores = self._publish_shard_stores(
                self._slices, epoch_id=0, hot_table=hot_table
            )
            self._hot = self._verified_shard_hot(self._shard_stores, hot_table)
        else:
            self._store = SharedMatrixStore.publish(
                expander.matrices,
                expander,
                multibipartite,
                epoch_id=0,
                prefix=prefix,
                hot_table=hot_table,
            )
            self._hot = _verified_hot_table(self._store, hot_table)
        self._profile_store: SharedProfileStore | None = None
        self._profile_generation = 0
        self._profiled_users: frozenset[str] = frozenset()
        if profiles is not None:
            arrays = _profile_arrays(profiles)
            self._profile_store = SharedProfileStore.publish(
                arrays, prefix=prefix, generation=arrays.generation
            )
            self._profile_generation = self._profile_store.generation
            self._profiled_users = frozenset(arrays.users)
            self._m_profile_users.set(len(arrays.users))
        context = get_context(start_method)
        self._request_queues = [context.Queue() for _ in range(n_workers)]
        self._reply_queue = context.Queue()
        self._ack_queue = context.Queue()
        # _control_lock serializes publish/stats round-trips over the ack
        # queue.  The request path has no whole-call lock: _pending_lock
        # only guards the batch registry that the reply dispatcher thread
        # correlates envelopes against, so concurrent suggest_many calls
        # overlap (each waits on its own batch's completion event).
        self._control_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _PendingBatch] = {}
        self._next_batch_id = 0
        self._next_token = 0
        self._workers = []
        self._dispatcher_stop = threading.Event()
        self._dispatcher: threading.Thread | None = None
        try:
            for worker_id in range(n_workers):
                process = context.Process(
                    target=_worker_main,
                    args=(
                        worker_id,
                        self._plane_payload(),
                        (
                            self._profile_store.meta
                            if self._profile_store is not None
                            else None
                        ),
                        config,
                        self._request_queues[worker_id],
                        self._reply_queue,
                        self._ack_queue,
                    ),
                    daemon=True,
                    name=f"suggest-worker-{worker_id}",
                )
                process.start()
                self._workers.append(process)
            self._dispatcher = threading.Thread(
                target=self._dispatch_replies,
                name="suggest-reply-dispatcher",
                daemon=True,
            )
            self._dispatcher.start()
            self._ready_info = self._collect_ready(ready_timeout)
        except Exception:
            self.close()
            raise

    def _dispatch_replies(self) -> None:
        """Reply-dispatcher loop: correlate envelopes to pending batches.

        One thread owns the read side of the shared reply queue for the
        pool's whole lifetime.  Each ``("bres", batch_id, worker_id,
        replies)`` envelope is matched to its :class:`_PendingBatch` by
        id and recorded; the batch's waiter is woken only when every
        expected worker has replied.  Envelopes whose batch is no longer
        registered (it timed out and was deregistered) are drained here —
        the same stale-reply guarantee as before, without a whole-call
        reply lock serializing independent batches.
        """
        while not self._dispatcher_stop.is_set():
            try:
                message = self._reply_queue.get(timeout=0.2)
            except queue_module.Empty:
                continue
            except (EOFError, OSError, ValueError):  # pragma: no cover
                return  # queue torn down mid-shutdown
            _, batch_id, worker_id, replies = message
            done = False
            with self._pending_lock:
                pending = self._pending.get(batch_id)
                if pending is None or worker_id not in pending.expected:
                    # Stale envelope from a batch that timed out (and was
                    # deregistered) in an earlier call: drain, never match.
                    continue
                pending.replies[worker_id] = replies
                pending.outstanding -= len(replies)
                done = len(pending.replies) == len(pending.expected)
            self._m_depth.dec(len(replies))
            if done:
                pending.event.set()

    def _compute_hot_table(
        self,
        expander: RandomWalkExpander,
        multibipartite,
        hot_queries: Sequence[str] | None,
    ) -> dict[str, list[str]] | None:
        """Precompute ``{query: full diversified ranking}`` for the head.

        Runs the full expand/solve/walk pipeline in the parent against
        exactly the representation being published, so a packed entry is
        the same bytes a worker would compute.  The ranking never depends
        on the request's ``k`` (``suggest`` returns ``ranking[:k]``), so
        one entry serves every ``k``.
        """
        if not hot_queries:
            return None
        representation = multibipartite
        if representation is None:
            # No term index crosses to the workers either; membership is
            # all the pipeline needs for in-graph head queries.
            matrices = expander.matrices
            representation = SharedRepresentation(
                queries=matrices.queries, query_index=matrices.query_index
            )
        suggester = PQSDA(representation, expander, None, self._config)
        table: dict[str, list[str]] = {}
        for query in hot_queries:
            normalized = normalize_query(query)
            if normalized in table:
                continue
            if (
                normalized not in representation
                and multibipartite is None
                and self._config.term_backoff
            ):
                # The backoff needs the term index the parent does not
                # hold here; leave unseen queries to the cold path.
                continue
            table[normalized] = suggester.diversified_candidates(
                normalized
            ).top(self._config.diversify.k)
        return table or None

    # -- sharded-plane helpers ---------------------------------------------------

    def _plane_payload(self):
        """What a worker attaches: one meta, or one handle over all shards."""
        if self._plan is not None:
            return ShardedPlaneHandle(
                plan=self._plan,
                metas={
                    shard_id: store.meta
                    for shard_id, store in self._shard_stores.items()
                },
                n_workers=self._n_workers,
            )
        return self._store.meta

    def _hot_partition(
        self, hot_table: Mapping[str, Sequence[str]] | None, shard_id: int
    ) -> dict[str, list[str]] | None:
        """The slice of *hot_table* homed on *shard_id* (None when empty)."""
        if not hot_table:
            return None
        partition = {
            query: ranking
            for query, ranking in hot_table.items()
            if self._plan.shard_of(query) == shard_id
        }
        return partition or None

    def _publish_shard_stores(
        self,
        slices: Mapping[int, ShardSlice],
        epoch_id: int,
        hot_table: Mapping[str, Sequence[str]] | None,
        multibipartite=None,
    ) -> dict[int, SharedShardStore]:
        """One fresh segment per shard (hot entries partitioned by home)."""
        representation = (
            multibipartite
            if multibipartite is not None
            else self._multibipartite
        )
        term_bipartite = (
            representation.bipartite("T") if representation is not None else None
        )
        stores: dict[int, SharedShardStore] = {}
        try:
            for shard_id in sorted(slices):
                stores[shard_id] = SharedShardStore.publish(
                    slices[shard_id],
                    epoch_id=epoch_id,
                    prefix=f"{self._prefix}-s",
                    term_bipartite=term_bipartite,
                    hot_table=self._hot_partition(hot_table, shard_id),
                )
        except Exception:
            for store in stores.values():
                store.unlink()
                store.close()
            raise
        for shard_id, store in stores.items():
            self._registry.gauge(
                "serve.shard.segment_bytes", labels={"shard": str(shard_id)}
            ).set(store.total_bytes)
        return stores

    def _verified_shard_hot(
        self,
        stores: Mapping[int, SharedShardStore],
        hot_table: Mapping[str, Sequence[str]] | None,
    ) -> "_ShardedHotView | None":
        """Round-trip-verified per-shard hot view (None when no hot tier)."""
        if not hot_table:
            return None
        tables: dict[int, SharedHotTable] = {}
        for shard_id, store in stores.items():
            partition = self._hot_partition(hot_table, shard_id)
            packed = _verified_hot_table(store, partition)
            if packed is not None:
                tables[shard_id] = packed
        return _ShardedHotView(self._plan, tables)

    def _check_workers_alive(self) -> None:
        dead = [
            f"{process.name} (exit {process.exitcode})"
            for process in self._workers
            if process.exitcode is not None
        ]
        if dead:
            raise RuntimeError(f"worker process died: {', '.join(dead)}")

    def _collect_ready(self, timeout: float) -> dict[int, dict]:
        deadline = time.monotonic() + timeout
        ready: dict[int, dict] = {}
        while len(ready) < self._n_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"only {len(ready)}/{self._n_workers} workers attached "
                    f"within {timeout:.0f}s"
                )
            try:
                kind, worker_id, info = self._ack_queue.get(
                    timeout=min(remaining, 1.0)
                )
            except queue_module.Empty:
                self._check_workers_alive()
                continue
            if kind != "ready":  # pragma: no cover - defensive
                continue
            ready[worker_id] = info
            self._m_attach.observe(info["attach_seconds"])
        return ready

    # -- properties --------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        """Worker process count."""
        return self._n_workers

    @property
    def generation(self) -> int:
        """Current plane generation (bumped by each publish)."""
        return self._generation

    @property
    def n_shards(self) -> int:
        """Shards of the current plan (0 = the single-segment plane)."""
        return self._plan.n_shards if self._plan is not None else 0

    @property
    def shard_plan(self) -> ShardPlan | None:
        """The shard plan (``None`` when serving the unsharded plane)."""
        return self._plan

    @property
    def segment_name(self) -> str:
        """Name of the current generation's segment (shard 0 if sharded)."""
        if self._store is not None:
            return self._store.segment_name
        return self._shard_stores[min(self._shard_stores)].segment_name

    @property
    def segment_bytes(self) -> int:
        """Bytes of the current shared segment(s), summed across shards."""
        if self._store is not None:
            return self._store.total_bytes
        return sum(store.total_bytes for store in self._shard_stores.values())

    @property
    def shard_segment_bytes(self) -> dict[int, int]:
        """Per-shard segment sizes (empty when unsharded)."""
        return {
            shard_id: store.total_bytes
            for shard_id, store in sorted(self._shard_stores.items())
        }

    @property
    def shard_epoch_ids(self) -> dict[int, int]:
        """Per-shard epoch ordinals (empty when unsharded)."""
        return {
            shard_id: store.meta.epoch_id
            for shard_id, store in sorted(self._shard_stores.items())
        }

    @property
    def ready_info(self) -> dict[int, dict]:
        """Per-worker attach facts gathered at startup (pid, timings, rss)."""
        return dict(self._ready_info)

    @property
    def queue_depth(self) -> int:
        """Requests dispatched to workers and not yet replied, right now.

        The exact number behind the ``serve.pool.queue_depth`` gauge —
        the admission-control signal the HTTP front-end divides by
        :attr:`n_workers` to pick a shed tier.  Available without a
        registry attached.
        """
        with self._pending_lock:
            return sum(p.outstanding for p in self._pending.values())

    @property
    def hot_entries(self) -> int:
        """Entries in the current generation's hot table (0 = tier off)."""
        hot = self._hot
        return len(hot) if hot is not None else 0

    @property
    def hot_hits(self) -> int:
        """Requests answered O(1) from the hot table since startup."""
        return self._hot_hits_total

    @property
    def serves_profiles(self) -> bool:
        """Whether a shared profile plane is attached to the workers."""
        return self._profile_store is not None

    @property
    def profile_generation(self) -> int:
        """Current profile generation (bumped by each profile publish)."""
        return self._profile_generation

    @property
    def profile_users(self) -> int:
        """Profiled users in the current profile generation."""
        return len(self._profiled_users)

    @property
    def profile_segment_name(self) -> str | None:
        """Name of the current profile segment (``None`` without profiles)."""
        store = self._profile_store
        return store.segment_name if store is not None else None

    @property
    def profile_segment_bytes(self) -> int:
        """Bytes of the current profile segment (0 without profiles)."""
        store = self._profile_store
        return store.total_bytes if store is not None else 0

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def from_suggester(
        cls, suggester: PQSDA, n_workers: int = 2, **kwargs
    ) -> "SuggestWorkerPool":
        """Pool serving the same representation as a built *suggester*.

        A profile-bearing suggester's store is packed into the shared
        profile plane (see :mod:`repro.serve.profile_plane`), so pooled
        personalized rankings stay bit-identical to the single-process
        path; pass ``profiles=None`` in *kwargs* to explicitly serve it
        unpersonalized instead.
        """
        kwargs.setdefault("profiles", suggester.profiles)
        return cls(
            suggester.expander,
            suggester.config,
            multibipartite=suggester.representation,
            n_workers=n_workers,
            **kwargs,
        )

    # -- request path ------------------------------------------------------------

    def _route(self, query: str) -> int:
        """Stable query-hash routing: repeats hit the same worker's cache.

        Sharded pools compose the same crc32 hash with the shard map:
        the query's home shard picks the worker stripe that eagerly
        attached it, so nearly every request is served intra-shard (a
        walk only spills when its graph neighbourhood crosses shards).
        """
        normalized = normalize_query(query)
        crc = zlib.crc32(normalized.encode("utf-8"))
        if self._plan is None:
            return crc % self._n_workers
        return _shard_route(
            self._plan.shard_of(normalized),
            crc,
            self._n_workers,
            self._plan.n_shards,
        )

    def _personalizes(self, user_id: str | None) -> bool:
        """Whether workers would Borda-fuse a request of *user_id*.

        Mirrors the worker-side gate in ``PQSDA.suggest`` exactly
        (personalization on, profile plane attached, user profiled), so
        the parent's hot tier only answers requests whose worker result
        would equal the unpersonalized precomputed ranking.
        """
        return (
            user_id is not None
            and self._config.personalize
            and user_id in self._profiled_users
        )

    def suggest_many(
        self,
        requests: Sequence[SuggestRequest],
        return_errors: bool = False,
    ) -> list:
        """Suggestions for *requests*, in order (``suggest_batch`` semantics).

        Context-free requests whose query sits in the hot table are
        answered O(1) in this process; the rest are grouped by route and
        sent as one envelope per worker (one reply envelope comes back
        per batch).  Thread-safe and genuinely concurrent: overlapping
        calls from different threads dispatch independently and each
        waits only on its own batch — the reply-dispatcher thread
        correlates envelopes by batch id, so one slow batch never stalls
        another caller.

        Error semantics: with the default ``return_errors=False`` a
        worker-side exception re-raises here with the worker traceback
        attached (first error wins) — the single-caller behavior.  With
        ``return_errors=True`` each failed request's slot carries a
        :class:`SuggestError` instead, and every sibling result that the
        batch did compute is returned — the per-request contract the HTTP
        front-end maps to per-request 500s.  A dead worker raises
        ``RuntimeError`` naming it instead of a generic timeout.  Reply
        envelopes from a previously timed-out batch are drained by
        batch-id mismatch, so a timeout cannot corrupt subsequent calls.
        """
        requests = list(requests)
        if not requests:
            return []
        if self._closed:
            raise RuntimeError("pool is closed")
        self._m_requests.inc(len(requests))
        results: list = [None] * len(requests)
        hot = self._hot
        by_worker: dict[int, list[int]] = {}
        hot_hits = 0
        for position, request in enumerate(requests):
            # The hot entry was precomputed without a context and
            # without personalization; the ranking is k- and
            # timestamp-independent (timestamps only weight context
            # records), so no-context hits of any k are exact —
            # *except* for profiled users, whose worker-side ranking
            # is Borda-fused with their preference scores.  A hot hit
            # for them would silently drop the fusion, so profiled
            # requests always take the worker path.  (Shed tiers don't
            # gate hot hits: a hit is O(1) either way, and its full
            # ranking's head equals — or beats — any degraded tier's.)
            if (
                hot is not None
                and not request.context
                and not self._personalizes(request.user_id)
            ):
                ranking = hot.lookup(normalize_query(request.query))
                if ranking is not None:
                    results[position] = ranking[: request.k]
                    hot_hits += 1
                    continue
            by_worker.setdefault(
                self._route(request.query), []
            ).append(position)
        if hot_hits:
            with self._pending_lock:
                self._hot_hits_total += hot_hits
            self._m_hot_hits.inc(hot_hits)
        if not by_worker:
            return results
        outstanding = sum(len(p) for p in by_worker.values())
        pending = _PendingBatch(by_worker, outstanding)
        with self._pending_lock:
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            self._pending[batch_id] = pending
        self._m_depth.inc(outstanding)
        try:
            for worker_id, positions in by_worker.items():
                envelope = [
                    _encode_request(requests[position])
                    for position in positions
                ]
                self._m_batch_size.observe(len(envelope))
                self._request_queues[worker_id].put(
                    ("batch", batch_id, envelope)
                )
            deadline = time.monotonic() + self._ack_timeout
            while not pending.event.is_set():
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    missing = pending.expected - set(pending.replies)
                    raise TimeoutError(
                        f"{len(missing)} worker batch replies "
                        f"({pending.outstanding} requests) outstanding "
                        f"after {self._ack_timeout:.0f}s"
                    )
                if not pending.event.wait(timeout=min(remaining, 1.0)):
                    # A dead worker can never reply — report it by
                    # name instead of timing out anonymously.
                    self._check_workers_alive()
            for worker_id, positions in by_worker.items():
                replies = pending.replies[worker_id]
                for position, (result, error) in zip(positions, replies):
                    if error is None:
                        results[position] = result
                    elif return_errors:
                        results[position] = SuggestError(worker_id, error)
                    else:
                        raise RuntimeError(
                            f"worker {worker_id} failed:\n{error}"
                        )
            return results
        finally:
            # Deregister (late envelopes for this batch drain as stale)
            # and settle the depth gauge exactly: whatever the dispatcher
            # never drained (timeout/error path) comes off here, nothing
            # else — the dispatcher and this finally split the decrement
            # under the same lock, so they can never both count a reply.
            with self._pending_lock:
                self._pending.pop(batch_id, None)
                undrained = pending.outstanding
                pending.outstanding = 0
            if undrained:
                self._m_depth.dec(undrained)

    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context=(),
        timestamp: float = 0.0,
    ) -> list[str]:
        """Single-request convenience over :meth:`suggest_many`."""
        request = SuggestRequest(
            query=query,
            k=k,
            user_id=user_id,
            context=tuple(context),
            timestamp=timestamp,
        )
        return self.suggest_many([request])[0]

    # -- generation handshake ----------------------------------------------------

    def publish_plane(
        self,
        expander: RandomWalkExpander,
        multibipartite=None,
        touched=None,
        epoch_id: int | None = None,
        hot_queries: Sequence[str] | None = None,
    ) -> None:
        """Publish the next generation and swap every worker onto it.

        Shares *expander*'s matrices as a fresh segment, sends an in-band
        swap message down each worker's request queue (processed strictly
        between requests — no torn views), waits for every worker's ack,
        and only then unlinks the superseded segment.  *touched* flows
        into each worker's targeted cache invalidation (``None`` flushes
        the caches wholesale).

        The hot-query table is rebuilt against the new generation —
        from *hot_queries* when given, else from the pool's stored head
        list — packed into the new segment, round-trip verified, and
        swapped in the same reference assignment as the segment, so no
        request ever gets a hot answer from a superseded generation after
        the swap completes.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        with self._control_lock:
            generation = self._generation + 1
            if epoch_id is None:
                epoch_id = generation
            publish_multibipartite = (
                multibipartite
                if multibipartite is not None
                else self._multibipartite
            )
            if hot_queries is not None:
                hot_queries = list(hot_queries)
            else:
                hot_queries = self._hot_queries
            hot_table = self._compute_hot_table(
                expander, publish_multibipartite, hot_queries
            )
            if self._plan is not None:
                new_slices = build_shard_slices(
                    expander.matrices, self._plan, publish_multibipartite
                )
                new_stores = self._publish_shard_stores(
                    new_slices,
                    epoch_id=epoch_id,
                    hot_table=hot_table,
                    multibipartite=publish_multibipartite,
                )
                new_hot = self._verified_shard_hot(new_stores, hot_table)
                payload = ShardedPlaneHandle(
                    plan=self._plan,
                    metas={
                        shard_id: store.meta
                        for shard_id, store in new_stores.items()
                    },
                    n_workers=self._n_workers,
                )
                cleanup = list(new_stores.values())
            else:
                new_store = SharedMatrixStore.publish(
                    expander.matrices,
                    expander,
                    publish_multibipartite,
                    epoch_id=epoch_id,
                    prefix=self._prefix,
                    hot_table=hot_table,
                )
                new_hot = _verified_hot_table(new_store, hot_table)
                payload = new_store.meta
                cleanup = [new_store]
            touched_payload = (
                frozenset(touched) if touched is not None else None
            )
            for request_queue in self._request_queues:
                request_queue.put(
                    ("swap", payload, generation, touched_payload)
                )
            self._await_swap_acks(generation, cleanup)
            # Every worker acked: nobody can still be serving from the old
            # segment(s), so removing them is safe now and not a moment
            # before.  The hot table swaps with the store: answers served
            # after this point come from the new generation's entries.
            if self._plan is not None:
                old_stores = list(self._shard_stores.values())
                self._shard_stores = new_stores
                self._slices = new_slices
                self._multibipartite = publish_multibipartite
            else:
                old_stores = [self._store]
                self._store = new_store
            self._hot = new_hot
            self._hot_queries = hot_queries
            self._generation = generation
            self._m_generations.inc()
            for old_store in old_stores:
                old_store.unlink()
                old_store.close()

    def _await_swap_acks(self, generation: int, cleanup: list) -> None:
        """Collect one ``ack`` per worker for *generation*.

        On timeout or any worker-side error the freshly published
        store(s) in *cleanup* are unlinked before raising, so a failed
        publish leaves the pool serving the previous generation with
        nothing leaked.
        """
        acked: set[int] = set()
        errors: list[str] = []
        deadline = time.monotonic() + self._ack_timeout
        while len(acked) < self._n_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                for store in cleanup:
                    store.unlink()
                    store.close()
                raise TimeoutError(
                    f"only {len(acked)}/{self._n_workers} workers acked "
                    f"generation {generation} within "
                    f"{self._ack_timeout:.0f}s"
                )
            try:
                kind, worker_id, gen, info = self._ack_queue.get(
                    timeout=remaining
                )
            except queue_module.Empty:
                continue
            if kind != "ack" or gen != generation:  # pragma: no cover
                continue
            acked.add(worker_id)
            if info.get("error"):
                errors.append(f"worker {worker_id}: {info['error']}")
            else:
                self._m_swap.observe(info["swap_seconds"])
        if errors:
            for store in cleanup:
                store.unlink()
                store.close()
            raise RuntimeError(
                "generation swap failed:\n" + "\n".join(errors)
            )

    def publish_shard(
        self,
        piece: ShardSlice,
        touched=None,
        epoch_id: int | None = None,
        multibipartite=None,
    ) -> None:
        """Publish ONE shard's next generation and swap every worker onto it.

        The per-shard half of the generation handshake: a delta that
        touched only shard *piece.shard_id* repacks that shard's segment,
        sends an ``sswap`` down each worker's request queue (workers
        remap just that shard — every other shard's views, the hot
        entries of other shards and the profile plane are untouched), and
        unlinks the superseded shard segment after all acks.  *touched*
        drives the workers' targeted cache invalidation exactly like a
        full publish.

        Per-shard publishes must keep the shard's query set: new queries
        renumber the global ordinal space, so deltas carrying them take
        :meth:`publish_plane` / :meth:`publish_epoch` instead.  The
        shard's hot entries are recomputed against the updated plane so a
        hot hit can never disagree with the worker path.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if self._plan is None:
            raise RuntimeError("pool is not sharded; use publish_plane")
        shard_id = piece.shard_id
        current = self._slices.get(shard_id)
        if current is not None and current.queries != piece.queries:
            raise ValueError(
                "per-shard publish cannot change the shard's query set; "
                "publish a full plane instead"
            )
        with self._control_lock:
            generation = self._generation + 1
            if epoch_id is None:
                epoch_id = generation
            representation = (
                multibipartite
                if multibipartite is not None
                else self._multibipartite
            )
            hot_partition = None
            if self._hot_queries:
                homed = [
                    query
                    for query in self._hot_queries
                    if self._plan.shard_of(query) == shard_id
                ]
                if homed:
                    updated = dict(self._slices)
                    updated[shard_id] = piece
                    hot_partition = self._compute_hot_table(
                        ShardedExpander(self._plan, slices=updated),
                        representation,
                        homed,
                    )
            new_store = SharedShardStore.publish(
                piece,
                epoch_id=epoch_id,
                prefix=f"{self._prefix}-s",
                term_bipartite=(
                    representation.bipartite("T")
                    if representation is not None
                    else None
                ),
                hot_table=hot_partition,
            )
            new_hot = _verified_hot_table(new_store, hot_partition)
            touched_payload = (
                frozenset(touched) if touched is not None else None
            )
            for request_queue in self._request_queues:
                request_queue.put(
                    ("sswap", new_store.meta, generation, touched_payload)
                )
            self._await_swap_acks(generation, [new_store])
            old_store = self._shard_stores[shard_id]
            self._shard_stores[shard_id] = new_store
            self._slices[shard_id] = piece
            if isinstance(self._hot, _ShardedHotView):
                self._hot.replace(shard_id, new_hot)
            self._generation = generation
            self._m_generations.inc()
            self._m_shard_swaps.inc()
            self._registry.counter(
                "serve.shard.swaps", labels={"shard": str(shard_id)}
            ).inc()
            self._registry.gauge(
                "serve.shard.segment_bytes", labels={"shard": str(shard_id)}
            ).set(new_store.total_bytes)
            old_store.unlink()
            old_store.close()

    def publish_profiles(
        self,
        profiles: UserProfileStore | ArrayProfileStore | ProfileArrays,
        generation: int | None = None,
    ) -> None:
        """Publish the next profile generation and swap every worker onto it.

        Same handshake shape as :meth:`publish_plane`, over the profile
        plane: the new generation is packed into a fresh segment, a
        ``pswap`` message goes down each worker's request queue (processed
        strictly between requests — no torn profile views), and the
        superseded profile segment is unlinked only after every worker
        acks.  On ack errors or timeout the new segment is unlinked and
        the pool keeps serving the old generation.

        A pool started without profiles can be upgraded by a first
        ``publish_profiles`` call (workers bind the store and start
        Borda-fusing profiled requests; *config.personalize* must be on
        for the fusion gate to open).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        with self._control_lock:
            if generation is None:
                generation = self._profile_generation + 1
            arrays = _profile_arrays(profiles)
            new_store = SharedProfileStore.publish(
                arrays, prefix=self._prefix, generation=generation
            )
            for request_queue in self._request_queues:
                request_queue.put(("pswap", new_store.meta, generation))
            acked: set[int] = set()
            errors: list[str] = []
            deadline = time.monotonic() + self._ack_timeout
            while len(acked) < self._n_workers:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    new_store.unlink()
                    new_store.close()
                    raise TimeoutError(
                        f"only {len(acked)}/{self._n_workers} workers acked "
                        f"profile generation {generation} within "
                        f"{self._ack_timeout:.0f}s"
                    )
                try:
                    kind, worker_id, gen, info = self._ack_queue.get(
                        timeout=remaining
                    )
                except queue_module.Empty:
                    continue
                if kind != "pswap_ack" or gen != generation:
                    continue  # pragma: no cover - defensive
                acked.add(worker_id)
                if info.get("error"):
                    errors.append(f"worker {worker_id}: {info['error']}")
                else:
                    self._m_swap.observe(info["swap_seconds"])
            if errors:
                new_store.unlink()
                new_store.close()
                raise RuntimeError(
                    "profile generation swap failed:\n" + "\n".join(errors)
                )
            # Every worker acked: nobody can still be scoring from the
            # old profile segment, so removing it is safe now.
            old_store = self._profile_store
            self._profile_store = new_store
            self._profile_generation = generation
            self._profiled_users = frozenset(arrays.users)
            self._m_profile_swaps.inc()
            self._m_profile_users.set(len(arrays.users))
            if old_store is not None:
                old_store.unlink()
                old_store.close()

    def publish_epoch(self, epoch) -> None:
        """Swap the pool onto a streaming :class:`~repro.stream.epoch.Epoch`.

        With ``hot_top`` configured, the head list is re-extracted from
        the epoch's cumulative log (traffic drifts; yesterday's head is
        not today's) before the table is rebuilt and swapped.  An epoch
        carrying a folded profile generation (``epoch.profiles`` — see
        :class:`repro.stream.ingest.LogIngestor`) additionally rides a
        profile swap after the matrix swap, so click feedback reaches the
        workers' scorers through the same epoch machinery.

        Sharded pools take the per-shard fast path when the epoch carries
        ``shard_updates`` under the same plan (the streaming layer
        produces them for deltas that add no queries): each touched
        shard's segment is republished through :meth:`publish_shard` and
        every untouched shard's segment — and hot partition — survives
        as-is.  Epochs without per-shard updates (new queries, plan
        mismatch, unsharded ingestion) fall back to the full swap.
        """
        hot_queries = None
        if self._hot_top > 0:
            hot_queries = epoch.head_queries(self._hot_top)
        shard_updates = getattr(epoch, "shard_updates", None)
        shard_plan = getattr(epoch, "shard_plan", None)
        if (
            self._plan is not None
            and shard_updates is not None
            and shard_plan == self._plan
            and hot_queries is None
        ):
            for shard_id in sorted(shard_updates):
                self.publish_shard(
                    shard_updates[shard_id],
                    touched=epoch.touched_queries,
                    epoch_id=epoch.epoch_id,
                    multibipartite=epoch.multibipartite,
                )
            self._multibipartite = epoch.multibipartite
        else:
            self.publish_plane(
                epoch.expander,
                multibipartite=epoch.multibipartite,
                touched=epoch.touched_queries,
                epoch_id=epoch.epoch_id,
                hot_queries=hot_queries,
            )
        profiles = getattr(epoch, "profiles", None)
        if profiles is not None:
            self.publish_profiles(profiles)

    def attach_epochs(self, manager) -> None:
        """Republish to the workers after every epoch-manager publish."""
        manager.subscribe(self.publish_epoch)

    # -- introspection -----------------------------------------------------------

    def _collect_stats_payloads(self) -> dict[int, dict]:
        """One stats round-trip to every worker (serialized by caller)."""
        token = self._next_token
        self._next_token += 1
        for request_queue in self._request_queues:
            request_queue.put(("stats", token))
        payloads: dict[int, dict] = {}
        deadline = time.monotonic() + self._ack_timeout
        while len(payloads) < self._n_workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"only {len(payloads)}/{self._n_workers} stats replies "
                    f"within {self._ack_timeout:.0f}s"
                )
            try:
                kind, worker_id, got_token, payload = self._ack_queue.get(
                    timeout=remaining
                )
            except queue_module.Empty:
                continue
            if kind != "stats" or got_token != token:  # pragma: no cover
                continue
            payloads[worker_id] = payload
        return payloads

    def stats(self) -> PoolStats:
        """Live per-worker counters, one round-trip to every worker."""
        if self._closed:
            raise RuntimeError("pool is closed")
        with self._control_lock:
            payloads = self._collect_stats_payloads()
        workers = tuple(
            WorkerStats(
                worker_id=worker_id,
                pid=payload["pid"],
                requests=payload["requests"],
                busy_seconds=payload["busy_seconds"],
                uptime_seconds=payload["uptime_seconds"],
                qps=(
                    payload["requests"] / payload["uptime_seconds"]
                    if payload["uptime_seconds"] > 0
                    else 0.0
                ),
                generation=payload["generation"],
                epoch_id=payload["epoch_id"],
                rss_kb=payload["rss_kb"],
                shares_memory=payload["shares_memory"],
                cache=CacheStats(**payload["cache"]),
                profile_generation=payload.get("profile_generation", 0),
                profile_users=payload.get("profile_users", 0),
                profile_shares_memory=payload.get(
                    "profile_shares_memory", True
                ),
                spill=payload.get("spill"),
            )
            for worker_id, payload in sorted(payloads.items())
        )
        if self._store is not None:
            epoch_id = self._store.meta.epoch_id
        else:
            epoch_id = max(self.shard_epoch_ids.values())
        return PoolStats(
            n_workers=self._n_workers,
            generation=self._generation,
            epoch_id=epoch_id,
            segment_bytes=self.segment_bytes,
            workers=workers,
            hot_entries=self.hot_entries,
            hot_hits=self._hot_hits_total,
            profile_users=len(self._profiled_users),
            profile_generation=self._profile_generation,
            profile_segment_bytes=self.profile_segment_bytes,
            n_shards=self.n_shards,
            shard_segment_bytes=tuple(self.shard_segment_bytes.values()),
            shard_epoch_ids=tuple(self.shard_epoch_ids.values()),
        )

    def merged_metrics(self) -> dict:
        """Pool + per-worker metric snapshots as one deterministic view.

        Worker metrics carry a ``worker=<id>`` label; pool-level metrics
        (queue depth, request counter, attach/swap histograms) come from
        the pool's own registry.  Entries are sorted by (name, labels),
        matching :meth:`~repro.obs.registry.MetricsRegistry.snapshot`.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        with self._control_lock:
            payloads = self._collect_stats_payloads()
        merged: list[dict] = []
        for worker_id, payload in sorted(payloads.items()):
            for entry in payload["snapshot"]["metrics"]:
                entry = dict(entry)
                labels = dict(entry.get("labels", {}))
                labels["worker"] = str(worker_id)
                entry["labels"] = labels
                merged.append(entry)
        if self._registry is not NULL_REGISTRY:
            merged.extend(self._registry.snapshot()["metrics"])
        merged.sort(
            key=lambda entry: (
                entry["name"],
                sorted(entry.get("labels", {}).items()),
            )
        )
        return {"metrics": merged}

    # -- lifecycle ---------------------------------------------------------------

    def close(self, join_timeout: float = 30.0) -> None:
        """Stop the workers and unlink the current segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for request_queue in self._request_queues:
            try:
                request_queue.put(("stop",))
            except Exception:  # pragma: no cover - queue already broken
                pass
        for process in self._workers:
            process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=5.0)
        self._dispatcher_stop.set()
        if self._dispatcher is not None and self._dispatcher.is_alive():
            self._dispatcher.join(timeout=5.0)
        if self._store is not None:
            self._store.unlink()
            self._store.close()
        for store in self._shard_stores.values():
            store.unlink()
            store.close()
        if self._profile_store is not None:
            self._profile_store.unlink()
            self._profile_store.close()

    def __enter__(self) -> "SuggestWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
