"""Zero-copy shared-memory publication of the user-profile plane.

The matrix plane (:mod:`repro.serve.shm`) scales the *diversification*
pipeline across workers; this module does the same for the paper's
*personalization* layer.  One :class:`SharedProfileStore` owns a single
``multiprocessing`` shared-memory segment holding everything
``preference_score`` (Eq. 31) touches for every profiled user:

* the ``theta`` ``(D, K)`` profile matrix (Eq. 30) plus the per-row
  Dirichlet concentration (``theta_weight``) that lets click feedback
  fold into new generations incrementally;
* the per-user topic-word counts as one CSR-style block array
  (``counts.indptr`` / ``counts.gids`` / ``counts.data``) — the sparse
  state ``topic_word_distribution`` scatters dense per lookup;
* the learned ``beta`` ``(K, W)`` hyperparameters;
* the user-id vocab blob in document order — **sorted** order, since
  ``build_corpus`` orders documents by user id — so attached stores
  binary-search it per lookup;
* the word vocab blob (the backoff tokenization vocabulary); and
* optionally the per-user ``tau`` Beta time parameters.

Workers attach an :class:`AttachedProfilePlane` and get a read-only
:class:`~repro.personalize.profiles.ArrayProfileStore` whose numeric
arrays are views into the segment (``np.shares_memory`` holds for every
payload; the per-worker cost is the decoded vocabularies).  Scoring
through the attached store is bit-identical to the single-process
model-backed path, so Borda-fused pooled rankings equal the
``PersonalizedSuggester`` rankings byte for byte.

Layout and lifecycle follow the :class:`~repro.serve.shm.SharedMatrixStore`
conventions: 64-byte array alignment, a picklable manifest
(:class:`SharedProfileMeta`) as the only per-generation IPC payload, the
publisher as the sole party that ever calls :meth:`~SharedProfileStore.unlink`
(after every worker acks moving off the generation — the pool's
``pswap`` handshake), and ``untrack=True`` for attachers outside the
publisher's ``multiprocessing`` tree.
"""

from __future__ import annotations

import gc
import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.personalize.profiles import ArrayProfileStore, ProfileArrays
from repro.serve.shm import (
    _ALIGNMENT,
    _ArraySpec,
    _decode_vocab,
    _encode_vocab,
    _unregister_from_tracker,
)

__all__ = [
    "AttachedProfilePlane",
    "SharedProfileMeta",
    "SharedProfileStore",
    "attach_profiles",
]


@dataclass(frozen=True)
class SharedProfileMeta:
    """Picklable manifest of one published profile generation.

    This is the only thing that crosses the process boundary per profile
    generation: workers attach the named segment and rebuild an
    :class:`~repro.personalize.profiles.ArrayProfileStore` from the array
    specs.
    """

    segment: str
    arrays: dict[str, _ArraySpec]
    n_users: int
    n_topics: int
    n_words: int
    generation: int
    total_bytes: int

    @property
    def has_tau(self) -> bool:
        """Whether per-user Beta time parameters were published."""
        return "profile.tau" in self.arrays


class SharedProfileStore:
    """Publisher-side owner of one profile generation's shared segment.

    Build one with :meth:`publish`; hand :attr:`meta` to workers; call
    :meth:`unlink` exactly once when every attacher has acked moving off
    this generation (the pool's profile-swap handshake enforces that),
    then :meth:`close`.
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, meta: SharedProfileMeta
    ) -> None:
        self._segment = segment
        self._meta = meta
        self._unlinked = False

    @classmethod
    def publish(
        cls,
        arrays: ProfileArrays,
        prefix: str = "pqsda",
        generation: int | None = None,
    ) -> "SharedProfileStore":
        """Copy one profile generation into a fresh segment.

        *generation* defaults to the arrays' own ordinal.  The segment
        name embeds the pid, a random token and the generation, so
        concurrent publishers (and generations) never collide; a ``-p``
        marker keeps profile segments distinguishable from matrix
        segments under the same prefix.
        """
        if generation is None:
            generation = arrays.generation
        users_blob, users_offsets = _encode_vocab(list(arrays.users))
        words_blob, words_offsets = _encode_vocab(list(arrays.words))
        plan: list[tuple[str, np.ndarray]] = [
            ("profile.theta", np.ascontiguousarray(arrays.theta)),
            (
                "profile.theta_weight",
                np.ascontiguousarray(arrays.theta_weight),
            ),
            ("profile.beta", np.ascontiguousarray(arrays.beta)),
            (
                "profile.counts.indptr",
                np.ascontiguousarray(arrays.counts_indptr),
            ),
            ("profile.counts.gids", np.ascontiguousarray(arrays.counts_gids)),
            ("profile.counts.data", np.ascontiguousarray(arrays.counts)),
            ("profile.users.blob", users_blob),
            ("profile.users.offsets", users_offsets),
            ("profile.words.blob", words_blob),
            ("profile.words.offsets", words_offsets),
        ]
        if arrays.tau is not None:
            plan.append(("profile.tau", np.ascontiguousarray(arrays.tau)))
        specs: dict[str, _ArraySpec] = {}
        cursor = 0
        for name, array in plan:
            if array.nbytes == 0:
                # Empty arrays view offset 0 — never past the buffer end.
                specs[name] = _ArraySpec(
                    offset=0,
                    dtype=str(array.dtype),
                    shape=tuple(int(d) for d in array.shape),
                )
                continue
            cursor = -(-cursor // _ALIGNMENT) * _ALIGNMENT
            specs[name] = _ArraySpec(
                offset=cursor,
                dtype=str(array.dtype),
                shape=tuple(int(d) for d in array.shape),
            )
            cursor += array.nbytes
        total = max(cursor, 1)
        name = (
            f"{prefix}-{os.getpid()}-{secrets.token_hex(4)}-p{generation}"
        )
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=total
        )
        for plan_name, array in plan:
            if array.nbytes == 0:
                continue
            spec = specs[plan_name]
            view = np.ndarray(
                spec.shape,
                dtype=spec.dtype,
                buffer=segment.buf,
                offset=spec.offset,
            )
            view[...] = array
        meta = SharedProfileMeta(
            segment=name,
            arrays=specs,
            n_users=arrays.n_users,
            n_topics=arrays.n_topics,
            n_words=arrays.n_words,
            generation=generation,
            total_bytes=total,
        )
        return cls(segment, meta)

    @property
    def meta(self) -> SharedProfileMeta:
        """The picklable manifest workers attach from."""
        return self._meta

    @property
    def segment_name(self) -> str:
        """The shared-memory segment name (a ``/dev/shm`` entry on Linux)."""
        return self._meta.segment

    @property
    def total_bytes(self) -> int:
        """Bytes held by the segment (counted once however many attach)."""
        return self._meta.total_bytes

    @property
    def generation(self) -> int:
        """The published profile generation ordinal."""
        return self._meta.generation

    def unlink(self) -> None:
        """Remove the segment from the system (idempotent)."""
        if not self._unlinked:
            self._unlinked = True
            self._segment.unlink()

    def close(self) -> None:
        """Drop this process's mapping (the segment itself needs unlink)."""
        self._segment.close()


class AttachedProfilePlane:
    """Worker-side read-only profile scorer over one published generation.

    Attributes:
        store: :class:`~repro.personalize.profiles.ArrayProfileStore`
            whose numeric arrays are read-only views into the shared
            segment — scoring is bit-identical to the model-backed store
            the arrays were extracted from.

    Pass ``untrack=True`` only when attaching from a process with its own
    ``resource_tracker`` (launched outside the publisher's
    ``multiprocessing`` tree); in-tree attachers — pool workers included —
    share the publisher's tracker and must leave it off (see
    :func:`repro.serve.shm._unregister_from_tracker`).
    """

    def __init__(
        self, meta: SharedProfileMeta, untrack: bool = False
    ) -> None:
        self._meta = meta
        self._segment = shared_memory.SharedMemory(name=meta.segment)
        if untrack:
            _unregister_from_tracker(self._segment)
        self._closed = False

        def view(name: str) -> np.ndarray:
            spec = meta.arrays[name]
            array = np.ndarray(
                spec.shape,
                dtype=spec.dtype,
                buffer=self._segment.buf,
                offset=spec.offset,
            )
            array.flags.writeable = False
            return array

        arrays = ProfileArrays(
            users=tuple(
                _decode_vocab(
                    view("profile.users.blob"),
                    view("profile.users.offsets"),
                )
            ),
            theta=view("profile.theta"),
            theta_weight=view("profile.theta_weight"),
            beta=view("profile.beta"),
            counts_indptr=view("profile.counts.indptr"),
            counts_gids=view("profile.counts.gids"),
            counts=view("profile.counts.data"),
            words=tuple(
                _decode_vocab(
                    view("profile.words.blob"),
                    view("profile.words.offsets"),
                )
            ),
            tau=view("profile.tau") if meta.has_tau else None,
            generation=meta.generation,
        )
        self.store = ArrayProfileStore(arrays)

    @property
    def meta(self) -> SharedProfileMeta:
        """The manifest this plane attached from."""
        return self._meta

    @property
    def generation(self) -> int:
        """The attached profile generation ordinal."""
        return self._meta.generation

    def shares_memory(self) -> bool:
        """True when every numeric payload is a view into the segment."""
        base = np.ndarray(
            (self._meta.total_bytes,),
            dtype=np.uint8,
            buffer=self._segment.buf,
        )
        arrays = self.store.arrays
        payloads = [
            arrays.theta,
            arrays.theta_weight,
            arrays.beta,
            arrays.counts_indptr,
            arrays.counts_gids,
            arrays.counts,
        ]
        if arrays.tau is not None:
            payloads.append(arrays.tau)
        return all(
            payload.nbytes == 0 or np.shares_memory(base, payload)
            for payload in payloads
        )

    def close(self) -> None:
        """Release the mapping (views must no longer be reachable).

        Drops the store reference, collects, then closes; if foreign
        references still pin the buffer the close is deferred to process
        exit rather than raising mid-swap.
        """
        if self._closed:
            return
        self._closed = True
        self.store = None
        gc.collect()
        try:
            self._segment.close()
        except BufferError:  # views still referenced elsewhere
            pass


def attach_profiles(
    meta: SharedProfileMeta, untrack: bool = False
) -> AttachedProfilePlane:
    """Attach a published profile generation (convenience wrapper)."""
    return AttachedProfilePlane(meta, untrack=untrack)
