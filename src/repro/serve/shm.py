"""Zero-copy shared-memory publication of the full-graph serving plane.

One :class:`SharedMatrixStore` owns a single ``multiprocessing``
shared-memory segment holding every array a suggest worker needs to serve
against one representation generation:

* the CSR parts (``indptr``/``indices``/``data``) of each bipartite's
  incidence ``W^X`` and gram ``W^X W^{X⊤}`` — everything
  :meth:`~repro.graphs.matrices.BipartiteMatrices.restrict` touches on the
  per-request fast path;
* the expander's factored walk stacks (forward/backward), published
  verbatim so workers skip the per-process re-normalization;
* the query vocabulary (one UTF-8 blob plus an offsets array) that
  reconstructs the row ordering and the query -> ordinal index;
* optionally the query-term adjacency in both directions plus the term
  vocabulary, which powers the unseen-query term backoff without shipping
  the Python-dict :class:`~repro.graphs.bipartite.Bipartite`;
* optionally a precomputed **hot-query table** (:class:`SharedHotTable`):
  a hash-sorted ``query -> k suggestions`` mapping for the head of the
  traffic distribution, packed as a 64-bit hash array, the hot query
  strings (for exact-match collision rejection), per-entry offsets into a
  suggestion-id array, and one deduplicated suggestion-string blob.  The
  pool's parent answers hot hits O(1) from this table without touching a
  worker queue.

Workers call :func:`attach` and get an :class:`AttachedPlane`: read-only
numpy views over the segment, wrapped into ``csr_matrix`` objects via the
validation-free :func:`~repro.graphs.matrices.csr_from_parts` assembly —
no pickling, no per-worker duplication; ``np.shares_memory`` against the
segment buffer holds for every matrix payload (the per-worker cost is the
decoded vocabulary and the dict index, both O(n_queries) strings).

Metadata travels separately as a small picklable :class:`SharedPlaneMeta`
(segment name + array manifest), so publishing N generations to M workers
moves matrix bytes exactly once per generation.

Lifecycle: the publisher (the pool's parent process) keeps the
:class:`SharedMatrixStore` and is the only party that ever calls
:meth:`~SharedMatrixStore.unlink`; attachers :meth:`~AttachedPlane.close`
their mapping.  Attachers outside the publisher's ``multiprocessing``
tree pass ``untrack=True`` so their own ``resource_tracker`` does not
unlink the still-published segment when they exit (see
:class:`AttachedPlane`).
"""

from __future__ import annotations

import gc
import hashlib
import os
import secrets
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory

import numpy as np
from scipy import sparse

from repro.graphs.compact import RandomWalkExpander
from repro.graphs.matrices import (
    BipartiteMatrices,
    LazyAffinities,
    _LazyTransitions,
    csr_from_parts,
)
from repro.graphs.multibipartite import BIPARTITE_KINDS
from repro.utils.text import normalize_query

__all__ = [
    "AttachedPlane",
    "SharedHotTable",
    "SharedMatrixStore",
    "SharedPlaneMeta",
    "SharedRepresentation",
    "SharedTermBipartite",
    "attach",
    "hot_hash",
]

#: Offset alignment of every array in the segment (covers float64/int64).
_ALIGNMENT = 64


@dataclass(frozen=True)
class _ArraySpec:
    """Location of one array inside the segment."""

    offset: int
    dtype: str
    shape: tuple[int, ...]

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SharedPlaneMeta:
    """Picklable manifest of one published generation.

    This is the only thing that crosses the process boundary per
    generation: workers attach the named segment and rebuild views from
    the array specs.  ``csr_shapes``/``csr_sorted`` describe the logical
    CSR matrices assembled from ``<name>.indptr/.indices/.data`` triples.
    """

    segment: str
    arrays: dict[str, _ArraySpec]
    csr_shapes: dict[str, tuple[int, int]]
    csr_sorted: dict[str, bool]
    n_queries: int
    n_terms: int
    epoch_id: int
    total_bytes: int

    @property
    def has_term_index(self) -> bool:
        """Whether the term-backoff adjacency was published."""
        return "terms.blob" in self.arrays

    @property
    def has_hot_table(self) -> bool:
        """Whether a precomputed hot-query table was published."""
        return "hot.hashes" in self.arrays

    @property
    def n_hot(self) -> int:
        """Hot-table entry count (0 when no table was published)."""
        spec = self.arrays.get("hot.hashes")
        return int(spec.shape[0]) if spec is not None else 0


def _encode_vocab(strings: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """(uint8 blob, int64 offsets) encoding of a string list."""
    encoded = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(b) for b in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return blob, offsets


def hot_hash(normalized_query: str) -> int:
    """Stable 64-bit hash keying the shared hot-query table.

    ``blake2b`` (unsalted, 8-byte digest) is process- and run-stable —
    unlike builtin ``hash`` — so the parent can binary-search a table any
    publisher packed.  Collisions are tolerated, not assumed away: the
    table stores the hot query strings and lookups reject hash matches
    whose string differs.
    """
    digest = hashlib.blake2b(
        normalized_query.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _hot_table_arrays(
    hot_table: Mapping[str, Sequence[str]],
) -> dict[str, np.ndarray]:
    """Pack a ``query -> suggestions`` mapping into segment arrays.

    Entries are sorted by (hash, query) so lookups binary-search the hash
    array; suggestion strings are deduplicated into one vocabulary blob
    with per-entry id runs.
    """
    entries = sorted(
        hot_table.items(), key=lambda item: (hot_hash(item[0]), item[0])
    )
    string_index: dict[str, int] = {}
    sugg_ids: list[int] = []
    offsets = np.zeros(len(entries) + 1, dtype=np.int64)
    for row, (_, suggestions) in enumerate(entries):
        for suggestion in suggestions:
            ordinal = string_index.setdefault(suggestion, len(string_index))
            sugg_ids.append(ordinal)
        offsets[row + 1] = len(sugg_ids)
    query_blob, query_offsets = _encode_vocab([q for q, _ in entries])
    string_blob, string_offsets = _encode_vocab(list(string_index))
    return {
        "hot.hashes": np.asarray(
            [hot_hash(query) for query, _ in entries], dtype=np.uint64
        ),
        "hot.queries.blob": query_blob,
        "hot.queries.offsets": query_offsets,
        "hot.sugg.offsets": offsets,
        "hot.sugg.ids": np.asarray(sugg_ids, dtype=np.int64),
        "hot.strings.blob": string_blob,
        "hot.strings.offsets": string_offsets,
    }


class SharedHotTable:
    """O(1) read-only lookup over the packed hot-query table.

    Keys are normalized queries; a hit returns the precomputed full
    diversified ranking (serve ``k`` suggestions as ``ranking[:k]`` —
    the ranking never depends on the request's ``k``).  Lookups hash the
    query, binary-search the sorted hash array, and verify the stored
    query string, so a hash collision degrades to a miss for the other
    query rather than a wrong answer.
    """

    def __init__(
        self,
        hashes: np.ndarray,
        queries: list[str],
        sugg_offsets: np.ndarray,
        sugg_ids: np.ndarray,
        strings: list[str],
    ) -> None:
        self._hashes = hashes
        self._queries = queries
        self._sugg_offsets = sugg_offsets
        self._sugg_ids = sugg_ids
        self._strings = strings

    def __len__(self) -> int:
        return len(self._queries)

    @property
    def queries(self) -> list[str]:
        """The hot queries, in table (hash-sorted) order."""
        return list(self._queries)

    def lookup(self, normalized_query: str) -> list[str] | None:
        """The precomputed ranking for *normalized_query*, or ``None``."""
        key = np.uint64(hot_hash(normalized_query))
        lo = int(np.searchsorted(self._hashes, key, side="left"))
        hi = int(np.searchsorted(self._hashes, key, side="right"))
        for row in range(lo, hi):
            if self._queries[row] == normalized_query:
                start = int(self._sugg_offsets[row])
                stop = int(self._sugg_offsets[row + 1])
                return [
                    self._strings[int(ordinal)]
                    for ordinal in self._sugg_ids[start:stop]
                ]
        return None

    def as_dict(self) -> dict[str, list[str]]:
        """The whole table as ``{query: ranking}`` (table order)."""
        return {
            query: self.lookup(query) for query in self._queries
        }

    @classmethod
    def _from_views(cls, view) -> "SharedHotTable":
        """Build over segment arrays fetched through *view(name)*."""
        return cls(
            view("hot.hashes"),
            _decode_vocab(
                view("hot.queries.blob"), view("hot.queries.offsets")
            ),
            view("hot.sugg.offsets"),
            view("hot.sugg.ids"),
            _decode_vocab(
                view("hot.strings.blob"), view("hot.strings.offsets")
            ),
        )


def _decode_vocab(blob: np.ndarray, offsets: np.ndarray) -> list[str]:
    raw = blob.tobytes()
    bounds = offsets.tolist()
    return [
        raw[bounds[i]:bounds[i + 1]].decode("utf-8")
        for i in range(len(bounds) - 1)
    ]


def _term_adjacency(
    bipartite, queries: list[str], query_index: Mapping[str, int]
) -> tuple[list[str], dict[str, np.ndarray], tuple[int, int]]:
    """CSR encodings of the query-term bipartite in both directions.

    Built from the authoritative :class:`Bipartite` adjacency dicts (not
    from the incidence matrix, whose column order is an internal detail),
    so the attached adapter reproduces ``queries_of``/``facet_set``
    verbatim.
    """
    terms = bipartite.facets
    term_index = {term: i for i, term in enumerate(terms)}
    # query -> term ordinals/weights, rows in query-ordinal order.
    qt_indptr = np.zeros(len(queries) + 1, dtype=np.int64)
    qt_indices: list[int] = []
    qt_data: list[float] = []
    for row, query in enumerate(queries):
        facets = bipartite.facets_of(query)
        for term in sorted(facets):
            qt_indices.append(term_index[term])
            qt_data.append(facets[term])
        qt_indptr[row + 1] = len(qt_indices)
    # term -> query ordinals/weights, rows in sorted-term order.
    tq_indptr = np.zeros(len(terms) + 1, dtype=np.int64)
    tq_indices: list[int] = []
    tq_data: list[float] = []
    for row, term in enumerate(terms):
        for query, weight in sorted(bipartite.queries_of(term).items()):
            ordinal = query_index.get(query)
            if ordinal is not None:
                tq_indices.append(ordinal)
                tq_data.append(weight)
        tq_indptr[row + 1] = len(tq_indices)
    arrays = {
        "termidx.qt.indptr": qt_indptr,
        "termidx.qt.indices": np.asarray(qt_indices, dtype=np.int64),
        "termidx.qt.data": np.asarray(qt_data, dtype=np.float64),
        "termidx.tq.indptr": tq_indptr,
        "termidx.tq.indices": np.asarray(tq_indices, dtype=np.int64),
        "termidx.tq.data": np.asarray(tq_data, dtype=np.float64),
    }
    return terms, arrays, (len(queries), len(terms))


def _pack_segment(
    plan: list[tuple[str, np.ndarray]], prefix: str, epoch_id: int
) -> tuple[shared_memory.SharedMemory, dict[str, _ArraySpec], int]:
    """Lay *plan*'s arrays into a fresh named segment, 64-byte aligned.

    Returns ``(segment, specs, total_bytes)``.  Shared by the full-plane
    store and the per-shard store so both publish through one packer.
    The segment name embeds the pid, a random token and *epoch_id*, so
    concurrent publishers (and generations) never collide.
    """
    specs: dict[str, _ArraySpec] = {}
    cursor = 0
    for name, array in plan:
        cursor = -(-cursor // _ALIGNMENT) * _ALIGNMENT
        specs[name] = _ArraySpec(
            offset=cursor,
            dtype=str(array.dtype),
            shape=tuple(int(d) for d in array.shape),
        )
        cursor += array.nbytes
    total = max(cursor, 1)
    name = f"{prefix}-{os.getpid()}-{secrets.token_hex(4)}-e{epoch_id}"
    segment = shared_memory.SharedMemory(name=name, create=True, size=total)
    for plan_name, array in plan:
        spec = specs[plan_name]
        view = np.ndarray(
            spec.shape,
            dtype=spec.dtype,
            buffer=segment.buf,
            offset=spec.offset,
        )
        view[...] = array
    return segment, specs, total


def _unregister_from_tracker(segment: shared_memory.SharedMemory) -> None:
    """Drop an attach-time ``resource_tracker`` registration.

    ``SharedMemory.__init__`` registers the name unconditionally — for
    attachers too.  An attacher running its *own* tracker (a process
    launched outside the publisher's ``multiprocessing`` tree, e.g. via
    plain ``subprocess``) would have that tracker unlink the still
    published segment when it exits; stripping the registration right
    after attach leaves lifecycle control with the publisher.  Processes
    that *share* the publisher's tracker — the same process, and every
    ``multiprocessing`` child, spawn or fork alike (POSIX children inherit
    the tracker fd) — must NOT do this: the tracker's registry is a set,
    so their unregister would strip the publisher's own registration and
    make the eventual ``unlink`` double-unregister.
    """
    try:  # pragma: no cover - trivial, but guarded across CPython versions
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


class SharedMatrixStore:
    """Publisher-side owner of one generation's shared segment.

    Build one with :meth:`publish`; hand :attr:`meta` to workers; call
    :meth:`unlink` exactly once when every attacher has acked moving off
    this generation (the pool's generation handshake enforces that), then
    :meth:`close`.
    """

    def __init__(
        self, segment: shared_memory.SharedMemory, meta: SharedPlaneMeta
    ) -> None:
        self._segment = segment
        self._meta = meta
        self._unlinked = False
        self._closed = False

    @classmethod
    def publish(
        cls,
        matrices: BipartiteMatrices,
        expander: RandomWalkExpander | None = None,
        multibipartite=None,
        epoch_id: int = 0,
        prefix: str = "pqsda",
        hot_table: Mapping[str, Sequence[str]] | None = None,
    ) -> "SharedMatrixStore":
        """Copy one generation's serving plane into a fresh segment.

        *expander* supplies the factored walk stacks (built from
        *matrices* when omitted); *multibipartite* supplies the query-term
        adjacency for the unseen-query backoff (omitted = attached planes
        serve with the backoff unavailable); *hot_table* maps head queries
        to their precomputed diversified rankings (omitted or empty = no
        hot tier in this generation).  The segment name embeds the pid, a
        random token and *epoch_id*, so concurrent publishers (and
        generations) never collide.
        """
        if matrices.gram is None:
            raise ValueError(
                "matrices must carry cached grams (build_matrices output)"
            )
        if expander is None:
            expander = RandomWalkExpander(multibipartite, matrices=matrices)
        plan: list[tuple[str, np.ndarray]] = []
        csr_shapes: dict[str, tuple[int, int]] = {}
        csr_sorted: dict[str, bool] = {}

        def add_csr(name: str, matrix: sparse.csr_matrix) -> None:
            csr_shapes[name] = (int(matrix.shape[0]), int(matrix.shape[1]))
            csr_sorted[name] = bool(matrix.has_sorted_indices)
            plan.append((f"{name}.indptr", np.ascontiguousarray(matrix.indptr)))
            plan.append(
                (f"{name}.indices", np.ascontiguousarray(matrix.indices))
            )
            plan.append((f"{name}.data", np.ascontiguousarray(matrix.data)))

        for kind in BIPARTITE_KINDS:
            add_csr(f"incidence.{kind}", matrices.incidence[kind])
            add_csr(f"gram.{kind}", matrices.gram[kind])
        forward, backward = expander.walk_stacks
        add_csr("stack.forward", forward.tocsr())
        add_csr("stack.backward", backward.tocsr())

        blob, offsets = _encode_vocab(matrices.queries)
        plan.append(("vocab.queries.blob", blob))
        plan.append(("vocab.queries.offsets", offsets))

        n_terms = 0
        if multibipartite is not None:
            terms, term_arrays, (_, n_terms) = _term_adjacency(
                multibipartite.bipartite("T"),
                matrices.queries,
                matrices.query_index,
            )
            term_blob, term_offsets = _encode_vocab(terms)
            plan.append(("terms.blob", term_blob))
            plan.append(("terms.offsets", term_offsets))
            plan.extend(term_arrays.items())

        if hot_table:
            plan.extend(_hot_table_arrays(hot_table).items())

        segment, specs, total = _pack_segment(plan, prefix, epoch_id)
        meta = SharedPlaneMeta(
            segment=segment.name,
            arrays=specs,
            csr_shapes=csr_shapes,
            csr_sorted=csr_sorted,
            n_queries=matrices.n_queries,
            n_terms=n_terms,
            epoch_id=epoch_id,
            total_bytes=total,
        )
        return cls(segment, meta)

    @property
    def meta(self) -> SharedPlaneMeta:
        """The picklable manifest workers attach from."""
        return self._meta

    @property
    def segment_name(self) -> str:
        """The shared-memory segment name (a ``/dev/shm`` entry on Linux)."""
        return self._meta.segment

    @property
    def total_bytes(self) -> int:
        """Bytes held by the segment (counted once however many attach)."""
        return self._meta.total_bytes

    def hot_table(self) -> SharedHotTable | None:
        """The packed hot-query table read from this store's own mapping.

        This is the publisher-side handle the pool parent serves hot hits
        from.  The index arrays are *snapshots* (a few KB), not views, so
        the handle never pins the segment buffer — the parent can keep
        answering from a superseded generation's table for the instant it
        takes to swap references while the old segment is being closed.
        Workers attach the same bytes zero-copy via :class:`AttachedPlane`.
        ``None`` when the generation was published without a table.
        """
        if not self._meta.has_hot_table:
            return None
        meta = self._meta
        segment = self._segment

        def snapshot(name: str) -> np.ndarray:
            spec = meta.arrays[name]
            return np.array(
                np.ndarray(
                    spec.shape,
                    dtype=spec.dtype,
                    buffer=segment.buf,
                    offset=spec.offset,
                )
            )

        return SharedHotTable._from_views(snapshot)

    def unlink(self) -> None:
        """Remove the segment from the system (idempotent)."""
        if not self._unlinked:
            self._unlinked = True
            self._segment.unlink()

    def close(self) -> None:
        """Drop this process's mapping (idempotent; unlink is separate)."""
        if not self._closed:
            self._closed = True
            self._segment.close()


class SharedTermBipartite:
    """Read-only term-side adapter over the shared query-term adjacency.

    Quacks like the slice of :class:`~repro.graphs.bipartite.Bipartite`
    the serving path touches — ``queries_of`` and ``facet_set`` — and
    reproduces the originals verbatim (same keys, same weights), so the
    term-backoff seeding is bit-identical across process boundaries.
    """

    def __init__(
        self,
        terms: list[str],
        queries: list[str],
        qt: tuple[np.ndarray, np.ndarray, np.ndarray],
        tq: tuple[np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        self._terms = terms
        self._term_index = {term: i for i, term in enumerate(terms)}
        self._queries = queries
        self._query_index = {query: i for i, query in enumerate(queries)}
        self._qt_indptr, self._qt_indices, self._qt_data = qt
        self._tq_indptr, self._tq_indices, self._tq_data = tq
        self._facet_sets: dict[str, frozenset[str]] = {}

    @property
    def facets(self) -> list[str]:
        """Term-side nodes, sorted (publish order)."""
        return list(self._terms)

    def queries_of(self, facet: str) -> dict[str, float]:
        """Query -> weight for one term (empty if the term is unknown)."""
        row = self._term_index.get(facet)
        if row is None:
            return {}
        lo, hi = int(self._tq_indptr[row]), int(self._tq_indptr[row + 1])
        return {
            self._queries[int(ordinal)]: float(weight)
            for ordinal, weight in zip(
                self._tq_indices[lo:hi], self._tq_data[lo:hi]
            )
        }

    def facet_set(self, query: str) -> frozenset[str]:
        """The terms of *query* as a memoized frozenset."""
        cached = self._facet_sets.get(query)
        if cached is None:
            row = self._query_index.get(query)
            if row is None:
                cached = frozenset()
            else:
                lo = int(self._qt_indptr[row])
                hi = int(self._qt_indptr[row + 1])
                cached = frozenset(
                    self._terms[int(t)] for t in self._qt_indices[lo:hi]
                )
            self._facet_sets[query] = cached
        return cached


@dataclass(frozen=True)
class SharedRepresentation:
    """The representation handle a worker's ``PQSDA`` serves against.

    Covers exactly what the online path asks of a
    :class:`~repro.graphs.multibipartite.MultiBipartite`: membership
    tests and the query-term bipartite for the unseen-query backoff.
    Offline operations (rebuilds, restrictions) stay with the publisher.
    """

    queries: list[str]
    query_index: dict[str, int]
    term_bipartite: SharedTermBipartite | None = None
    _query_set: frozenset[str] = field(default=frozenset(), repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_query_set", frozenset(self.queries))

    @property
    def n_queries(self) -> int:
        """Number of query nodes."""
        return len(self.queries)

    def __contains__(self, query: str) -> bool:
        return normalize_query(query) in self._query_set

    def bipartite(self, kind: str):
        """The shared query-term adapter (only ``"T"`` crosses processes)."""
        if kind != "T":
            raise KeyError(
                f"shared representations expose only the 'T' bipartite, "
                f"got {kind!r}"
            )
        if self.term_bipartite is None:
            raise KeyError(
                "term index was not published (publish with multibipartite "
                "to enable the unseen-query backoff)"
            )
        return self.term_bipartite


class AttachedPlane:
    """Worker-side read-only view of one published generation.

    Pass ``untrack=True`` only when attaching from a process with its own
    ``resource_tracker`` (launched outside the publisher's
    ``multiprocessing`` tree), so that tracker does not unlink the
    published segment at exit; every in-tree attacher — pool workers
    included — shares the publisher's tracker and must leave it off (see
    :func:`_unregister_from_tracker`).

    Attributes:
        matrices: :class:`BipartiteMatrices` whose incidence and gram CSR
            parts are views into the shared segment (affinity and
            transition are lazy derivations the hot path never touches).
        expander: Walk expander over ``matrices`` with the published
            stacks attached (views as well).
        representation: The :class:`SharedRepresentation` handle.
        hot_table: :class:`SharedHotTable` over the segment's packed
            hot-query arrays (``None`` when none was published).
    """

    def __init__(self, meta: SharedPlaneMeta, untrack: bool = False) -> None:
        self._meta = meta
        self._segment = shared_memory.SharedMemory(name=meta.segment)
        if untrack:
            _unregister_from_tracker(self._segment)
        self._closed = False

        def view(name: str) -> np.ndarray:
            spec = meta.arrays[name]
            array = np.ndarray(
                spec.shape,
                dtype=spec.dtype,
                buffer=self._segment.buf,
                offset=spec.offset,
            )
            array.flags.writeable = False
            return array

        def csr(name: str) -> sparse.csr_matrix:
            return csr_from_parts(
                view(f"{name}.data"),
                view(f"{name}.indices"),
                view(f"{name}.indptr"),
                meta.csr_shapes[name],
                sorted_indices=meta.csr_sorted[name],
            )

        queries = _decode_vocab(
            view("vocab.queries.blob"), view("vocab.queries.offsets")
        )
        query_index = {query: i for i, query in enumerate(queries)}
        incidence = {kind: csr(f"incidence.{kind}") for kind in BIPARTITE_KINDS}
        gram = {kind: csr(f"gram.{kind}") for kind in BIPARTITE_KINDS}
        self.matrices = BipartiteMatrices(
            queries=queries,
            query_index=query_index,
            incidence=incidence,
            affinity=LazyAffinities(gram),
            transition=_LazyTransitions(incidence),
            gram=gram,
        )
        term_bipartite = None
        if meta.has_term_index:
            term_bipartite = SharedTermBipartite(
                _decode_vocab(view("terms.blob"), view("terms.offsets")),
                queries,
                (
                    view("termidx.qt.indptr"),
                    view("termidx.qt.indices"),
                    view("termidx.qt.data"),
                ),
                (
                    view("termidx.tq.indptr"),
                    view("termidx.tq.indices"),
                    view("termidx.tq.data"),
                ),
            )
        self.hot_table = (
            SharedHotTable._from_views(view) if meta.has_hot_table else None
        )
        self.representation = SharedRepresentation(
            queries=queries,
            query_index=query_index,
            term_bipartite=term_bipartite,
        )
        self.expander = RandomWalkExpander(
            self.representation,
            matrices=self.matrices,
            stacks=(csr("stack.forward"), csr("stack.backward")),
        )

    @property
    def meta(self) -> SharedPlaneMeta:
        """The manifest this plane attached from."""
        return self._meta

    @property
    def epoch_id(self) -> int:
        """The generation's epoch ordinal."""
        return self._meta.epoch_id

    def shares_memory(self) -> bool:
        """True when every matrix payload is a view into the segment."""
        base = np.ndarray(
            (self._meta.total_bytes,),
            dtype=np.uint8,
            buffer=self._segment.buf,
        )
        payloads = [
            self.matrices.incidence[kind].data for kind in BIPARTITE_KINDS
        ] + [
            self.matrices.gram[kind].data for kind in BIPARTITE_KINDS
        ] + [stack.data for stack in self.expander.walk_stacks]
        return all(np.shares_memory(base, payload) for payload in payloads)

    def close(self) -> None:
        """Release the mapping (views must no longer be reachable).

        Drops this plane's references, collects, then closes; if foreign
        references still pin the buffer the close is deferred to process
        exit rather than raising mid-swap.
        """
        if self._closed:
            return
        self._closed = True
        self.matrices = None
        self.expander = None
        self.representation = None
        self.hot_table = None
        gc.collect()
        try:
            self._segment.close()
        except BufferError:  # views still referenced elsewhere
            pass


def attach(meta: SharedPlaneMeta, untrack: bool = False) -> AttachedPlane:
    """Attach a published generation (convenience over AttachedPlane)."""
    return AttachedPlane(meta, untrack=untrack)
