"""Statistical significance of per-query metric differences.

The paper reports that PQS-DA "significantly outperforms" its baselines;
this module provides the machinery to back such statements: a paired
bootstrap test (the IR-standard of Sakai / Smucker et al.) plus a paired
sign test, both over per-query (or per-session) metric values.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from math import comb

import numpy as np

from repro.utils.rng import ensure_rng

__all__ = ["PairedComparison", "paired_bootstrap", "sign_test"]


@dataclass(frozen=True, slots=True)
class PairedComparison:
    """Result of a paired significance test.

    Attributes:
        mean_a / mean_b: Mean metric of each system over the paired items.
        delta: ``mean_a − mean_b``.
        p_value: Probability of observing a delta at least this extreme
            under the null hypothesis of no difference (two-sided).
        n_pairs: Number of paired observations.
    """

    mean_a: float
    mean_b: float
    delta: float
    p_value: float
    n_pairs: int

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level *alpha*."""
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha


def _validate_pairs(
    a: Sequence[float], b: Sequence[float]
) -> tuple[np.ndarray, np.ndarray]:
    a_arr = np.asarray(a, dtype=float)
    b_arr = np.asarray(b, dtype=float)
    if a_arr.ndim != 1 or b_arr.ndim != 1:
        raise ValueError("paired samples must be 1-D sequences")
    if a_arr.size != b_arr.size:
        raise ValueError(
            f"paired samples differ in length: {a_arr.size} vs {b_arr.size}"
        )
    if a_arr.size == 0:
        raise ValueError("paired samples must be non-empty")
    return a_arr, b_arr


def paired_bootstrap(
    a: Sequence[float],
    b: Sequence[float],
    n_resamples: int = 10_000,
    seed: int | np.random.Generator | None = 0,
) -> PairedComparison:
    """Two-sided paired bootstrap test on per-item metric values.

    Resamples item indices with replacement and counts how often the mean
    difference flips sign relative to the observed difference (shifted-null
    formulation): under H0 the differences are centred at zero.
    """
    if n_resamples < 100:
        raise ValueError("n_resamples must be >= 100 for a stable p-value")
    a_arr, b_arr = _validate_pairs(a, b)
    rng = ensure_rng(seed)
    diffs = a_arr - b_arr
    observed = float(diffs.mean())
    centred = diffs - observed  # the shifted null: mean difference 0
    n = diffs.size
    indices = rng.integers(0, n, size=(n_resamples, n))
    resampled_means = centred[indices].mean(axis=1)
    extreme = np.abs(resampled_means) >= abs(observed)
    p_value = (extreme.sum() + 1.0) / (n_resamples + 1.0)
    return PairedComparison(
        mean_a=float(a_arr.mean()),
        mean_b=float(b_arr.mean()),
        delta=observed,
        p_value=float(p_value),
        n_pairs=n,
    )


def sign_test(a: Sequence[float], b: Sequence[float]) -> PairedComparison:
    """Exact two-sided paired sign test (ties dropped)."""
    a_arr, b_arr = _validate_pairs(a, b)
    diffs = a_arr - b_arr
    wins = int((diffs > 0).sum())
    losses = int((diffs < 0).sum())
    n = wins + losses
    if n == 0:
        p_value = 1.0
    else:
        k = min(wins, losses)
        tail = sum(comb(n, i) for i in range(k + 1)) / 2.0**n
        p_value = min(2.0 * tail, 1.0)
    return PairedComparison(
        mean_a=float(a_arr.mean()),
        mean_b=float(b_arr.mean()),
        delta=float(diffs.mean()),
        p_value=float(p_value),
        n_pairs=a_arr.size,
    )
