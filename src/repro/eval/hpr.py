"""Human Personalized Relevance with simulated raters (paper Sec. VI-C.2).

The paper's HPR experiment had human experts rate suggestions on a 6-point
scale over four months of real searching.  The reproduction substitutes the
:class:`~repro.synth.oracle.RaterPanel`: raters who know the test session's
true intent (as a human knows their own) and the user's long-term profile,
with bounded noise.  See DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.logs.schema import Session
from repro.synth.oracle import Oracle, RaterPanel

__all__ = ["HPRMetric"]


class HPRMetric:
    """Mean panel rating of a suggestion list for a test session."""

    def __init__(
        self,
        oracle: Oracle,
        n_raters: int = 3,
        noise_sd: float = 0.08,
        seed: int = 0,
    ) -> None:
        self._oracle = oracle
        self._panel = RaterPanel(
            oracle, n_raters=n_raters, noise_sd=noise_sd, seed=seed
        )

    def list_hpr(
        self,
        suggestions: Sequence[str],
        session: Session,
        k: int | None = None,
    ) -> float:
        """Mean rating of the top-*k* suggestions (0.0 for an empty list)."""
        items = list(suggestions[:k] if k is not None else suggestions)
        if not items:
            return 0.0
        intent = self._oracle.intent_of_session(session.session_id)
        return sum(
            self._panel.rate(s, session, intent) for s in items
        ) / len(items)
