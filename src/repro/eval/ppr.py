"""Pseudo Personalized Relevance (paper Sec. VI-C.2).

For a held-out test session, PPR of a suggested query is the cosine
similarity between the suggestion's word vector and the *high-quality
fields* (titles) of the web pages clicked in that session — a higher value
means the suggestion matches what the user actually went on to consume.  No
human involvement is required, which is why the paper uses it at scale.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.logs.schema import Session
from repro.synth.web import SyntheticWeb
from repro.utils.text import cosine_similarity_bags, term_vector

__all__ = ["PPRMetric"]


class PPRMetric:
    """PPR over the synthetic web's page titles."""

    def __init__(self, web: SyntheticWeb) -> None:
        self._web = web

    def session_field_vector(self, session: Session) -> Counter[str]:
        """Bag of title terms of the session's clicked pages.

        URLs outside the synthetic web contribute nothing (mirrors pages
        whose high-quality fields could not be fetched).
        """
        bag: Counter[str] = Counter()
        for url in session.clicked_urls:
            if url in self._web:
                bag.update(self._web.title_of(url).split())
        return bag

    def suggestion_ppr(self, suggestion: str, session: Session) -> float:
        """Cosine between the suggestion's words and the session fields."""
        return cosine_similarity_bags(
            term_vector(suggestion), self.session_field_vector(session)
        )

    def list_ppr(
        self,
        suggestions: Sequence[str],
        session: Session,
        k: int | None = None,
    ) -> float:
        """Mean PPR of the top-*k* suggestions (0.0 for an empty list)."""
        items = list(suggestions[:k] if k is not None else suggestions)
        if not items:
            return 0.0
        field_vector = self.session_field_vector(session)
        if not field_vector:
            return 0.0
        return sum(
            cosine_similarity_bags(term_vector(s), field_vector)
            for s in items
        ) / len(items)
