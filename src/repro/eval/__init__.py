"""Evaluation metrics and experiment harness (paper Sec. VI).

* :mod:`diversity <repro.eval.diversity>` — Eqs. 32-33 over clicked-page
  category paths;
* :mod:`relevance <repro.eval.relevance>` — Eq. 34 ODP-path relevance;
* :mod:`ppr <repro.eval.ppr>` — Pseudo Personalized Relevance (cosine of
  suggestion terms vs. clicked-page titles of the test session);
* :mod:`hpr <repro.eval.hpr>` — Human Personalized Relevance with the
  simulated rater panel;
* :mod:`efficiency <repro.eval.efficiency>` — Fig. 7 latency harness;
* :mod:`harness <repro.eval.harness>` — train/test splitting and per-method
  sweep drivers shared by the benchmarks.
"""

from repro.eval.diversity import DiversityMetric
from repro.eval.efficiency import EfficiencyResult, measure_latency
from repro.eval.harness import (
    TrainTestSplit,
    evaluate_personalized,
    evaluate_prequential,
    evaluate_suggester,
    split_train_test,
)
from repro.eval.hpr import HPRMetric
from repro.eval.ppr import PPRMetric
from repro.eval.relevance import RelevanceMetric

__all__ = [
    "DiversityMetric",
    "EfficiencyResult",
    "HPRMetric",
    "PPRMetric",
    "RelevanceMetric",
    "TrainTestSplit",
    "evaluate_personalized",
    "evaluate_prequential",
    "evaluate_suggester",
    "measure_latency",
    "split_train_test",
]
