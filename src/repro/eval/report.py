"""One-shot experiment report: every paper figure + significance tests.

:func:`run_report` executes the complete evaluation battery (Figs. 3-7 of
the paper plus the representation-coverage analysis) at a configurable
scale and returns a :class:`Report` whose :meth:`Report.to_markdown`
renders the tables EXPERIMENTS.md is built from.  The CLI exposes it as
``python -m repro report``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.baselines.registry import build_baseline
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.eval.diversity import DiversityMetric
from repro.eval.harness import (
    evaluate_personalized,
    evaluate_suggester,
    split_train_test,
)
from repro.eval.hpr import HPRMetric
from repro.eval.ppr import PPRMetric
from repro.eval.relevance import RelevanceMetric
from repro.eval.significance import paired_bootstrap
from repro.graphs.compact import CompactConfig
from repro.personalize.reranker import PersonalizedReranker
from repro.personalize.upm import UPMConfig
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.oracle import Oracle
from repro.synth.world import make_world
from repro.topicmodels import build_corpus, build_model
from repro.topicmodels.perplexity import evaluate_perplexity
from repro.topicmodels.zoo import MODEL_NAMES

__all__ = ["ReportConfig", "Report", "run_report"]


@dataclass(frozen=True, slots=True)
class ReportConfig:
    """Scale knobs of the report run.

    The defaults match the benchmark suite (a few minutes); the CLI's
    ``--quick`` flag shrinks everything for smoke runs.
    """

    n_users: int = 60
    mean_sessions_per_user: float = 12.0
    n_test_queries: int = 60
    n_topics: int = 10
    gibbs_iterations: int = 30
    ks: tuple[int, ...] = (1, 5, 10)
    topic_models: tuple[str, ...] = MODEL_NAMES
    seed: int = 42

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ValueError("n_users must be >= 2")
        if not self.ks:
            raise ValueError("ks must be non-empty")
        unknown = set(self.topic_models) - set(MODEL_NAMES)
        if unknown:
            raise ValueError(f"unknown topic models: {sorted(unknown)}")


@dataclass
class Report:
    """All measured series of one report run."""

    config: ReportConfig
    fig3_diversity: dict[str, dict[int, float]] = field(default_factory=dict)
    fig3_relevance: dict[str, dict[int, float]] = field(default_factory=dict)
    fig4_perplexity: dict[str, float] = field(default_factory=dict)
    fig5_diversity: dict[str, dict[int, float]] = field(default_factory=dict)
    fig5_ppr: dict[str, dict[int, float]] = field(default_factory=dict)
    fig6_hpr: dict[str, dict[int, float]] = field(default_factory=dict)
    significance: dict[str, str] = field(default_factory=dict)

    def _table(self, title: str, rows: dict[str, dict[int, float]]) -> str:
        ks = list(self.config.ks)
        out = [f"### {title}", ""]
        out.append("| method | " + " | ".join(f"k={k}" for k in ks) + " |")
        out.append("|---" * (len(ks) + 1) + "|")
        for name, curve in rows.items():
            cells = " | ".join(f"{curve.get(k, float('nan')):.3f}" for k in ks)
            out.append(f"| {name} | {cells} |")
        out.extend(["", ""])  # blank line separating the next section
        return "\n".join(out)

    def to_markdown(self) -> str:
        """Render the full report as markdown."""
        buffer = io.StringIO()
        c = self.config
        buffer.write("# PQS-DA evaluation report\n\n")
        buffer.write(
            f"Workload: {c.n_users} users x ~{c.mean_sessions_per_user:.0f} "
            f"sessions, seed {c.seed}.\n\n"
        )
        buffer.write(
            self._table("Fig. 3 — Diversity@k (diversification stage)",
                        self.fig3_diversity)
        )
        buffer.write(
            self._table("Fig. 3 — Relevance@k (diversification stage)",
                        self.fig3_relevance)
        )
        buffer.write("### Fig. 4 — predictive perplexity (lower = better)\n\n")
        buffer.write("| model | perplexity |\n|---|---|\n")
        for name, value in sorted(
            self.fig4_perplexity.items(), key=lambda p: p[1]
        ):
            buffer.write(f"| {name} | {value:.1f} |\n")
        buffer.write("\n")
        buffer.write(
            self._table("Fig. 5 — Diversity@k (after personalization)",
                        self.fig5_diversity)
        )
        buffer.write(
            self._table("Fig. 5 — PPR@k (after personalization)",
                        self.fig5_ppr)
        )
        buffer.write(self._table("Fig. 6 — HPR@k", self.fig6_hpr))
        if self.significance:
            buffer.write("### Significance (paired bootstrap)\n\n")
            for comparison, verdict in self.significance.items():
                buffer.write(f"- {comparison}: {verdict}\n")
        return buffer.getvalue()


def _per_query_metric(suggester, queries, k, metric_fn):
    """Per-query metric values (None-answers skipped), for significance."""
    values = []
    for query in queries:
        suggestions = suggester.suggest(query, k=k)
        if suggestions:
            values.append(metric_fn(query, suggestions))
        else:
            values.append(0.0)
    return values


def run_report(config: ReportConfig | None = None) -> Report:
    """Execute the full evaluation battery and return the report."""
    if config is None:
        config = ReportConfig()
    report = Report(config=config)
    ks = list(config.ks)
    max_k = max(ks)

    world = make_world(seed=0, pages_per_leaf=24)
    synthetic = generate_log(
        world,
        GeneratorConfig(
            n_users=config.n_users,
            mean_sessions_per_user=config.mean_sessions_per_user,
            click_probability=0.55,
            noise_click_probability=0.12,
            hub_click_probability=0.15,
            seed=config.seed,
        ),
    )
    oracle = Oracle(world, synthetic)
    diversity = DiversityMetric(synthetic.log, oracle)
    relevance = RelevanceMetric(oracle)
    ppr = PPRMetric(world.web)
    hpr = HPRMetric(oracle, seed=7)

    def pqsda_config(personalize: bool) -> PQSDAConfig:
        return PQSDAConfig(
            compact=CompactConfig(size=150),
            diversify=DiversifyConfig(k=max_k, candidate_pool=25),
            upm=UPMConfig(
                n_topics=config.n_topics,
                iterations=config.gibbs_iterations,
                hyperopt_every=max(config.gibbs_iterations // 3, 1),
                seed=0,
            ),
            personalize=personalize,
            personalization_weight=2.0,
        )

    # -- Fig. 3 ----------------------------------------------------------------------
    seen: set[str] = set()
    probes: list[str] = []
    for record in synthetic.log:
        if record.has_click and record.query not in seen:
            seen.add(record.query)
            probes.append(record.query)
        if len(probes) >= config.n_test_queries:
            break

    stage_systems = {
        "PQS-DA": PQSDA.build(
            synthetic.log,
            sessions=synthetic.sessions,
            config=pqsda_config(personalize=False),
        )
    }
    for name in ("FRW", "BRW", "HT", "DQS"):
        stage_systems[name] = build_baseline(name, synthetic.log)
    for name, suggester in stage_systems.items():
        result = evaluate_suggester(
            suggester, probes, ks=ks, diversity=diversity, relevance=relevance
        )
        report.fig3_diversity[name] = result["diversity"]
        report.fig3_relevance[name] = result["relevance"]

    # Significance: PQS-DA vs DQS diversity at the deepest k.
    pq_values = _per_query_metric(
        stage_systems["PQS-DA"], probes, max_k,
        lambda _, s: diversity.list_diversity(s, max_k),
    )
    dqs_values = _per_query_metric(
        stage_systems["DQS"], probes, max_k,
        lambda _, s: diversity.list_diversity(s, max_k),
    )
    comparison = paired_bootstrap(pq_values, dqs_values, seed=0)
    report.significance[
        f"PQS-DA vs DQS diversity@{max_k}"
    ] = (
        f"delta={comparison.delta:+.3f}, p={comparison.p_value:.4f}"
        f"{' (significant)' if comparison.significant() else ''}"
    )

    # -- Fig. 4 ----------------------------------------------------------------------
    corpus = build_corpus(synthetic.log, synthetic.sessions)
    for name in config.topic_models:
        model = build_model(
            name,
            n_topics=config.n_topics,
            iterations=config.gibbs_iterations,
            seed=0,
        )
        report.fig4_perplexity[name] = evaluate_perplexity(model, corpus, 0.7)

    # -- Figs. 5 and 6 ----------------------------------------------------------------
    split = split_train_test(synthetic, n_test_sessions=3)
    full = PQSDA.build(
        split.train_log,
        sessions=split.train_sessions,
        config=pqsda_config(personalize=True),
    )
    personalized = {"PQS-DA": full}
    store = full.profiles
    if store is not None:
        for name in ("FRW", "BRW", "HT", "DQS"):
            personalized[f"{name}(P)"] = PersonalizedReranker(
                build_baseline(name, split.train_log), store
            )
    personalized["PHT"] = build_baseline("PHT", split.train_log)
    personalized["CM"] = build_baseline("CM", split.train_log)
    for name, suggester in personalized.items():
        result = evaluate_personalized(
            suggester,
            split.test_sessions,
            ks=ks,
            diversity=diversity,
            ppr=ppr,
            hpr=hpr,
        )
        report.fig5_diversity[name] = result["diversity"]
        report.fig5_ppr[name] = result["ppr"]
        report.fig6_hpr[name] = result["hpr"]

    return report
