"""Experiment drivers shared by the Fig. 3-7 benchmarks.

The paper's protocol (Sec. VI-C): per user, the most recent sessions are
held out for testing; user profiles and graph representations are built from
the remaining history; each test session's *first query* is the input and
the clicked pages of the session are the personal ground truth.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.baselines.base import Suggester, SuggestRequest
from repro.eval.diversity import DiversityMetric
from repro.eval.hpr import HPRMetric
from repro.eval.ppr import PPRMetric
from repro.eval.relevance import RelevanceMetric
from repro.logs.schema import QueryRecord, Session
from repro.logs.storage import QueryLog
from repro.synth.generator import SyntheticLog

__all__ = [
    "TrainTestSplit",
    "split_train_test",
    "evaluate_suggester",
    "evaluate_personalized",
    "evaluate_in_session",
    "evaluate_prequential",
]


@dataclass(frozen=True)
class TrainTestSplit:
    """Per-user temporal split of a generated log.

    Attributes:
        train_log: Log of all training-session records (fresh record ids).
        train_sessions: Training sessions rebuilt over ``train_log``.
        test_sessions: Held-out sessions (original record objects).
    """

    train_log: QueryLog
    train_sessions: list[Session]
    test_sessions: list[Session]

    @property
    def test_users(self) -> list[str]:
        """Users with at least one held-out session, sorted."""
        return sorted({session.user_id for session in self.test_sessions})


def split_train_test(
    synthetic: SyntheticLog,
    n_test_sessions: int = 3,
    min_train_sessions: int = 2,
) -> TrainTestSplit:
    """Hold out each user's most recent sessions (the paper keeps 10).

    Users with fewer than ``min_train_sessions + 1`` sessions contribute all
    their sessions to training and none to testing.
    """
    if n_test_sessions < 1:
        raise ValueError("n_test_sessions must be >= 1")
    if min_train_sessions < 1:
        raise ValueError("min_train_sessions must be >= 1")

    train_rows: list[QueryRecord] = []
    train_slices: list[tuple[str, str, int, int]] = []
    test_sessions: list[Session] = []
    for user_id in sorted(synthetic.sessions_by_user):
        sessions = sorted(
            synthetic.sessions_of(user_id), key=lambda s: s.start_time
        )
        n_test = min(n_test_sessions, max(len(sessions) - min_train_sessions, 0))
        cut = len(sessions) - n_test
        for session in sessions[:cut]:
            lo = len(train_rows)
            for record in session:
                train_rows.append(
                    QueryRecord(
                        user_id=record.user_id,
                        query=record.query,
                        timestamp=record.timestamp,
                        clicked_url=record.clicked_url,
                    )
                )
            train_slices.append((session.session_id, user_id, lo, len(train_rows)))
        test_sessions.extend(sessions[cut:])

    train_log = QueryLog(train_rows)
    train_sessions = [
        Session(session_id, user_id, [train_log[i] for i in range(lo, hi)])
        for session_id, user_id, lo, hi in train_slices
    ]
    return TrainTestSplit(
        train_log=train_log,
        train_sessions=train_sessions,
        test_sessions=test_sessions,
    )


def _suggest_batch(
    suggester: Suggester,
    requests: Sequence[SuggestRequest],
    n_workers: int,
) -> list[list[str]]:
    """Route through ``suggest_batch`` when available.

    Duck-typed suggesters that only implement ``suggest`` (common in test
    doubles and notebook experiments) are served sequentially.
    """
    batch = getattr(suggester, "suggest_batch", None)
    if batch is not None:
        return batch(requests, n_workers=n_workers)
    return [
        suggester.suggest(
            request.query,
            k=request.k,
            user_id=request.user_id,
            context=request.context,
            timestamp=request.timestamp,
        )
        for request in requests
    ]


@dataclass
class _Curve:
    """Mean-per-k accumulator."""

    sums: dict[int, float] = field(default_factory=dict)
    count: int = 0

    def add(self, values: dict[int, float]) -> None:
        for k, v in values.items():
            self.sums[k] = self.sums.get(k, 0.0) + v
        self.count += 1

    def means(self) -> dict[int, float]:
        if self.count == 0:
            return {}
        return {k: v / self.count for k, v in sorted(self.sums.items())}


def evaluate_suggester(
    suggester: Suggester,
    queries: Sequence[str],
    ks: Sequence[int],
    diversity: DiversityMetric | None = None,
    relevance: RelevanceMetric | None = None,
    n_workers: int = 1,
) -> dict[str, dict[int, float]]:
    """Fig. 3 protocol: average Diversity@k / Relevance@k over test queries.

    Queries for which the suggester returns nothing are skipped (they are
    outside the method's representation); ``coverage`` reports the kept
    fraction.  Suggestions are produced through the batch API so methods
    with request-level caches reuse them across the workload; *n_workers*
    fans the batch out over a thread pool.
    """
    max_k = max(ks)
    diversity_curve, relevance_curve = _Curve(), _Curve()
    answered = 0
    batch = _suggest_batch(
        suggester,
        [SuggestRequest(query=query, k=max_k) for query in queries],
        n_workers,
    )
    for query, suggestions in zip(queries, batch):
        if not suggestions:
            continue
        answered += 1
        if diversity is not None:
            diversity_curve.add(
                {k: diversity.list_diversity(suggestions, k) for k in ks}
            )
        if relevance is not None:
            relevance_curve.add(
                {k: relevance.list_relevance(query, suggestions, k) for k in ks}
            )
    result: dict[str, dict[int, float]] = {
        "coverage": {0: answered / len(queries) if queries else 0.0}
    }
    if diversity is not None:
        result["diversity"] = diversity_curve.means()
    if relevance is not None:
        result["relevance"] = relevance_curve.means()
    return result


def evaluate_personalized(
    suggester: Suggester,
    test_sessions: Sequence[Session],
    ks: Sequence[int],
    diversity: DiversityMetric | None = None,
    ppr: PPRMetric | None = None,
    hpr: HPRMetric | None = None,
    n_workers: int = 1,
) -> dict[str, dict[int, float]]:
    """Fig. 5/6 protocol: suggest for each test session's first query.

    The suggester is called with the session's user so personalized methods
    can use the profile; metrics are averaged over answered sessions.
    Sessions flow through the batch API (*n_workers* threads).
    """
    max_k = max(ks)
    curves = {"diversity": _Curve(), "ppr": _Curve(), "hpr": _Curve()}
    answered = 0
    batch = _suggest_batch(
        suggester,
        [
            SuggestRequest(
                query=session.records[0].query,
                k=max_k,
                user_id=session.user_id,
                timestamp=session.start_time,
            )
            for session in test_sessions
        ],
        n_workers,
    )
    for session, suggestions in zip(test_sessions, batch):
        if not suggestions:
            continue
        answered += 1
        if diversity is not None:
            curves["diversity"].add(
                {k: diversity.list_diversity(suggestions, k) for k in ks}
            )
        if ppr is not None:
            curves["ppr"].add(
                {k: ppr.list_ppr(suggestions, session, k) for k in ks}
            )
        if hpr is not None:
            curves["hpr"].add(
                {k: hpr.list_hpr(suggestions, session, k) for k in ks}
            )
    result: dict[str, dict[int, float]] = {
        "coverage": {
            0: answered / len(test_sessions) if test_sessions else 0.0
        }
    }
    if diversity is not None:
        result["diversity"] = curves["diversity"].means()
    if ppr is not None:
        result["ppr"] = curves["ppr"].means()
    if hpr is not None:
        result["hpr"] = curves["hpr"].means()
    return result


def evaluate_prequential(
    suggester: Suggester,
    ingestor,
    test_sessions: Sequence[Session],
    ks: Sequence[int],
    diversity: DiversityMetric | None = None,
    ppr: PPRMetric | None = None,
    hpr: HPRMetric | None = None,
    n_windows: int = 4,
) -> dict:
    """Streaming protocol: predict each test session, *then* ingest it.

    Test sessions are replayed in start-time order.  For each one the
    suggester answers its first query from the representation built over
    everything that arrived earlier (bootstrap plus already-replayed
    sessions); the session's records are then folded in through
    *ingestor* (any object with an ``ingest(records)`` method — a
    :class:`repro.stream.ingest.LogIngestor`), so later sessions see it.
    This interleaving is inherently sequential and bypasses the batch API.

    Metrics are reported overall and per contiguous time window: the
    replayed span is cut into *n_windows* equal-width windows by session
    start time, so drift — early windows answered mostly from the
    bootstrap graph, late windows mostly from streamed data — is visible
    in the curve sequence.
    """
    if n_windows < 1:
        raise ValueError(f"n_windows must be >= 1, got {n_windows}")
    sessions = sorted(
        test_sessions, key=lambda s: (s.start_time, s.session_id)
    )
    if not sessions:
        return {"overall": {"coverage": {0: 0.0}}, "windows": []}
    max_k = max(ks)

    t0 = sessions[0].start_time
    t1 = sessions[-1].start_time
    width = (t1 - t0) / n_windows

    def window_of(session: Session) -> int:
        if width <= 0.0:
            return 0
        return min(int((session.start_time - t0) / width), n_windows - 1)

    metric_names = [
        name
        for name, metric in (
            ("diversity", diversity),
            ("ppr", ppr),
            ("hpr", hpr),
        )
        if metric is not None
    ]
    overall = {name: _Curve() for name in metric_names}
    per_window = [
        {
            "curves": {name: _Curve() for name in metric_names},
            "sessions": 0,
            "answered": 0,
        }
        for _ in range(n_windows)
    ]
    answered_total = 0
    for session in sessions:
        window = per_window[window_of(session)]
        window["sessions"] += 1
        suggestions = suggester.suggest(
            session.records[0].query,
            k=max_k,
            user_id=session.user_id,
            timestamp=session.start_time,
        )
        if suggestions:
            answered_total += 1
            window["answered"] += 1
            values: dict[str, dict[int, float]] = {}
            if diversity is not None:
                values["diversity"] = {
                    k: diversity.list_diversity(suggestions, k) for k in ks
                }
            if ppr is not None:
                values["ppr"] = {
                    k: ppr.list_ppr(suggestions, session, k) for k in ks
                }
            if hpr is not None:
                values["hpr"] = {
                    k: hpr.list_hpr(suggestions, session, k) for k in ks
                }
            for name, curve_values in values.items():
                overall[name].add(curve_values)
                window["curves"][name].add(curve_values)
        ingestor.ingest(iter(session.records))

    result: dict = {
        "overall": {"coverage": {0: answered_total / len(sessions)}}
    }
    for name in metric_names:
        result["overall"][name] = overall[name].means()
    windows = []
    for i, window in enumerate(per_window):
        entry: dict = {
            "start": t0 + i * width,
            "end": t1 if i == n_windows - 1 else t0 + (i + 1) * width,
            "sessions": window["sessions"],
            "coverage": {
                0: window["answered"] / window["sessions"]
                if window["sessions"]
                else 0.0
            },
        }
        for name in metric_names:
            entry[name] = window["curves"][name].means()
        windows.append(entry)
    result["windows"] = windows
    return result


def evaluate_in_session(
    suggester: Suggester,
    test_sessions: Sequence[Session],
    ks: Sequence[int],
    ppr: PPRMetric | None = None,
    hpr: HPRMetric | None = None,
    n_workers: int = 1,
) -> dict[str, dict[int, float]]:
    """Mid-session protocol: suggest for the *last* query given the context.

    Sessions with fewer than two queries are skipped (no context to use).
    This protocol exercises context-aware methods (PQS-DA's backward-decay
    ``F⁰``, CACB's suffix tree); context-blind methods simply ignore the
    extra signal.  Eligible sessions flow through the batch API
    (*n_workers* threads).
    """
    max_k = max(ks)
    curves = {"ppr": _Curve(), "hpr": _Curve()}
    answered = 0
    eligible_sessions = [s for s in test_sessions if len(s) >= 2]
    eligible = len(eligible_sessions)
    requests = []
    for session in eligible_sessions:
        position = len(session) - 1
        target = session.records[position]
        requests.append(
            SuggestRequest(
                query=target.query,
                k=max_k,
                user_id=session.user_id,
                context=tuple(session.search_context(position)),
                timestamp=target.timestamp,
            )
        )
    batch = _suggest_batch(suggester, requests, n_workers)
    for session, suggestions in zip(eligible_sessions, batch):
        if not suggestions:
            continue
        answered += 1
        if ppr is not None:
            curves["ppr"].add(
                {k: ppr.list_ppr(suggestions, session, k) for k in ks}
            )
        if hpr is not None:
            curves["hpr"].add(
                {k: hpr.list_hpr(suggestions, session, k) for k in ks}
            )
    result: dict[str, dict[int, float]] = {
        "coverage": {0: answered / eligible if eligible else 0.0}
    }
    if ppr is not None:
        result["ppr"] = curves["ppr"].means()
    if hpr is not None:
        result["hpr"] = curves["hpr"].means()
    return result
