"""Latency measurement harness for the Fig. 7 efficiency analysis."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.baselines.base import Suggester, SuggestRequest
from repro.utils.timer import Timer

__all__ = ["EfficiencyResult", "measure_batch_latency", "measure_latency"]


@dataclass(frozen=True, slots=True)
class EfficiencyResult:
    """Latency of one suggester on one workload.

    Attributes:
        name: Suggester name.
        n_queries: Number of suggestion calls timed.
        total_seconds: Total wall-clock time.
        mean_seconds: Mean per-call latency.
    """

    name: str
    n_queries: int
    total_seconds: float
    mean_seconds: float

    def relative_to(self, baseline: "EfficiencyResult") -> float:
        """This suggester's mean latency as a multiple of *baseline*'s."""
        if baseline.mean_seconds <= 0:
            raise ValueError("baseline latency must be positive")
        return self.mean_seconds / baseline.mean_seconds


def measure_latency(
    suggester: Suggester,
    queries: Sequence[str],
    k: int = 10,
    user_id: str | None = None,
) -> EfficiencyResult:
    """Time ``suggester.suggest`` over *queries* (one warm-up call first).

    The warm-up call absorbs lazy one-time costs (cache fills, JIT-ish
    allocations) so the measurement reflects online serving behaviour.
    """
    if not queries:
        raise ValueError("queries must be non-empty")
    suggester.suggest(queries[0], k=k, user_id=user_id)
    timer = Timer()
    for query in queries:
        with timer:
            suggester.suggest(query, k=k, user_id=user_id)
    return EfficiencyResult(
        name=suggester.name,
        n_queries=len(queries),
        total_seconds=timer.elapsed,
        mean_seconds=timer.elapsed / len(queries),
    )


def measure_batch_latency(
    suggester: Suggester,
    requests: Sequence[SuggestRequest],
    n_workers: int = 1,
) -> EfficiencyResult:
    """Time one ``suggest_batch`` call over *requests*.

    ``mean_seconds`` is the per-request wall-clock share of the batch —
    with ``n_workers > 1`` it reflects throughput, not individual request
    latency.  The first request is warmed up beforehand, mirroring
    :func:`measure_latency`.
    """
    if not requests:
        raise ValueError("requests must be non-empty")
    suggester.suggest_batch(requests[:1])
    timer = Timer()
    with timer:
        suggester.suggest_batch(requests, n_workers=n_workers)
    return EfficiencyResult(
        name=suggester.name,
        n_queries=len(requests),
        total_seconds=timer.elapsed,
        mean_seconds=timer.elapsed / len(requests),
    )
