"""Latency measurement harness for the Fig. 7 efficiency analysis."""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.baselines.base import Suggester, SuggestRequest
from repro.utils.timer import Timer

__all__ = ["EfficiencyResult", "measure_batch_latency", "measure_latency"]


@dataclass(frozen=True, slots=True)
class EfficiencyResult:
    """Latency of one suggester on one workload.

    Attributes:
        name: Suggester name.
        n_queries: Number of suggestion calls timed.
        total_seconds: Total wall-clock time.
        mean_seconds: Mean per-call latency.
    """

    name: str
    n_queries: int
    total_seconds: float
    mean_seconds: float

    def relative_to(self, baseline: "EfficiencyResult") -> float:
        """This suggester's mean latency as a multiple of *baseline*'s.

        Contract for a zero-latency baseline — possible when a coarse
        platform clock measures a trivial workload (``--quick`` bench
        mode) as 0.0 seconds: returns ``math.inf`` (this suggester is
        unboundedly slower), or ``1.0`` when this measurement is *also*
        0.0 (both below clock resolution — indistinguishable).  A
        negative baseline is still a caller error.
        """
        if baseline.mean_seconds < 0:
            raise ValueError("baseline latency must be non-negative")
        if baseline.mean_seconds == 0.0:
            return 1.0 if self.mean_seconds == 0.0 else math.inf
        return self.mean_seconds / baseline.mean_seconds


def measure_latency(
    suggester: Suggester,
    queries: Sequence[str],
    k: int = 10,
    user_id: str | None = None,
) -> EfficiencyResult:
    """Time ``suggester.suggest`` over *queries* (one warm-up call first).

    The warm-up call absorbs lazy one-time costs (cache fills, JIT-ish
    allocations) so the measurement reflects online serving behaviour.
    """
    if not queries:
        raise ValueError("queries must be non-empty")
    suggester.suggest(queries[0], k=k, user_id=user_id)
    timer = Timer()
    for query in queries:
        with timer:
            suggester.suggest(query, k=k, user_id=user_id)
    return EfficiencyResult(
        name=suggester.name,
        n_queries=len(queries),
        total_seconds=timer.elapsed,
        mean_seconds=timer.elapsed / len(queries),
    )


def measure_batch_latency(
    suggester: Suggester,
    requests: Sequence[SuggestRequest],
    n_workers: int = 1,
) -> EfficiencyResult:
    """Time one ``suggest_batch`` call over *requests*.

    ``mean_seconds`` is the per-request wall-clock share of the batch —
    with ``n_workers > 1`` it reflects throughput, not individual request
    latency.  Warm-up runs **only the first request** (one
    ``suggest_batch`` over ``requests[:1]``): enough to absorb lazy
    one-time costs (pool spin-up, allocator warm-up) without serving the
    whole workload twice — unlike :func:`measure_latency`, the other
    requests hit the timed run cold unless the suggester's own cache
    already holds them.
    """
    if not requests:
        raise ValueError("requests must be non-empty")
    suggester.suggest_batch(requests[:1])
    timer = Timer()
    with timer:
        suggester.suggest_batch(requests, n_workers=n_workers)
    return EfficiencyResult(
        name=suggester.name,
        n_queries=len(requests),
        total_seconds=timer.elapsed,
        mean_seconds=timer.elapsed / len(requests),
    )
