"""The Diversity metric of Ma et al. adopted by the paper (Eqs. 32-33).

For two suggested queries ``q_i, q_j`` with clicked page sets ``P(q_i),
P(q_j)``::

    d(q_i, q_j) = 1 − (Σ_m Σ_n sim(p_im, p_jn)) / (M · N)        (Eq. 32)
    D(L) = Σ_i Σ_{j≠i} d(q_i, q_j) / (|L| (|L|−1))                (Eq. 33)

The paper computes ``sim`` from ODP; here pages are similar when their
taxonomy category paths share a prefix (the oracle's ``category_of_url``),
exactly the same construction over the synthetic directory.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.logs.storage import QueryLog
from repro.synth.oracle import Oracle
from repro.utils.text import normalize_query

__all__ = ["DiversityMetric"]


class DiversityMetric:
    """Eq. 33 list diversity over a log's clicked-page sets."""

    def __init__(self, log: QueryLog, oracle: Oracle) -> None:
        self._oracle = oracle
        self._taxonomy = oracle.world.taxonomy
        self._clicked: dict[str, set[str]] = defaultdict(set)
        for record in log:
            if record.clicked_url is not None:
                self._clicked[normalize_query(record.query)].add(
                    record.clicked_url
                )

    def clicked_pages(self, query: str) -> set[str]:
        """``P(q)``: the URLs clicked for *query* anywhere in the log."""
        return set(self._clicked.get(normalize_query(query), set()))

    def _page_similarity(self, left: str, right: str) -> float:
        a = self._oracle.category_of_url(left)
        b = self._oracle.category_of_url(right)
        if a is None or b is None:
            return 0.0
        return self._taxonomy.path_similarity(a, b)

    def pair_diversity(self, query_i: str, query_j: str) -> float:
        """Eq. 32 ``d(q_i, q_j)``.

        Queries without any clicked page contribute maximal diversity 1.0
        (no evidence of overlap), matching the metric's use over real logs
        where unclicked suggestions cannot be compared.
        """
        pages_i = self.clicked_pages(query_i)
        pages_j = self.clicked_pages(query_j)
        if not pages_i or not pages_j:
            return 1.0
        total = sum(
            self._page_similarity(p, q) for p in pages_i for q in pages_j
        )
        return 1.0 - total / (len(pages_i) * len(pages_j))

    def list_diversity(self, suggestions: Sequence[str], k: int | None = None) -> float:
        """Eq. 33 ``D(L)`` of the top-*k* prefix of *suggestions*.

        Lists with fewer than two suggestions have undefined pairwise
        structure and score 0.0.
        """
        items = list(suggestions[:k] if k is not None else suggestions)
        n = len(items)
        if n < 2:
            return 0.0
        total = 0.0
        for i in range(n):
            for j in range(n):
                if i != j:
                    total += self.pair_diversity(items[i], items[j])
        return total / (n * (n - 1))
