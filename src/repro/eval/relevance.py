"""The Relevance metric (paper Eq. 34).

``R(q_i, q_j) = |PF(A_i, A_j)| / max(|A_i|, |A_j|)`` where ``A`` are the
queries' ODP category paths.  The oracle supplies categories (ground truth
for generated queries, the vocabulary classifier otherwise); queries with no
category score 0 against everything, as an un-categorizable suggestion did
in the paper's ODP lookup.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.synth.oracle import Oracle

__all__ = ["RelevanceMetric"]


class RelevanceMetric:
    """Eq. 34 relevance between the input query and its suggestions."""

    def __init__(self, oracle: Oracle) -> None:
        self._oracle = oracle

    def pair_relevance(self, query_i: str, query_j: str) -> float:
        """Eq. 34 ``R(q_i, q_j)`` (0.0 when either is un-categorizable)."""
        return self._oracle.query_similarity(query_i, query_j)

    def list_relevance(
        self,
        input_query: str,
        suggestions: Sequence[str],
        k: int | None = None,
    ) -> float:
        """Mean ``R(input, s)`` over the top-*k* suggestions (0.0 if empty)."""
        items = list(suggestions[:k] if k is not None else suggestions)
        if not items:
            return 0.0
        return sum(
            self.pair_relevance(input_query, s) for s in items
        ) / len(items)

    def relevance_at(
        self, input_query: str, suggestions: Sequence[str], rank: int
    ) -> float:
        """``R(input, suggestions[rank])`` (0.0 past the end of the list)."""
        if rank < 0:
            raise ValueError(f"rank must be >= 0, got {rank}")
        if rank >= len(suggestions):
            return 0.0
        return self.pair_relevance(input_query, suggestions[rank])
