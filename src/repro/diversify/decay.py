"""Backward-decay initialization of the context vector ``F⁰`` (paper Eq. 7).

The input query's entry is 1; each query in the search context gets
``exp(λ (t_{q'} − t_q))`` — since context queries precede the input query,
the exponent is negative and older context contributes less (the backward
decay of Cormode et al., ICDE 2009, that the paper cites).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.graphs.matrices import BipartiteMatrices
from repro.logs.schema import QueryRecord
from repro.utils.text import normalize_query
from repro.utils.validation import check_positive

__all__ = ["build_context_vector", "DEFAULT_DECAY_LAMBDA"]

#: Default λ: context relevance halves roughly every 2 minutes of pause.
DEFAULT_DECAY_LAMBDA = math.log(2) / 120.0


def build_context_vector(
    matrices: BipartiteMatrices,
    input_query: str,
    input_timestamp: float,
    context: Sequence[QueryRecord] = (),
    decay_lambda: float = DEFAULT_DECAY_LAMBDA,
) -> np.ndarray:
    """The ``1 × Q`` vector ``F⁰`` of Eq. 7 over *matrices*' query order.

    Context records whose query is not in the compact representation are
    ignored; a context record later than the input query is rejected (the
    context is by definition the *previously* submitted queries).
    """
    check_positive("decay_lambda", decay_lambda)
    index = matrices.query_index
    f0 = np.zeros(matrices.n_queries)

    normalized_input = normalize_query(input_query)
    if normalized_input not in index:
        raise KeyError(
            f"input query {normalized_input!r} is not in the representation"
        )
    f0[index[normalized_input]] = 1.0

    for record in context:
        if record.timestamp > input_timestamp:
            raise ValueError(
                "search context must precede the input query "
                f"(context at {record.timestamp}, input at {input_timestamp})"
            )
        query = normalize_query(record.query)
        if query == normalized_input or query not in index:
            continue
        weight = math.exp(decay_lambda * (record.timestamp - input_timestamp))
        # Several context submissions of the same query accumulate, capped
        # at the input query's own weight.
        row = index[query]
        f0[row] = min(f0[row] + weight, 1.0)
    return f0
