"""Diversification component (paper Sec. IV).

Pipeline: backward-decay context vector ``F⁰`` (Eq. 7) → context-aware
regularization solve for the most relevant candidate (Eqs. 8-15) →
cross-bipartite hitting time for the remaining ``K−1`` diversified
candidates (Eqs. 16-17, Algorithm 1).
"""

from repro.diversify.candidates import (
    DiversifiedSuggestions,
    DiversifyConfig,
    diversify,
)
from repro.diversify.cross_bipartite import CrossBipartiteWalker, SwitchMatrix
from repro.diversify.decay import build_context_vector
from repro.diversify.hitting_time import truncated_hitting_times
from repro.diversify.regularization import RegularizationConfig, solve_relevance

__all__ = [
    "CrossBipartiteWalker",
    "DiversifiedSuggestions",
    "DiversifyConfig",
    "RegularizationConfig",
    "SwitchMatrix",
    "build_context_vector",
    "diversify",
    "solve_relevance",
    "truncated_hitting_times",
]
