"""Cross-bipartite random walker (paper Sec. IV-C, Eq. 16).

The walker lives on the query nodes of the compact multi-bipartite.  At each
step it (a) picks the bipartite through which to move — governed by the
cross-bipartite switch matrix ``N`` (``N[i, j] = p(X_j | X_i)``) applied to
its current bipartite distribution — and (b) moves to a neighbour query via
that bipartite's two-step transition ``P^X``.

With the paper's default (uniform prior over the three bipartites and no
cross-bipartite preference) the effective query-query transition is the
uniform mixture ``(P^U + P^S + P^T) / 3``; a non-uniform ``N`` rebalances
the mixture, which the ablation benchmarks exercise.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.graphs.matrices import BipartiteMatrices, row_normalize
from repro.graphs.multibipartite import BIPARTITE_KINDS

__all__ = ["SwitchMatrix", "CrossBipartiteWalker"]


class SwitchMatrix:
    """The 3×3 cross-bipartite transition ``N`` over (U, S, T).

    Rows index the current bipartite, columns the next; rows must be
    probability distributions.  ``SwitchMatrix.uniform()`` is the paper's
    no-prior-knowledge default.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape != (3, 3):
            raise ValueError(f"switch matrix must be 3x3, got {matrix.shape}")
        if (matrix < 0).any():
            raise ValueError("switch matrix entries must be non-negative")
        sums = matrix.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise ValueError(f"switch matrix rows must sum to 1, got {sums}")
        self._matrix = matrix

    @classmethod
    def uniform(cls) -> "SwitchMatrix":
        """Equal 1/3 probability of continuing in any bipartite."""
        return cls(np.full((3, 3), 1.0 / 3.0))

    @classmethod
    def sticky(cls, stay: float) -> "SwitchMatrix":
        """Probability *stay* of keeping the current bipartite.

        The remaining mass is split evenly between the other two.
        """
        if not 0.0 <= stay <= 1.0:
            raise ValueError(f"stay must be in [0, 1], got {stay}")
        off = (1.0 - stay) / 2.0
        matrix = np.full((3, 3), off)
        np.fill_diagonal(matrix, stay)
        return cls(matrix)

    @classmethod
    def single(cls, kind: str) -> "SwitchMatrix":
        """Degenerate switch that always walks bipartite *kind* (ablation)."""
        if kind not in BIPARTITE_KINDS:
            raise ValueError(f"kind must be one of {BIPARTITE_KINDS}")
        column = BIPARTITE_KINDS.index(kind)
        matrix = np.zeros((3, 3))
        matrix[:, column] = 1.0
        return cls(matrix)

    @property
    def matrix(self) -> np.ndarray:
        """The underlying 3×3 array (copy)."""
        return self._matrix.copy()

    def mixture_weights(self, prior: np.ndarray | None = None) -> np.ndarray:
        """Stationary per-bipartite weights ``m = prior @ N`` (Eq. 16's
        contraction of the 3-vector onto the query marginal)."""
        if prior is None:
            prior = np.full(3, 1.0 / 3.0)
        prior = np.asarray(prior, dtype=float)
        if prior.shape != (3,) or not np.isclose(prior.sum(), 1.0):
            raise ValueError("prior must be a 3-element distribution")
        if (prior < 0).any():
            raise ValueError(
                f"prior components must be non-negative, got {prior}"
            )
        return prior @ self._matrix


class CrossBipartiteWalker:
    """Effective query-query transition of the cross-bipartite walk."""

    def __init__(
        self,
        matrices: BipartiteMatrices,
        switch: SwitchMatrix | None = None,
    ) -> None:
        self._matrices = matrices
        self._switch = switch if switch is not None else SwitchMatrix.uniform()
        weights = self._switch.mixture_weights()
        # The weighted transition mixture Σ_X w_X · P^X with
        # P^X = rownorm(W^X) rownorm(W^{X⊤}) is assembled as one block
        # matmul over the facet-stacked incidences — equivalent to mixing
        # the per-kind transitions, but with a single sparse product.
        forward_blocks, backward_blocks = [], []
        for weight, kind in zip(weights, BIPARTITE_KINDS):
            if weight > 0:
                incidence = matrices.incidence[kind]
                forward_blocks.append(weight * row_normalize(incidence))
                backward_blocks.append(row_normalize(incidence.T))
        if forward_blocks:
            mixed = (
                sparse.hstack(forward_blocks, format="csr")
                @ sparse.vstack(backward_blocks, format="csr")
            ).tocsr()
        else:  # all-zero weights are rejected by SwitchMatrix
            mixed = sparse.csr_matrix(
                (matrices.n_queries, matrices.n_queries), dtype=float
            )
        # A query may have no facets in some bipartite (e.g. never clicked):
        # renormalize so the walker redistributes over the available views.
        self._transition = row_normalize(mixed)

    @property
    def matrices(self) -> BipartiteMatrices:
        """The compact-representation matrices the walker runs on."""
        return self._matrices

    @property
    def transition(self) -> sparse.csr_matrix:
        """The effective row-(sub)stochastic query-query transition."""
        return self._transition

    @property
    def switch(self) -> SwitchMatrix:
        """The cross-bipartite switch matrix in use."""
        return self._switch
