"""Algorithm 1: diversified query-suggestion candidates (paper Sec. IV).

Given the compact representation's matrices, an input query and its search
context:

1. build ``F⁰`` (backward decay, Eq. 7);
2. solve the regularization system (Eq. 15) and pick the most relevant
   candidate — the largest ``F*`` entry outside the input/context;
3. repeatedly pick the query of **maximum** truncated cross-bipartite
   hitting time to the already-selected set ``S`` (Eq. 17) — the walk's
   inhibition of queries close to ``S`` is what produces diversity.

Hitting-time ties (e.g. several queries saturating at the truncation
horizon) are broken by descending ``F*`` relevance, keeping the output
"sorted with a descending relevance to the input query" as the paper states.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.diversify.cross_bipartite import CrossBipartiteWalker, SwitchMatrix
from repro.diversify.decay import DEFAULT_DECAY_LAMBDA, build_context_vector
from repro.diversify.hitting_time import HittingTimeEngine
from repro.diversify.regularization import RegularizationConfig, RelevanceSolver
from repro.graphs.matrices import BipartiteMatrices
from repro.logs.schema import QueryRecord
from repro.obs.trace import NULL_TRACER
from repro.utils.text import normalize_query

__all__ = [
    "DiversifiedSuggestions",
    "DiversifyConfig",
    "diversify",
    "diversify_from_seed_vector",
]


@dataclass(frozen=True)
class DiversifyConfig:
    """Parameters of Algorithm 1.

    Attributes:
        k: Number of suggestion candidates to produce.
        decay_lambda: Backward-decay rate of Eq. 7.
        regularization: Eq. 15 solver parameters.
        switch: Cross-bipartite switch matrix (None = uniform).
        hitting_iterations: Truncation horizon ``l`` of Algorithm 1.
        candidate_pool: Hitting-time selection is restricted to this many
            top-``F*`` candidates (None = ``3k``).  The paper runs Algorithm
            1 over the whole compact representation because real-log compact
            neighbourhoods are uniformly relevant; the pool makes that
            assumption explicit when the walk expansion overshoots (and
            mirrors DQS's candidate pool on the click graph).
    """

    k: int = 10
    decay_lambda: float = DEFAULT_DECAY_LAMBDA
    regularization: RegularizationConfig = field(
        default_factory=RegularizationConfig
    )
    switch: SwitchMatrix | None = None
    hitting_iterations: int = 20
    candidate_pool: int | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.decay_lambda <= 0:
            raise ValueError("decay_lambda must be positive")
        if self.hitting_iterations < 1:
            raise ValueError("hitting_iterations must be >= 1")
        if self.candidate_pool is not None and self.candidate_pool < self.k:
            raise ValueError("candidate_pool must be >= k")

    @property
    def pool_size(self) -> int:
        """Effective candidate-pool size (defaults to ``3k``)."""
        return self.candidate_pool if self.candidate_pool is not None else 3 * self.k


@dataclass(frozen=True)
class DiversifiedSuggestions:
    """Output of :func:`diversify`.

    Attributes:
        ranking: The candidates in selection order (the diversification
            component's relevance-descending ranking).
        relevance: Candidate -> ``F*`` score from the regularization solve.
        input_query: The normalized input query.
    """

    ranking: list[str]
    relevance: dict[str, float]
    input_query: str

    def __len__(self) -> int:
        return len(self.ranking)

    def __iter__(self):
        return iter(self.ranking)

    def top(self, k: int) -> list[str]:
        """The first *k* candidates."""
        return self.ranking[:k]


def diversify(
    matrices: BipartiteMatrices,
    input_query: str,
    input_timestamp: float = 0.0,
    context: Sequence[QueryRecord] = (),
    config: DiversifyConfig | None = None,
    solver: RelevanceSolver | None = None,
    walker: CrossBipartiteWalker | None = None,
    tracer=None,
    skip_hitting: bool = False,
) -> DiversifiedSuggestions:
    """Run Algorithm 1 on a compact representation's *matrices*.

    *solver* and *walker* accept per-representation state prebuilt by the
    serving cache; both must have been constructed over *matrices*.
    *tracer* (a :class:`repro.obs.trace.Tracer`) wraps the Eq. 15 solve
    and the hitting-time walk in ``solve``/``walk`` spans; ``None`` uses
    the no-op null tracer.  *skip_hitting* is the tier-1 load-shed
    bypass: the hitting-time selection loop (steps 2..K) is skipped and
    candidates come back in pure Eq. 15 relevance order.
    """
    if config is None:
        config = DiversifyConfig()

    normalized_input = normalize_query(input_query)
    f0 = build_context_vector(
        matrices,
        normalized_input,
        input_timestamp,
        context,
        decay_lambda=config.decay_lambda,
    )
    excluded = {normalized_input}
    excluded.update(
        normalize_query(record.query)
        for record in context
        if normalize_query(record.query) in matrices.query_index
    )
    return diversify_from_seed_vector(
        matrices, f0, excluded, normalized_input, config,
        solver=solver, walker=walker, tracer=tracer,
        skip_hitting=skip_hitting,
    )


def diversify_from_seed_vector(
    matrices: BipartiteMatrices,
    f0: np.ndarray,
    excluded: set[str],
    input_label: str,
    config: DiversifyConfig | None = None,
    solver: RelevanceSolver | None = None,
    walker: CrossBipartiteWalker | None = None,
    tracer=None,
    skip_hitting: bool = False,
) -> DiversifiedSuggestions:
    """Algorithm 1 starting from an arbitrary seed vector ``F⁰``.

    This is the engine behind :func:`diversify`; it is also used directly
    by the term-backoff extension, where an *unseen* input query seeds the
    walk through the log queries that share its terms instead of through
    its own (absent) node.  Prebuilt *solver*/*walker* state (from the
    serving cache) skips the per-call system-matrix and walker setup.
    """
    if config is None:
        config = DiversifyConfig()
    if tracer is None:
        tracer = NULL_TRACER
    if solver is None:
        solver = RelevanceSolver(matrices, config.regularization)
    with tracer.span("solve"):
        f_star = solver.solve(f0)
    index = matrices.query_index

    def relevance_of(query: str) -> float:
        return float(f_star[index[query]])

    eligible = [q for q in matrices.queries if q not in excluded]
    if not eligible:
        return DiversifiedSuggestions([], {}, input_label)
    eligible = sorted(eligible, key=lambda q: (-relevance_of(q), q))
    eligible = eligible[: config.pool_size]

    if skip_hitting:
        # Tier-1 shed: pure relevance order, no hitting-time walk.  The
        # first candidate is identical to full service (step 1 picks the
        # relevance maximum either way); the tail loses diversity.
        ranking = eligible[: config.k]
        return DiversifiedSuggestions(
            ranking=ranking,
            relevance={q: relevance_of(q) for q in ranking},
            input_query=input_label,
        )

    # Step 1: the most relevant candidate (largest F* outside exclusions).
    first = max(eligible, key=lambda q: (relevance_of(q), q))
    ranking = [first]
    selected = {first}

    # Steps 2..K-1: maximum truncated hitting time to the selected set.
    if walker is None:
        walker = CrossBipartiteWalker(matrices, config.switch)
    with tracer.span("walk"):
        engine = HittingTimeEngine(
            walker.transition, config.hitting_iterations
        )
        while len(ranking) < min(config.k, len(eligible)):
            absorbing = [index[q] for q in selected]
            hitting = engine.compute(absorbing)
            best: str | None = None
            best_key: tuple[float, float, str] | None = None
            for query in eligible:
                if query in selected:
                    continue
                key = (
                    float(hitting[index[query]]),
                    relevance_of(query),
                    query,
                )
                if best_key is None or key > best_key:
                    best_key = key
                    best = query
            if best is None:
                break
            ranking.append(best)
            selected.add(best)

    relevance = {query: relevance_of(query) for query in ranking}
    return DiversifiedSuggestions(
        ranking=ranking, relevance=relevance, input_query=input_label
    )
