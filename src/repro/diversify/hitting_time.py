"""Truncated expected hitting times on a query-query transition (Eq. 17).

``h(q_i | S)`` is the expected number of steps before a random walker
starting at ``q_i`` first visits the set ``S``.  On the absorbing set the
hitting time is 0; elsewhere it satisfies the linear recurrence::

    h(q_i | S) = 1 + Σ_j T[i, j] · h(q_j | S)

which Algorithm 1 evaluates by ``l`` fixed-point iterations.  Truncation at
``l`` steps (the *l-truncated hitting time* of Mei et al., CIKM 2008) keeps
the computation local and bounded: unreachable queries saturate at ``l``.

Algorithm 1 evaluates hitting times once per selection step against a
growing absorbing set, always on the *same* transition.  The
transition-dependent state (canonical CSR arrays, leaked row mass) is
therefore hoisted into :class:`HittingTimeEngine`, and the inner fixed
point calls the CSR matvec kernel directly — on compact-sized systems the
Python dispatch around ``transition @ h`` costs more than the arithmetic.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy import sparse

try:  # scipy's own CSR matvec kernel; private but stable across releases.
    from scipy.sparse._sparsetools import csr_matvec as _csr_matvec
except ImportError:  # pragma: no cover - fall back to operator dispatch
    _csr_matvec = None

__all__ = ["HittingTimeEngine", "truncated_hitting_times"]


class HittingTimeEngine:
    """Repeated truncated-hitting-time evaluations on one transition.

    Args:
        transition: Row-(sub)stochastic query-query transition.  Rows whose
            mass sums below 1 model a walker that may leave the compact
            neighbourhood; the missing mass is treated as never hitting
            the absorbing set (contributes the truncation horizon).
        iterations: The truncation horizon ``l``.
    """

    def __init__(
        self, transition: sparse.spmatrix, iterations: int = 20
    ) -> None:
        transition = transition.tocsr()
        n = transition.shape[0]
        if transition.shape != (n, n):
            raise ValueError(
                f"transition must be square, got {transition.shape}"
            )
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        self._transition = transition
        self._n = n
        self._iterations = iterations
        # Missing row mass (sub-stochastic rows) corresponds to walks that
        # leave the neighbourhood; they are charged the full horizon,
        # implemented by initializing h at the horizon and iterating
        # downward-consistent values.
        row_mass = np.asarray(transition.sum(axis=1)).ravel()
        self._leak = np.clip(1.0 - row_mass, 0.0, None)
        # The per-step additive term 1 + leak·(step-1) is independent of
        # the absorbing set; it is re-derived from the leak vector and the
        # step scalar inside compute() — O(n) state instead of the O(l·n)
        # a materialized per-step table would cost, which matters because
        # one engine is built per request on the serving hot path.
        self._has_leak = bool(self._leak.any())

    @property
    def transition(self) -> sparse.csr_matrix:
        """The transition the engine evaluates on."""
        return self._transition

    def _matvec(self, h: np.ndarray, out: np.ndarray) -> np.ndarray:
        if _csr_matvec is None:
            out[:] = self._transition @ h
            return out
        out.fill(0.0)  # the kernel accumulates into its output
        _csr_matvec(
            self._n,
            self._n,
            self._transition.indptr,
            self._transition.indices,
            self._transition.data,
            h,
            out,
        )
        return out

    def compute(self, absorbing: Iterable[int]) -> np.ndarray:
        """Expected hitting times to *absorbing*, truncated at the horizon.

        Returns a vector ``h`` with ``h[S] = 0`` and ``0 <= h <= l``
        elsewhere.
        """
        absorbing_idx = np.asarray(sorted(set(absorbing)), dtype=int)
        if absorbing_idx.size == 0:
            raise ValueError("absorbing set must be non-empty")
        if absorbing_idx.min() < 0 or absorbing_idx.max() >= self._n:
            raise ValueError("absorbing ordinals out of range")
        h = np.zeros(self._n)
        swap = np.zeros(self._n)
        for step in range(1, self._iterations + 1):
            self._matvec(h, swap)
            # Same elementwise values (and addition order) as adding a
            # precomputed 1 + leak·(step-1) row: leak-free transitions
            # reduce the term to the exact scalar 1.0.
            if self._has_leak:
                swap += 1.0 + self._leak * float(step - 1)
            else:
                swap += 1.0
            swap[absorbing_idx] = 0.0
            h, swap = swap, h
        return np.minimum(h, float(self._iterations))


def truncated_hitting_times(
    transition: sparse.spmatrix,
    absorbing: Iterable[int],
    iterations: int = 20,
) -> np.ndarray:
    """Expected hitting times to *absorbing* truncated at *iterations* steps.

    One-shot convenience over :class:`HittingTimeEngine`; loops that
    re-evaluate against a fixed transition should build the engine once.
    """
    return HittingTimeEngine(transition, iterations).compute(absorbing)
