"""Truncated expected hitting times on a query-query transition (Eq. 17).

``h(q_i | S)`` is the expected number of steps before a random walker
starting at ``q_i`` first visits the set ``S``.  On the absorbing set the
hitting time is 0; elsewhere it satisfies the linear recurrence::

    h(q_i | S) = 1 + Σ_j T[i, j] · h(q_j | S)

which Algorithm 1 evaluates by ``l`` fixed-point iterations.  Truncation at
``l`` steps (the *l-truncated hitting time* of Mei et al., CIKM 2008) keeps
the computation local and bounded: unreachable queries saturate at ``l``.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
from scipy import sparse

__all__ = ["truncated_hitting_times"]


def truncated_hitting_times(
    transition: sparse.spmatrix,
    absorbing: Iterable[int],
    iterations: int = 20,
) -> np.ndarray:
    """Expected hitting times to *absorbing* truncated at *iterations* steps.

    Args:
        transition: Row-(sub)stochastic query-query transition.  Rows whose
            mass sums below 1 model a walker that may leave the compact
            neighbourhood; the missing mass is treated as never hitting
            ``S`` (contributes the truncation horizon).
        absorbing: Row ordinals of the set ``S`` (must be non-empty).
        iterations: The truncation horizon ``l``.

    Returns:
        Vector ``h`` with ``h[S] = 0`` and ``0 <= h <= iterations``
        elsewhere.
    """
    transition = transition.tocsr()
    n = transition.shape[0]
    if transition.shape != (n, n):
        raise ValueError(f"transition must be square, got {transition.shape}")
    absorbing_idx = np.asarray(sorted(set(absorbing)), dtype=int)
    if absorbing_idx.size == 0:
        raise ValueError("absorbing set must be non-empty")
    if absorbing_idx.min() < 0 or absorbing_idx.max() >= n:
        raise ValueError("absorbing ordinals out of range")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")

    # Missing row mass (sub-stochastic rows) corresponds to walks that leave
    # the neighbourhood; they are charged the full horizon, implemented by
    # initializing h at the horizon and iterating downward-consistent values.
    row_mass = np.asarray(transition.sum(axis=1)).ravel()
    leak = np.clip(1.0 - row_mass, 0.0, None)

    h = np.zeros(n)
    for step in range(1, iterations + 1):
        h = 1.0 + transition @ h + leak * float(step - 1)
        h[absorbing_idx] = 0.0
    return np.minimum(np.asarray(h).ravel(), float(iterations))
