"""Context-aware regularization for the first candidate (paper Eqs. 8-15).

The fitting constraint keeps the estimate ``F`` close to the context vector
``F⁰``; the smoothness constraint ties together queries that share facets in
each bipartite.  After dualization the optimum solves the sparse linear
system (Eq. 15)::

    ((1 + Σ_X α_X) I − Σ_X α_X L^X) F* = F⁰

with ``L^X`` the symmetric normalized affinity of bipartite X.  Because each
``L^X`` has spectral radius ≤ 1, the system matrix is positive definite and
conjugate gradients converge quickly (the paper cites the nearly-linear-time
solver of Spielman & Teng for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import cg, spsolve

from repro.graphs.matrices import BipartiteMatrices
from repro.graphs.multibipartite import BIPARTITE_KINDS

__all__ = ["RegularizationConfig", "solve_relevance", "system_matrix"]


@dataclass(frozen=True)
class RegularizationConfig:
    """Parameters of the Eq. 15 solve.

    Attributes:
        alphas: Per-bipartite Lagrange multipliers ``α_X``; the paper notes
            the result "is not very sensitive to α" and tunes empirically —
            equal weights are the default.
        tolerance: Conjugate-gradient relative tolerance.
        max_iterations: CG iteration cap before falling back to a direct
            sparse solve.
    """

    alphas: dict[str, float] = field(
        default_factory=lambda: {"U": 1.0, "S": 1.0, "T": 1.0}
    )
    tolerance: float = 1e-8
    max_iterations: int = 500

    def __post_init__(self) -> None:
        missing = set(BIPARTITE_KINDS) - set(self.alphas)
        if missing:
            raise ValueError(f"alphas missing kinds: {sorted(missing)}")
        for kind, alpha in self.alphas.items():
            if alpha < 0:
                raise ValueError(f"alpha[{kind}] must be >= 0, got {alpha}")
        if sum(self.alphas.values()) <= 0:
            raise ValueError("at least one alpha must be positive")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


def system_matrix(
    matrices: BipartiteMatrices, config: RegularizationConfig
) -> sparse.csr_matrix:
    """The Eq. 15 coefficient matrix ``(1 + Σα) I − Σ α_X L^X``."""
    n = matrices.n_queries
    total_alpha = sum(config.alphas.values())
    system = sparse.identity(n, format="csr") * (1.0 + total_alpha)
    for kind in BIPARTITE_KINDS:
        alpha = config.alphas[kind]
        if alpha > 0:
            system = system - alpha * matrices.affinity[kind]
    return system.tocsr()


def solve_relevance(
    matrices: BipartiteMatrices,
    f0: np.ndarray,
    config: RegularizationConfig | None = None,
) -> np.ndarray:
    """Solve Eq. 15 for ``F*`` given the context vector ``F⁰``.

    Uses conjugate gradients (the matrix is symmetric positive definite);
    falls back to a direct sparse solve if CG fails to converge.
    """
    if config is None:
        config = RegularizationConfig()
    if f0.shape != (matrices.n_queries,):
        raise ValueError(
            f"f0 has shape {f0.shape}, expected ({matrices.n_queries},)"
        )
    system = system_matrix(matrices, config)
    solution, info = cg(
        system,
        f0,
        rtol=config.tolerance,
        maxiter=config.max_iterations,
    )
    if info != 0:
        solution = spsolve(system.tocsc(), f0)
    return np.asarray(solution).ravel()
