"""Context-aware regularization for the first candidate (paper Eqs. 8-15).

The fitting constraint keeps the estimate ``F`` close to the context vector
``F⁰``; the smoothness constraint ties together queries that share facets in
each bipartite.  After dualization the optimum solves the sparse linear
system (Eq. 15)::

    ((1 + Σ_X α_X) I − Σ_X α_X L^X) F* = F⁰

with ``L^X`` the symmetric normalized affinity of bipartite X.  Because each
``L^X`` has spectral radius ≤ 1, the system matrix is positive definite and
conjugate gradients converge quickly (the paper cites the nearly-linear-time
solver of Spielman & Teng for the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import LinearOperator, cg, factorized

from repro.graphs.matrices import BipartiteMatrices
from repro.graphs.multibipartite import BIPARTITE_KINDS

try:  # direct matvec kernel; skips per-CG-iteration Python dispatch
    from scipy.sparse._sparsetools import csr_matvec as _csr_matvec
except ImportError:  # pragma: no cover - exercised only on exotic scipy
    _csr_matvec = None

__all__ = [
    "RegularizationConfig",
    "RelevanceSolver",
    "solve_relevance",
    "system_matrix",
]


@dataclass(frozen=True)
class RegularizationConfig:
    """Parameters of the Eq. 15 solve.

    Attributes:
        alphas: Per-bipartite Lagrange multipliers ``α_X``; the paper notes
            the result "is not very sensitive to α" and tunes empirically —
            equal weights are the default.
        tolerance: Conjugate-gradient relative tolerance.
        max_iterations: CG iteration cap before falling back to a direct
            sparse solve.
    """

    alphas: dict[str, float] = field(
        default_factory=lambda: {"U": 1.0, "S": 1.0, "T": 1.0}
    )
    tolerance: float = 1e-8
    max_iterations: int = 500

    def __post_init__(self) -> None:
        missing = set(BIPARTITE_KINDS) - set(self.alphas)
        if missing:
            raise ValueError(f"alphas missing kinds: {sorted(missing)}")
        for kind, alpha in self.alphas.items():
            if alpha < 0:
                raise ValueError(f"alpha[{kind}] must be >= 0, got {alpha}")
        if sum(self.alphas.values()) <= 0:
            raise ValueError("at least one alpha must be positive")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


def system_matrix(
    matrices: BipartiteMatrices, config: RegularizationConfig
) -> sparse.csr_matrix:
    """The Eq. 15 coefficient matrix ``(1 + Σα) I − Σ α_X L^X``."""
    n = matrices.n_queries
    total_alpha = sum(config.alphas.values())
    system = sparse.identity(n, format="csr") * (1.0 + total_alpha)
    for kind in BIPARTITE_KINDS:
        alpha = config.alphas[kind]
        if alpha > 0:
            system = system - alpha * matrices.affinity[kind]
    return system.tocsr()


_DENSE_LIMIT = 1024  # compact systems below this order solve as dense arrays


class RelevanceSolver:
    """Reusable Eq. 15 solver bound to one compact representation.

    Building the system matrix (and, on the rare CG failure, its
    factorization) is independent of the right-hand side, so a cached
    solver amortizes that work across every request hitting the same
    compact neighbourhood — the serving fast path's per-entry solver.

    Compact systems (``n <= _DENSE_LIMIT``) are assembled and iterated as
    dense arrays: at serving sizes the BLAS gemv beats sparse matvec
    dispatch, and assembly skips the sparse add/subtract machinery.
    Larger systems keep the sparse representation.
    """

    def __init__(
        self,
        matrices: BipartiteMatrices,
        config: RegularizationConfig | None = None,
    ) -> None:
        self._config = config if config is not None else RegularizationConfig()
        self._matrices = matrices
        self._n = matrices.n_queries
        self._system: sparse.csr_matrix | None = None
        self._dense: np.ndarray | None = None
        self._factorized = None
        n = self._n
        if n <= _DENSE_LIMIT:
            total_alpha = sum(self._config.alphas.values())
            dense = np.zeros((n, n))
            for kind in BIPARTITE_KINDS:
                alpha = self._config.alphas[kind]
                if alpha > 0:
                    term = matrices.affinity[kind].toarray()
                    term *= -alpha
                    dense += term
            diagonal = np.arange(n)
            dense[diagonal, diagonal] += 1.0 + total_alpha
            self._dense = dense
            self._operator: object = dense
        else:
            self._system = system_matrix(matrices, self._config)
            if _csr_matvec is None:
                self._operator = self._system
            else:
                system = self._system

                def matvec(x: np.ndarray) -> np.ndarray:
                    out = np.zeros(n)
                    _csr_matvec(
                        n, n, system.indptr, system.indices, system.data,
                        np.ascontiguousarray(x, dtype=float).ravel(), out,
                    )
                    return out

                self._operator = LinearOperator(
                    (n, n), matvec=matvec, dtype=np.float64
                )

    @property
    def system(self) -> sparse.csr_matrix:
        """The Eq. 15 coefficient matrix (built lazily on the dense path)."""
        if self._system is None:
            self._system = system_matrix(self._matrices, self._config)
        return self._system

    def solve(self, f0: np.ndarray) -> np.ndarray:
        """``F*`` for the context vector ``F⁰`` (same semantics as
        :func:`solve_relevance`)."""
        if f0.shape != (self._n,):
            raise ValueError(
                f"f0 has shape {f0.shape}, expected ({self._n},)"
            )
        solution, info = cg(
            self._operator,
            f0,
            rtol=self._config.tolerance,
            maxiter=self._config.max_iterations,
        )
        if info != 0:
            if self._dense is not None:
                solution = np.linalg.solve(self._dense, f0)
            else:
                if self._factorized is None:
                    self._factorized = factorized(self.system.tocsc())
                solution = self._factorized(f0)
        return np.asarray(solution).ravel()


def solve_relevance(
    matrices: BipartiteMatrices,
    f0: np.ndarray,
    config: RegularizationConfig | None = None,
) -> np.ndarray:
    """Solve Eq. 15 for ``F*`` given the context vector ``F⁰``.

    Uses conjugate gradients (the matrix is symmetric positive definite);
    falls back to a direct (factorized) sparse solve if CG fails to
    converge.  Repeated solves against one compact representation should
    build a :class:`RelevanceSolver` once instead.
    """
    return RelevanceSolver(matrices, config).solve(f0)
