"""Exporters: registry snapshots as JSON or Prometheus text format.

Both exporters consume the plain-dict snapshot of
:meth:`repro.obs.registry.MetricsRegistry.snapshot` (or the same dict
loaded back from a ``--metrics-out`` JSON file), so the two formats are
guaranteed to render identical values — the acceptance property the
export-parity tests pin.

Prometheus rendering follows the text exposition format: dotted metric
names become ``repro_``-prefixed underscore names, counters gain the
``_total`` suffix, histograms emit cumulative ``_bucket{le=...}`` lines
plus ``_sum``/``_count``.  Series (which Prometheus has no native type
for) are flattened to a ``_last`` gauge and a ``_samples`` counter.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["to_json", "to_prometheus", "write_json"]


def to_json(snapshot: dict, indent: int = 2) -> str:
    """Render a registry *snapshot* as a JSON document."""
    return json.dumps(snapshot, indent=indent, sort_keys=False) + "\n"


def write_json(snapshot: dict, path: str | Path) -> Path:
    """Write :func:`to_json` of *snapshot* to *path*; return the path."""
    path = Path(path)
    path.write_text(to_json(snapshot), encoding="utf-8")
    return path


def _prom_name(name: str) -> str:
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{sanitized}"


def _prom_escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_prom_escape(merged[key])}"' for key in sorted(merged)
    )
    return "{" + body + "}"


def _prom_number(value) -> str:
    if value == "+Inf":
        return "+Inf"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def to_prometheus(snapshot: dict) -> str:
    """Render a registry *snapshot* in the Prometheus text format."""
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, prom_type: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {prom_type}")

    for entry in snapshot.get("metrics", ()):
        kind = entry["type"]
        labels = entry.get("labels", {})
        if kind == "counter":
            name = _prom_name(entry["name"]) + "_total"
            declare(name, "counter")
            lines.append(
                f"{name}{_prom_labels(labels)} "
                f"{_prom_number(entry['value'])}"
            )
        elif kind == "gauge":
            name = _prom_name(entry["name"])
            declare(name, "gauge")
            lines.append(
                f"{name}{_prom_labels(labels)} "
                f"{_prom_number(entry['value'])}"
            )
        elif kind == "histogram":
            name = _prom_name(entry["name"])
            declare(name, "histogram")
            for bound, cumulative in entry["buckets"]:
                le = "+Inf" if bound == "+Inf" else _prom_number(bound)
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, {'le': le})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{name}_sum{_prom_labels(labels)} "
                f"{_prom_number(entry['sum'])}"
            )
            lines.append(
                f"{name}_count{_prom_labels(labels)} {entry['count']}"
            )
        elif kind == "series":
            name = _prom_name(entry["name"])
            values = entry.get("values", [])
            declare(name + "_last", "gauge")
            if values:
                lines.append(
                    f"{name}_last{_prom_labels(labels)} "
                    f"{_prom_number(values[-1])}"
                )
            declare(name + "_samples", "counter")
            lines.append(
                f"{name}_samples{_prom_labels(labels)} {len(values)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")
