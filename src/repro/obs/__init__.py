"""Observability: metrics registry, trace spans, JSON/Prometheus export.

Zero-dependency, thread-safe, and null-object-by-default: every
instrumented subsystem (serving cache, suggester stages, streaming
ingest/epochs, UPM training) is born bound to :data:`NULL_REGISTRY` /
:data:`NULL_TRACER` and pays only a no-op method call per event until a
real registry is attached::

    from repro.obs import MetricsRegistry
    from repro.obs.export import to_prometheus, write_json

    registry = MetricsRegistry()
    suggester.attach_metrics(registry)       # PQSDA, CompactCache, tracer
    suggester.suggest("sun java", k=10)

    print(suggester.last_trace.to_dict())    # span tree of that call
    write_json(registry.snapshot(), "metrics.json")
    print(to_prometheus(registry.snapshot()))

The metric name catalogue and the span hierarchy of one ``suggest``
call are documented in ``docs/algorithms.md`` ("Observability"); the
scale-out pool additionally exports the ``serve.pool.*`` and
``serve.profile.*`` families (the latter covering shared-profile-plane
lookups, unprofiled misses, profiled-user counts, and generation swaps).
"""

from repro.obs.export import to_json, to_prometheus, write_json
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    Series,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "Series",
    "Span",
    "Tracer",
    "to_json",
    "to_prometheus",
    "write_json",
]
