"""Trace spans: nested per-stage wall-clock for one request.

A :class:`Tracer` hands out context-manager spans.  Spans opened while
another span is active on the same thread become its children, so one
``suggest`` call yields a tree::

    suggest
    ├── expand          (cache lookup / compact-entry build)
    ├── solve           (Eq. 15 regularization system)
    ├── walk            (truncated cross-bipartite hitting time)
    └── rerank          (UPM scoring + Borda fusion)

Each span is opened and closed exactly once on the thread that created
it, so it is clocked by a pair of plain ``perf_counter`` reads (no lock,
no allocation beyond the span itself) and, on exit, observes its
duration into the bound registry's ``trace.span.seconds`` histogram
labelled by span name — which is how the per-stage latency breakdown
reaches the JSON / Prometheus exporters.  Cross-span nesting safety
comes from the thread-local span stack, not from the clock.

The span stack is thread-local: concurrent requests in a
``suggest_batch`` worker pool each grow their own tree, and
:attr:`Tracer.last_trace` returns the calling thread's most recently
completed root span.

:data:`NULL_TRACER` is the null object bound by default: ``span()``
returns a shared no-op context manager, keeping untraced hot paths at
one method call of overhead per stage.
"""

from __future__ import annotations

import threading
from time import perf_counter

from repro.obs.registry import NULL_REGISTRY

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]

#: Metric name of the per-span duration histogram.
SPAN_HISTOGRAM = "trace.span.seconds"


class Span:
    """One timed stage, with child spans opened while it was active.

    Attributes:
        name: Stage label (``"suggest"``, ``"expand"``, ...).
        children: Sub-spans in open order.
    """

    __slots__ = ("children", "name", "_elapsed", "_start")

    def __init__(self, name: str) -> None:
        self.name = name
        self.children: list[Span] = []
        self._start = 0.0
        self._elapsed = 0.0

    @property
    def seconds(self) -> float:
        """Wall-clock seconds of this span (0.0 while still open)."""
        return self._elapsed

    def find(self, name: str) -> "Span | None":
        """This span or its first descendant (depth-first) named *name*."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def to_dict(self) -> dict:
        """JSON-serializable tree: name, seconds, children."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.seconds * 1000:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _ActiveSpan:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_name", "_span", "_tracer")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._span: Span | None = None

    def __enter__(self) -> Span:
        span = Span(self._name)
        stack = self._tracer._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        self._span = span
        span._start = perf_counter()
        return span

    def __exit__(self, *exc_info: object) -> None:
        stop = perf_counter()
        span = self._span
        assert span is not None
        span._elapsed = stop - span._start
        stack = self._tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._tracer._finish(span, root=not stack)


class Tracer:
    """Produces nested spans and routes their timings into a registry."""

    def __init__(self, registry=None) -> None:
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._local = threading.local()
        # Per-name histogram instruments, cached so span exit skips the
        # registry's get-or-create path (label normalization + lock).  A
        # racing first-miss is benign: the registry hands back the same
        # instrument for the same identity.
        self._histograms: dict[str, object] = {}

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> _ActiveSpan:
        """A context manager timing one *name* stage (nested under the
        thread's currently open span, if any)."""
        return _ActiveSpan(self, name)

    def _finish(self, span: Span, root: bool) -> None:
        histogram = self._histograms.get(span.name)
        if histogram is None:
            histogram = self._histograms[span.name] = self._registry.histogram(
                SPAN_HISTOGRAM, labels={"span": span.name}
            )
        histogram.observe(span._elapsed)
        if root:
            self._local.last = span

    @property
    def last_trace(self) -> Span | None:
        """The calling thread's most recently completed root span."""
        return getattr(self._local, "last", None)


class _NullSpan:
    """Shared no-op span context manager."""

    __slots__ = ()
    name = ""
    seconds = 0.0
    children: list = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The null-object tracer: spans are shared no-ops, no tree is kept."""

    __slots__ = ()

    def span(self, name: str) -> _NullSpan:
        """A shared no-op context manager."""
        return _NULL_SPAN

    @property
    def last_trace(self) -> None:
        """Always ``None``."""
        return None


#: Process-wide null tracer — the default binding of traced hot paths.
NULL_TRACER = NullTracer()
