"""Thread-safe metrics primitives: counters, gauges, histograms, series.

The registry is the write-side of the observability layer.  Hot paths
hold direct references to their instruments (one attribute access + one
lock-guarded addition per event); readers call
:meth:`MetricsRegistry.snapshot` to get a consistent, immutable,
JSON-serializable view that the exporters in :mod:`repro.obs.export`
render.

**Null-object default.**  Every instrumented subsystem starts bound to
:data:`NULL_REGISTRY`, whose instruments are shared no-op singletons —
instrumentation with no registry attached costs one no-op method call
per event (the overhead guard in ``scripts/bench_smoke.py`` pins this
below 5 % end to end).  Attach a real :class:`MetricsRegistry` to turn
the same call sites into live metrics.

Metric identity is ``(name, labels)``: asking the registry twice for the
same name and labels returns the same instrument; the same name with a
different type (or different histogram buckets) is an error.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections.abc import Mapping

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "Series",
]

#: Default histogram bucket upper bounds (seconds): spans sub-millisecond
#: cache hits through multi-second training sweeps.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: Mapping[str, str] | None) -> tuple:
    return tuple(sorted(labels.items())) if labels else ()


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        """Add *n* (must be >= 0) to the count."""
        if n < 0:
            raise ValueError(f"counters only go up, got inc({n})")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depths, live-object counts)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int | float) -> None:
        """Replace the gauge value."""
        with self._lock:
            self._value = value

    def inc(self, n: int | float = 1) -> None:
        """Add *n* to the gauge."""
        with self._lock:
            self._value += n

    def dec(self, n: int | float = 1) -> None:
        """Subtract *n* from the gauge."""
        with self._lock:
            self._value -= n

    @property
    def value(self) -> int | float:
        """The current value."""
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bound bucketed distribution (Prometheus-style, cumulative).

    Bucket bounds are upper bounds: an observation lands in the first
    bucket whose bound is >= the value; values above the largest bound
    land in the implicit ``+Inf`` overflow bucket.
    """

    __slots__ = ("_bounds", "_counts", "_lock", "_sum")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self._bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(self._bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._lock = threading.Lock()

    @property
    def bounds(self) -> tuple[float, ...]:
        """The finite bucket upper bounds."""
        return self._bounds

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def count(self) -> int:
        """Total observations."""
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 before the first observation)."""
        with self._lock:
            total = sum(self._counts)
            return self._sum / total if total else 0.0

    def _snapshot(self) -> tuple[list[int], float]:
        """(per-bucket counts incl. +Inf, sum) under the lock."""
        with self._lock:
            return list(self._counts), self._sum


class Series:
    """An append-only sample log (per-sweep training curves).

    Unlike a histogram, a series keeps every sample in order — what the
    UPM pseudo-log-likelihood curve needs.  Bounded use only: one sample
    per Gibbs sweep / ingest run, never per request.
    """

    __slots__ = ("_lock", "_values")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: list[float] = []

    def append(self, value: float) -> None:
        """Append one sample."""
        with self._lock:
            self._values.append(float(value))

    @property
    def values(self) -> tuple[float, ...]:
        """All samples, in append order."""
        with self._lock:
            return tuple(self._values)

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)


_TYPE_NAMES = {
    Counter: "counter",
    Gauge: "gauge",
    Histogram: "histogram",
    Series: "series",
}


class MetricsRegistry:
    """Named, labelled instruments with a consistent snapshot view.

    ``counter``/``gauge``/``histogram``/``series`` are
    get-or-create: the first call fixes the metric's type (and a
    histogram's buckets); later calls with the same name and labels
    return the same instrument, and conflicting re-registrations raise
    ``ValueError``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (type name, buckets | None, {label key -> instrument})
        self._families: dict[str, tuple[str, tuple | None, dict]] = {}

    def _get(
        self,
        cls,
        name: str,
        labels: Mapping[str, str] | None,
        buckets: tuple[float, ...] | None = None,
    ):
        type_name = _TYPE_NAMES[cls]
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (type_name, buckets, {})
                self._families[name] = family
            elif family[0] != type_name:
                raise ValueError(
                    f"metric {name!r} is a {family[0]}, not a {type_name}"
                )
            elif buckets is not None and family[1] != buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{family[1]}"
                )
            instruments = family[2]
            instrument = instruments.get(key)
            if instrument is None:
                if cls is Histogram:
                    bounds = family[1] or DEFAULT_LATENCY_BUCKETS
                    instrument = Histogram(bounds)
                else:
                    instrument = cls()
                instruments[key] = instrument
            return instrument

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Counter:
        """Get or create the counter *name* with *labels*."""
        return self._get(Counter, name, labels)

    def gauge(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Gauge:
        """Get or create the gauge *name* with *labels*."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create the histogram *name*; *buckets* fixes the bounds."""
        if buckets is None:
            buckets = DEFAULT_LATENCY_BUCKETS
        else:
            buckets = tuple(float(b) for b in buckets)
        return self._get(Histogram, name, labels, buckets)

    def series(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Series:
        """Get or create the series *name* with *labels*."""
        return self._get(Series, name, labels)

    def snapshot(self) -> dict:
        """A point-in-time, JSON-serializable view of every metric.

        Deterministic ordering (by name, then sorted labels); histogram
        buckets are rendered *cumulatively* with a final ``"+Inf"`` bound,
        matching the Prometheus exposition convention so both exporters
        read the same structure.
        """
        with self._lock:
            families = {
                name: (type_name, dict(instruments))
                for name, (type_name, _, instruments) in self._families.items()
            }
        metrics: list[dict] = []
        for name in sorted(families):
            type_name, instruments = families[name]
            for key in sorted(instruments):
                instrument = instruments[key]
                entry: dict = {
                    "name": name,
                    "type": type_name,
                    "labels": dict(key),
                }
                if type_name in ("counter", "gauge"):
                    entry["value"] = instrument.value
                elif type_name == "histogram":
                    counts, total = instrument._snapshot()
                    cumulative: list[list] = []
                    running = 0
                    for bound, count in zip(instrument.bounds, counts):
                        running += count
                        cumulative.append([bound, running])
                    cumulative.append(["+Inf", running + counts[-1]])
                    entry["buckets"] = cumulative
                    entry["count"] = cumulative[-1][1]
                    entry["sum"] = total
                else:  # series
                    values = list(instrument.values)
                    entry["values"] = values
                    entry["count"] = len(values)
                metrics.append(entry)
        return {"metrics": metrics}


class _NullInstrument:
    """Shared no-op instrument: every mutator is a pass-through."""

    __slots__ = ()

    def inc(self, n: int | float = 1) -> None:
        pass

    def dec(self, n: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The null-object registry: hands out shared no-op instruments.

    Every lookup returns the same do-nothing singleton, so the
    instrumented hot paths pay only a no-op method call per event when
    observability is not attached.
    """

    __slots__ = ()

    def counter(self, name, labels=None) -> _NullInstrument:
        """A shared no-op instrument."""
        return _NULL_INSTRUMENT

    def gauge(self, name, labels=None) -> _NullInstrument:
        """A shared no-op instrument."""
        return _NULL_INSTRUMENT

    def histogram(self, name, labels=None, buckets=None) -> _NullInstrument:
        """A shared no-op instrument."""
        return _NULL_INSTRUMENT

    def series(self, name, labels=None) -> _NullInstrument:
        """A shared no-op instrument."""
        return _NULL_INSTRUMENT

    def snapshot(self) -> dict:
        """Always empty."""
        return {"metrics": []}


#: Process-wide null registry — the default binding of every
#: instrumented subsystem.
NULL_REGISTRY = NullRegistry()
