"""Ranking helpers: ranked lists, Borda aggregation, rank correlation.

Borda's method (Schalekamp & van Zuylen, ALENEX 2009) is how PQS-DA fuses the
diversification ranking with the personalization ranking (paper Sec. V-B).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TypeVar

__all__ = [
    "RankedList",
    "borda_aggregate",
    "kendall_tau_distance",
    "ranks_from_scores",
]

Item = TypeVar("Item", bound=Hashable)


class RankedList(Sequence[Item]):
    """An ordered list of distinct items with O(1) rank lookup.

    Rank is 0-based: ``ranked.rank_of(ranked[0]) == 0``.
    """

    def __init__(self, items: Iterable[Item]) -> None:
        self._items: list[Item] = list(items)
        self._rank: dict[Item, int] = {}
        for rank, item in enumerate(self._items):
            if item in self._rank:
                raise ValueError(f"duplicate item in RankedList: {item!r}")
            self._rank[item] = rank

    def __getitem__(self, index):  # type: ignore[override]
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._rank

    def __repr__(self) -> str:
        return f"RankedList({self._items!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RankedList):
            return self._items == other._items
        if isinstance(other, list):
            return self._items == other
        return NotImplemented

    def rank_of(self, item: Item) -> int:
        """0-based rank of *item*; raises ``KeyError`` if absent."""
        return self._rank[item]

    def top(self, k: int) -> list[Item]:
        """The first *k* items (fewer if the list is shorter)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self._items[:k]


def ranks_from_scores(
    scores: Mapping[Item, float], descending: bool = True
) -> RankedList[Item]:
    """Build a :class:`RankedList` from a score map (ties broken by item repr).

    The deterministic tie-break keeps experiments reproducible across runs
    regardless of dict insertion order.
    """
    ordered = sorted(
        scores.items(),
        key=lambda pair: (-pair[1] if descending else pair[1], repr(pair[0])),
    )
    return RankedList(item for item, _ in ordered)


def borda_aggregate(
    rankings: Sequence[Sequence[Item]],
    weights: Sequence[float] | None = None,
) -> RankedList[Item]:
    """Aggregate several rankings with (weighted) Borda counting.

    Each ranking awards ``n - rank`` points to the item at *rank* (where *n*
    is the universe size, the union of all ranked items); items missing from
    a ranking receive 0 points from it.  Ties are broken by the item's rank
    in the first ranking (then by repr), so the diversification order acts as
    the stable reference, matching the paper's usage.
    """
    if not rankings:
        raise ValueError("borda_aggregate requires at least one ranking")
    if weights is None:
        weights = [1.0] * len(rankings)
    if len(weights) != len(rankings):
        raise ValueError(
            f"got {len(weights)} weights for {len(rankings)} rankings"
        )

    universe: list[Item] = []
    seen: set[Item] = set()
    for ranking in rankings:
        for item in ranking:
            if item not in seen:
                seen.add(item)
                universe.append(item)

    n = len(universe)
    points: dict[Item, float] = {item: 0.0 for item in universe}
    for weight, ranking in zip(weights, rankings):
        for rank, item in enumerate(ranking):
            points[item] += weight * (n - rank)

    first = rankings[0]
    reference_rank = {item: rank for rank, item in enumerate(first)}

    def sort_key(item: Item) -> tuple[float, int, str]:
        return (-points[item], reference_rank.get(item, n), repr(item))

    return RankedList(sorted(universe, key=sort_key))


def kendall_tau_distance(left: Sequence[Item], right: Sequence[Item]) -> float:
    """Normalized Kendall tau distance between two rankings of the same set.

    0.0 means identical order, 1.0 means exactly reversed.  Used by tests and
    ablations to quantify how much personalization reorders the
    diversification list.
    """
    if set(left) != set(right):
        raise ValueError("rankings must cover the same item set")
    n = len(left)
    if n < 2:
        return 0.0
    position = {item: index for index, item in enumerate(right)}
    mapped = [position[item] for item in left]
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if mapped[i] > mapped[j]:
                discordant += 1
    return discordant / (n * (n - 1) / 2)
