"""Wall-clock timing helper used by the efficiency experiments (Fig. 7).

Also the clock behind the observability trace spans
(:mod:`repro.obs.trace`), which nest and run concurrently — hence the
per-thread start stacks below.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single instance can be re-entered; ``elapsed`` accumulates across
    entries, which is what the Fig. 7 harness needs when timing many
    suggestion calls for one configuration::

        timer = Timer()
        for query in workload:
            with timer:
                suggester.suggest(query)
        mean_latency = timer.elapsed / len(workload)

    Entries may nest and may run concurrently from multiple threads:
    each thread keeps its own stack of start times, so an inner block
    never clobbers the outer block's start (nested blocks therefore
    *both* accumulate — the outer block's time includes the inner's),
    and concurrent blocks in different threads are timed independently.
    The ``elapsed``/``calls`` accumulators are lock-guarded.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> list[float]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def __enter__(self) -> "Timer":
        self._stack().append(time.perf_counter())
        return self

    def __exit__(self, *exc_info: object) -> None:
        stack = self._stack()
        if not stack:
            raise RuntimeError("Timer.__exit__ called without __enter__")
        started_at = stack.pop()
        duration = time.perf_counter() - started_at
        with self._lock:
            self.elapsed += duration
            self.calls += 1

    @property
    def mean(self) -> float:
        """Mean seconds per timed block (0.0 before the first block ends)."""
        if self.calls == 0:
            return 0.0
        return self.elapsed / self.calls

    def reset(self) -> None:
        """Zero the accumulated time and call count.

        Blocks already entered (in any thread) keep their start times and
        will still accumulate when they exit.
        """
        with self._lock:
            self.elapsed = 0.0
            self.calls = 0
