"""Wall-clock timing helper used by the efficiency experiments (Fig. 7)."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating elapsed wall-clock seconds.

    A single instance can be re-entered; ``elapsed`` accumulates across
    entries, which is what the Fig. 7 harness needs when timing many
    suggestion calls for one configuration::

        timer = Timer()
        for query in workload:
            with timer:
                suggester.suggest(query)
        mean_latency = timer.elapsed / len(workload)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.calls = 0
        self._started_at: float | None = None

    def __enter__(self) -> "Timer":
        self._started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._started_at is None:
            raise RuntimeError("Timer.__exit__ called without __enter__")
        self.elapsed += time.perf_counter() - self._started_at
        self.calls += 1
        self._started_at = None

    @property
    def mean(self) -> float:
        """Mean seconds per timed block (0.0 before the first block ends)."""
        if self.calls == 0:
            return 0.0
        return self.elapsed / self.calls

    def reset(self) -> None:
        """Zero the accumulated time and call count."""
        self.elapsed = 0.0
        self.calls = 0
        self._started_at = None
