"""Centralized random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or a
``numpy.random.Generator``.  Funnelling construction through :func:`ensure_rng`
keeps experiments reproducible and lets a single root seed drive independent
sub-streams via :func:`derive_rng`.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = [
    "ensure_rng",
    "derive_rng",
    "sample_index",
    "sample_index_with_total",
]


def sample_index_with_total(
    rng: np.random.Generator, weights: np.ndarray
) -> tuple[int, float]:
    """:func:`sample_index` that also returns the weight total.

    The Gibbs samplers need the normalizer anyway (to record the log
    probability of the drawn index); returning the cumulative sum's last
    element avoids a second pass over the weights.  The drawn index is
    bit-identical to :func:`sample_index` for the same generator state.
    """
    cumulative = np.asarray(weights).cumsum()
    total = cumulative[-1]
    if not total > 0:
        raise ValueError("weights must have positive sum")
    draw = rng.random() * total
    index = int(cumulative.searchsorted(draw, side="right"))
    return min(index, len(cumulative) - 1), float(total)


def sample_index(rng: np.random.Generator, weights: np.ndarray) -> int:
    """Draw an index proportionally to non-negative *weights*.

    Inverse-CDF sampling on the unnormalized cumulative sum with a single
    uniform draw — the Gibbs-sweep inner loop's replacement for
    ``rng.choice(K, p=weights / weights.sum())``, which re-validates and
    normalizes the distribution on every call.
    """
    return sample_index_with_total(rng, weights)[0]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for *seed*.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS-entropy generator).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *keys: int | str) -> np.random.Generator:
    """Derive an independent child generator from *rng* and a key path.

    The child stream is a deterministic function of the parent stream state
    and the key path, so components that consume randomness in data-dependent
    order can still be made reproducible by deriving one child per component.
    """
    material = [int(rng.integers(0, 2**31 - 1))]
    for key in keys:
        if isinstance(key, str):
            # zlib.crc32 is stable across processes, unlike built-in hash().
            material.append(zlib.crc32(key.encode("utf-8")))
        else:
            material.append(int(key) % (2**31 - 1))
    return np.random.default_rng(np.random.SeedSequence(material))
