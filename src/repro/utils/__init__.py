"""Shared utilities: seeded RNG plumbing, tokenization, timing, ranking helpers.

These modules carry no knowledge of the PQS-DA algorithms; they exist so that
every other subpackage can rely on one tokenizer, one way of creating random
generators and one set of rank-manipulation helpers.
"""

from repro.utils.ranking import (
    RankedList,
    borda_aggregate,
    kendall_tau_distance,
    ranks_from_scores,
)
from repro.utils.rng import derive_rng, ensure_rng
from repro.utils.text import normalize_query, tokenize
from repro.utils.timer import Timer
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "RankedList",
    "Timer",
    "borda_aggregate",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "derive_rng",
    "ensure_rng",
    "kendall_tau_distance",
    "normalize_query",
    "ranks_from_scores",
    "tokenize",
]
