"""Query-text normalization and tokenization.

The paper's pipelines treat a query as a bag of lower-cased terms; the
query-term bipartite (Sec. III) and the PPR metric (Sec. VI-C) both depend on
one shared notion of "the terms of a query", which this module provides.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable

__all__ = [
    "STOPWORDS",
    "cosine_similarity_bags",
    "jaccard",
    "normalize_query",
    "term_vector",
    "tokenize",
]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Minimal English stopword list.  Query-log vocabularies are tiny and
#: navigational, so an aggressive list would destroy signal; we only remove
#: pure function words that carry no topical meaning.
STOPWORDS: frozenset[str] = frozenset(
    """a an and are as at be by for from has have how in is it of on or that
    the this to was what when where which who will with www com http https
    htm html""".split()
)


def normalize_query(query: str) -> str:
    """Lower-case *query* and collapse every non-alphanumeric run to a space.

    This mirrors the cleaning applied to the AOL log before analysis and
    guarantees ``normalize_query(q) == " ".join(tokenize(q, drop_stopwords=False))``.
    """
    return " ".join(_TOKEN_RE.findall(query.lower()))


def tokenize(text: str, drop_stopwords: bool = True) -> list[str]:
    """Split *text* into lower-case alphanumeric terms.

    Stopwords are dropped by default because both the query-term bipartite
    and UPM's word channel only care about topical terms.
    """
    tokens = _TOKEN_RE.findall(text.lower())
    if drop_stopwords:
        return [token for token in tokens if token not in STOPWORDS]
    return tokens


def term_vector(text: str) -> Counter[str]:
    """Return the term-frequency vector of *text* as a :class:`Counter`."""
    return Counter(tokenize(text))


def cosine_similarity_bags(left: Counter[str], right: Counter[str]) -> float:
    """Cosine similarity of two bag-of-words vectors.

    Returns 0.0 when either bag is empty.  Used by the PPR metric
    (suggested-query terms vs. clicked-page title terms).
    """
    if not left or not right:
        return 0.0
    shared = set(left) & set(right)
    dot = sum(left[term] * right[term] for term in shared)
    if dot == 0:
        return 0.0
    left_norm = sum(count * count for count in left.values()) ** 0.5
    right_norm = sum(count * count for count in right.values()) ** 0.5
    return dot / (left_norm * right_norm)


def jaccard(left: Iterable[str], right: Iterable[str]) -> float:
    """Jaccard overlap of two term collections (0.0 for two empty sets)."""
    left_set, right_set = set(left), set(right)
    union = left_set | right_set
    if not union:
        return 0.0
    return len(left_set & right_set) / len(union)
