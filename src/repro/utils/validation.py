"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

__all__ = [
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
]


def check_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value > 0``; return *value*."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value >= 0``; return *value*."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``0 <= value <= 1``; return *value*."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_in_range(
    name: str, value: float, low: float, high: float, inclusive: bool = True
) -> float:
    """Raise ``ValueError`` unless *value* lies in [low, high] (or (low, high))."""
    if inclusive:
        if not low <= value <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not low < value < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value
