"""Reproduction of *Personalized Query Suggestion With Diversity Awareness*
(Jiang, Leung, Vosecky & Ng, ICDE 2014).

The package implements the complete PQS-DA framework — multi-bipartite
query-log representation, diversification via regularized relevance +
cross-bipartite hitting time, and UPM-based personalization — together with
every baseline and metric of the paper's evaluation, on a synthetic
AOL-compatible search-world substrate.

Quickstart::

    from repro import PQSDA, GeneratorConfig, generate_log, make_world

    world = make_world(seed=0)
    synthetic = generate_log(world, GeneratorConfig(n_users=50, seed=0))
    pqsda = PQSDA.build(synthetic.log, sessions=synthetic.sessions)
    print(pqsda.suggest("sun", k=10, user_id="user0001"))
"""

from repro.core import PQSDA, PQSDAConfig
from repro.logs import QueryLog, QueryRecord, Session, read_aol, write_aol
from repro.synth import (
    GeneratorConfig,
    Oracle,
    SyntheticWorld,
    generate_log,
    make_world,
)

__version__ = "1.0.0"

__all__ = [
    "GeneratorConfig",
    "Oracle",
    "PQSDA",
    "PQSDAConfig",
    "QueryLog",
    "QueryRecord",
    "Session",
    "SyntheticWorld",
    "__version__",
    "generate_log",
    "make_world",
    "read_aol",
    "write_aol",
]
