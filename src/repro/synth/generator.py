"""Query-log generator: turns the synthetic world into an AOL-style log.

The generator emits, per user, a sequence of search sessions.  Each session
serves a single intent (a taxonomy leaf drawn from the user's drifted
preferences); its queries are reformulation chains over the leaf's
vocabulary, seeded with ambiguous terms at a configurable rate so the log
contains exactly the query-uncertainty scenario the paper targets; clicks
land on the leaf's synthetic pages, with bounded noise.

All ground truth (session intent, per-record intent, per-query dominant
category) is retained in :class:`SyntheticLog` for the oracle and metrics.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.logs.schema import QueryRecord, Session
from repro.logs.storage import QueryLog
from repro.synth.taxonomy import Category
from repro.synth.users import UserModel, UserPopulation
from repro.synth.world import SyntheticWorld
from repro.utils.rng import ensure_rng
from repro.utils.text import normalize_query
from repro.utils.validation import check_positive, check_probability

__all__ = ["GeneratorConfig", "SyntheticLog", "generate_log"]

#: Earliest timestamp of generated logs: 2012-01-01 00:00:00 UTC, matching
#: the paper's example era.
_EPOCH_START = 1325376000.0


@dataclass(frozen=True, slots=True)
class GeneratorConfig:
    """Knobs of :func:`generate_log`.

    Attributes:
        n_users: Number of users to simulate.
        mean_sessions_per_user: Poisson mean of sessions per user.
        min_sessions_per_user: Hard floor of sessions per user (so that the
            personalization experiments always have history + test sessions).
        mean_queries_per_session: Poisson mean (>=1 enforced) of queries in a
            session.
        click_probability: Chance a query records a click.
        noise_click_probability: Chance that a recorded click lands on a page
            of a *random* leaf instead of the intent leaf (clickthrough
            noise, Sec. III's motivation for robust weighting).
        hub_click_probability: Chance that a recorded click lands on one of
            a handful of cross-topic *hub* URLs (portals, search front
            pages).  Hubs connect unrelated queries in the click graph —
            exactly the "heavily clicked URL with a high query frequency is
            less discriminative" scenario that the iqf weighting (Eq. 1)
            targets.  Hub URLs are outside the synthetic web (they have no
            topical category or title).
        n_hub_urls: Number of distinct hub URLs.
        ambiguous_rate: Chance a session opens with an ambiguous term when
            its intent leaf has one.
        requery_rate: Chance a session opens by re-issuing one of the user's
            own earlier queries on the same leaf (re-finding behaviour —
            real logs are heavily repetitive per user).
        offtopic_session_rate: Chance a session's intent is drawn uniformly
            from all leaves rather than from the user's interests (preference
            dynamics / exploration).
        span_days: Length of the simulated time window.
        intra_query_gap_seconds: Mean pause between queries in a session.
        seed: Root seed for the generation stream.
    """

    n_users: int = 50
    mean_sessions_per_user: float = 10.0
    min_sessions_per_user: int = 3
    mean_queries_per_session: float = 2.5
    click_probability: float = 0.75
    noise_click_probability: float = 0.05
    hub_click_probability: float = 0.0
    n_hub_urls: int = 5
    ambiguous_rate: float = 0.35
    requery_rate: float = 0.45
    offtopic_session_rate: float = 0.1
    span_days: float = 90.0
    intra_query_gap_seconds: float = 45.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError("n_users must be >= 1")
        check_positive("mean_sessions_per_user", self.mean_sessions_per_user)
        if self.min_sessions_per_user < 1:
            raise ValueError("min_sessions_per_user must be >= 1")
        check_positive("mean_queries_per_session", self.mean_queries_per_session)
        check_probability("click_probability", self.click_probability)
        check_probability("noise_click_probability", self.noise_click_probability)
        check_probability("hub_click_probability", self.hub_click_probability)
        if self.n_hub_urls < 1:
            raise ValueError("n_hub_urls must be >= 1")
        check_probability("ambiguous_rate", self.ambiguous_rate)
        check_probability("requery_rate", self.requery_rate)
        check_probability("offtopic_session_rate", self.offtopic_session_rate)
        check_positive("span_days", self.span_days)
        check_positive("intra_query_gap_seconds", self.intra_query_gap_seconds)


@dataclass(slots=True)
class SyntheticLog:
    """A generated log plus its ground truth.

    Attributes:
        log: The query log (records carry assigned ids).
        sessions: Ground-truth sessions (ids ``"{user}/{ordinal}"``).
        session_intent: Session id -> intent leaf.
        record_intent: Record id -> intent leaf of its session.
        query_category: Normalized query string -> dominant intent leaf over
            all its occurrences (the oracle's stand-in for an ODP lookup).
        population: The user population behind the log.
    """

    log: QueryLog
    sessions: list[Session]
    session_intent: dict[str, Category]
    record_intent: dict[int, Category]
    query_category: dict[str, Category]
    population: UserPopulation
    sessions_by_user: dict[str, list[Session]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.sessions_by_user:
            by_user: dict[str, list[Session]] = defaultdict(list)
            for session in self.sessions:
                by_user[session.user_id].append(session)
            self.sessions_by_user = dict(by_user)

    def sessions_of(self, user_id: str) -> list[Session]:
        """One user's ground-truth sessions in time order."""
        return list(self.sessions_by_user.get(user_id, []))


def _ambiguous_terms_of(world: SyntheticWorld, leaf: Category) -> list[str]:
    return [
        term
        for term in world.vocabulary.ambiguous_terms
        if leaf in world.vocabulary.leaves_of_term(term)
    ]


def _compose_queries(
    world: SyntheticWorld,
    user: UserModel,
    leaf: Category,
    n_queries: int,
    use_ambiguous: bool,
    rng: np.random.Generator,
    term_memory: list[str],
    reuse_term_rate: float = 0.5,
) -> list[str]:
    """Build a session's reformulation chain of *n_queries* query strings.

    *term_memory* holds the terms the user has used for this leaf before;
    fresh terms are drawn from it with probability *reuse_term_rate*
    (lexical re-finding), otherwise sampled from the biased leaf vocabulary.
    """
    vocabulary = world.vocabulary
    bias = user.word_bias.get(leaf)
    ambiguous = _ambiguous_terms_of(world, leaf) if use_ambiguous else []

    def fresh_term(exclude: list[str]) -> str:
        reusable = [t for t in term_memory if t not in exclude]
        if reusable and rng.random() < reuse_term_rate:
            return str(rng.choice(reusable))
        for candidate in vocabulary.sample_terms(leaf, 3, rng, bias=bias):
            if candidate not in exclude:
                return candidate
        return vocabulary.sample_terms(leaf, 1, rng, bias=bias)[0]

    queries: list[str] = []
    pool: list[str] = []
    for position in range(n_queries):
        if position == 0:
            if ambiguous:
                terms = [str(rng.choice(ambiguous))]
            else:
                terms = [fresh_term([])]
            if rng.random() < 0.35 and not ambiguous:
                terms.append(fresh_term(terms))
        else:
            # Reformulation: keep one earlier term, add one new topical term.
            terms = [str(rng.choice(pool))] if pool else []
            terms.append(fresh_term(terms))
        queries.append(" ".join(terms))
        for term in terms:
            if term not in pool:
                pool.append(term)
            if term not in term_memory and term not in ambiguous:
                term_memory.append(term)
    return queries


def generate_log(
    world: SyntheticWorld, config: GeneratorConfig | None = None
) -> SyntheticLog:
    """Generate a query log over *world* according to *config*."""
    if config is None:
        config = GeneratorConfig()
    rng = ensure_rng(config.seed)
    population = UserPopulation.generate(
        config.n_users,
        world.vocabulary,
        world.web,
        seed=ensure_rng(config.seed + 1),
    )

    span_seconds = config.span_days * 86400.0
    min_session_gap = 2 * 3600.0  # keep ground-truth sessions separable

    rows: list[QueryRecord] = []
    session_slices: list[tuple[str, str, int, int]] = []  # (sid, user, lo, hi)
    intents: list[Category] = []  # parallel to session_slices

    for user in population:
        past_queries: dict[Category, list[str]] = {}
        term_memories: dict[Category, list[str]] = {}
        n_sessions = max(
            config.min_sessions_per_user,
            int(rng.poisson(config.mean_sessions_per_user)),
        )
        starts = np.sort(rng.uniform(0.0, span_seconds, size=n_sessions))
        # Enforce a minimum inter-session gap.
        for i in range(1, n_sessions):
            if starts[i] - starts[i - 1] < min_session_gap:
                starts[i] = starts[i - 1] + min_session_gap
        for ordinal, start_offset in enumerate(starts):
            t_norm = float(min(start_offset / max(span_seconds, 1.0), 1.0))
            if rng.random() < config.offtopic_session_rate:
                intent = world.taxonomy.sample_leaf(rng)
            else:
                intent = user.sample_intent(t_norm, rng)
            n_queries = max(1, int(rng.poisson(config.mean_queries_per_session)))
            use_ambiguous = rng.random() < config.ambiguous_rate
            queries = _compose_queries(
                world,
                user,
                intent,
                n_queries,
                use_ambiguous,
                rng,
                term_memories.setdefault(intent, []),
            )
            # Re-finding: open the session with one of the user's earlier
            # queries on this leaf instead of a fresh formulation.
            memory = past_queries.setdefault(intent, [])
            if memory and rng.random() < config.requery_rate:
                queries[0] = str(rng.choice(memory))
            memory.extend(q for q in queries if q not in memory)

            lo = len(rows)
            timestamp = _EPOCH_START + start_offset
            for query in queries:
                clicked_url: str | None = None
                if rng.random() < config.click_probability:
                    if rng.random() < config.hub_click_probability:
                        hub = int(rng.integers(0, config.n_hub_urls))
                        clicked_url = f"www.hub-{hub}.example.com"
                    elif rng.random() < config.noise_click_probability:
                        noise_leaf = world.taxonomy.sample_leaf(rng)
                        clicked_url = world.web.sample_page(noise_leaf, rng).url
                    else:
                        url_bias = user.url_bias.get(intent)
                        clicked_url = world.web.sample_page(
                            intent, rng, bias=url_bias
                        ).url
                rows.append(
                    QueryRecord(
                        user_id=user.user_id,
                        query=query,
                        timestamp=round(timestamp),
                        clicked_url=clicked_url,
                    )
                )
                timestamp += float(
                    rng.exponential(config.intra_query_gap_seconds) + 5.0
                )
            session_slices.append(
                (f"{user.user_id}/{ordinal}", user.user_id, lo, len(rows))
            )
            intents.append(intent)

    log = QueryLog(rows)

    sessions: list[Session] = []
    session_intent: dict[str, Category] = {}
    record_intent: dict[int, Category] = {}
    occurrence_counts: dict[str, Counter[Category]] = defaultdict(Counter)
    for (session_id, user_id, lo, hi), intent in zip(session_slices, intents):
        records = [log[i] for i in range(lo, hi)]
        sessions.append(Session(session_id, user_id, records))
        session_intent[session_id] = intent
        for record in records:
            record_intent[record.record_id] = intent
            occurrence_counts[normalize_query(record.query)][intent] += 1

    query_category = {
        query: counts.most_common(1)[0][0]
        for query, counts in occurrence_counts.items()
    }

    return SyntheticLog(
        log=log,
        sessions=sessions,
        session_intent=session_intent,
        record_intent=record_intent,
        query_category=query_category,
        population=population,
    )
