"""Synthetic search world: the reproduction's substitute for the paper's
proprietary commercial query log and for the ODP (dmoz) directory.

The package builds, from a single seed:

* an ODP-like topic :mod:`taxonomy <repro.synth.taxonomy>`;
* per-category :mod:`vocabularies <repro.synth.vocabulary>` including the
  paper's *ambiguous terms* ("sun" belongs to Java, Astronomy and
  Newspapers);
* a titled synthetic :mod:`web <repro.synth.web>` (every URL carries a
  taxonomy path and a title — the "high-quality fields" that the PPR metric
  needs);
* a :mod:`user population <repro.synth.users>` with Dirichlet topic
  preferences, temporal drift and idiosyncratic word/URL choices;
* a query-log :mod:`generator <repro.synth.generator>` emitting AOL-format
  records, and a ground-truth :mod:`oracle <repro.synth.oracle>` that the
  evaluation metrics (Relevance, HPR) consult in place of ODP lookups and
  human raters.
"""

from repro.synth.generator import GeneratorConfig, SyntheticLog, generate_log
from repro.synth.oracle import Oracle, RaterPanel
from repro.synth.taxonomy import Category, Taxonomy, default_taxonomy
from repro.synth.users import UserModel, UserPopulation
from repro.synth.vocabulary import Vocabulary, build_vocabulary
from repro.synth.web import SyntheticWeb, WebPage, build_web
from repro.synth.world import SyntheticWorld, make_world

__all__ = [
    "Category",
    "GeneratorConfig",
    "Oracle",
    "RaterPanel",
    "SyntheticLog",
    "SyntheticWeb",
    "SyntheticWorld",
    "Taxonomy",
    "UserModel",
    "UserPopulation",
    "Vocabulary",
    "WebPage",
    "build_vocabulary",
    "build_web",
    "default_taxonomy",
    "generate_log",
    "make_world",
]
