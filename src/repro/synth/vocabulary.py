"""Per-category vocabularies, including the paper's ambiguous multi-facet terms.

Every taxonomy leaf owns a Zipf-weighted word list: a few curated *seed*
words (so that generated queries read like real ones — "sun java jvm") plus
deterministic filler words.  A small set of **ambiguous terms** is shared
between several leaves; these reproduce the paper's motivating example where
the query "sun" may mean Sun Microsystems, the star, or a UK newspaper.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.synth.taxonomy import Category, Taxonomy

__all__ = ["Vocabulary", "build_vocabulary", "SEED_WORDS", "AMBIGUOUS_TERMS"]

#: Curated topical seed words per default-taxonomy leaf (path string keys).
SEED_WORDS: dict[str, list[str]] = {
    "Arts/Music": ["guitar", "concert", "album", "lyrics", "band", "piano",
                   "melody", "vinyl", "chord", "orchestra"],
    "Arts/Movies": ["film", "trailer", "actor", "cinema", "director", "sequel",
                    "screenplay", "oscar", "premiere", "soundtrack"],
    "Arts/Literature": ["novel", "poem", "author", "fiction", "poetry",
                        "chapter", "classic", "prose", "manuscript", "delphi"],
    "Business/Finance": ["stocks", "market", "invest", "bank", "loan", "bond",
                         "dividend", "portfolio", "mortgage", "broker"],
    "Business/Jobs": ["resume", "career", "salary", "hiring", "interview",
                      "employer", "vacancy", "internship", "recruiter", "cv"],
    "Computers/Programming/Java": ["java", "jvm", "applet", "servlet", "jdk",
                                   "swing", "bytecode", "classpath", "maven",
                                   "solaris"],
    "Computers/Programming/Python": ["python", "pip", "django", "numpy",
                                     "script", "interpreter", "pandas",
                                     "flask", "virtualenv", "decorator"],
    "Computers/Programming/Databases": ["sql", "database", "index", "schema",
                                        "mysql", "postgres", "transaction",
                                        "btree", "join", "oracle"],
    "Computers/Hardware": ["cpu", "motherboard", "ram", "gpu", "chipset",
                           "overclock", "ssd", "cooling", "benchmark", "bios"],
    "Computers/Internet": ["browser", "router", "wifi", "dns", "firewall",
                           "bandwidth", "modem", "hosting", "ethernet", "vpn"],
    "Health/Medicine": ["doctor", "symptom", "vaccine", "prescription",
                        "diagnosis", "antibiotic", "clinic", "therapy",
                        "surgery", "pharmacy"],
    "Health/Fitness": ["workout", "gym", "cardio", "yoga", "muscle",
                       "treadmill", "pilates", "stretching", "marathon",
                       "trainer"],
    "Health/Nutrition": ["vitamin", "protein", "calories", "recipe", "organic",
                         "fiber", "smoothie", "supplement", "vegan", "mineral"],
    "News/Newspapers": ["headline", "tabloid", "editorial", "journalist",
                        "daily", "press", "gazette", "columnist", "newsprint",
                        "herald"],
    "News/Weather": ["forecast", "storm", "temperature", "rainfall",
                     "hurricane", "humidity", "radar", "blizzard", "heatwave",
                     "barometer"],
    "Recreation/Travel": ["flight", "hotel", "itinerary", "passport", "beach",
                          "resort", "backpacking", "visa", "cruise", "hostel"],
    "Recreation/Autos": ["engine", "sedan", "horsepower", "dealership",
                         "transmission", "coupe", "diesel", "roadster",
                         "warranty", "tires"],
    "Recreation/Outdoors": ["hiking", "camping", "trail", "kayak", "tent",
                            "fishing", "climbing", "campfire", "canoe",
                            "wilderness"],
    "Science/Astronomy": ["telescope", "planet", "orbit", "nebula", "comet",
                          "solar", "supernova", "asteroid", "constellation",
                          "observatory"],
    "Science/Biology": ["species", "genome", "cell", "evolution", "habitat",
                        "enzyme", "organism", "chromosome", "ecology",
                        "predator"],
    "Science/Physics": ["quantum", "relativity", "particle", "photon",
                        "entropy", "momentum", "collider", "neutrino",
                        "thermodynamics", "laser"],
    "Science/Energy": ["renewable", "turbine", "reactor", "biofuel", "grid",
                       "photovoltaic", "geothermal", "hydroelectric",
                       "emissions", "panel"],
    "Shopping/Electronics": ["laptop", "smartphone", "headphones", "tablet",
                             "camera", "charger", "warranty", "discount",
                             "unboxing", "gadget"],
    "Shopping/Clothing": ["jeans", "jacket", "sneakers", "dress", "tailor",
                          "fabric", "boutique", "fashion", "wardrobe",
                          "sweater"],
    "Sports/Football": ["touchdown", "quarterback", "league", "playoffs",
                        "stadium", "fumble", "linebacker", "kickoff",
                        "huddle", "endzone"],
    "Sports/Basketball": ["dunk", "rebound", "pointguard", "jumpshot",
                          "backboard", "fastbreak", "freethrow", "crossover",
                          "layup", "buzzer"],
    "Sports/Tennis": ["racket", "serve", "backhand", "volley", "baseline",
                      "tiebreak", "grandslam", "forehand", "deuce", "topspin"],
}

#: Ambiguous terms -> the leaf paths they belong to.  "sun" reproduces the
#: paper's running example (Sun Microsystems / the star / a UK newspaper).
AMBIGUOUS_TERMS: dict[str, list[str]] = {
    "sun": ["Computers/Programming/Java", "Science/Astronomy",
            "News/Newspapers"],
    "apple": ["Computers/Hardware", "Health/Nutrition"],
    "jaguar": ["Recreation/Autos", "Science/Biology"],
    "python": ["Computers/Programming/Python", "Science/Biology"],
    "mercury": ["Science/Astronomy", "Recreation/Autos"],
    "amazon": ["Shopping/Electronics", "Recreation/Travel"],
    "java": ["Computers/Programming/Java", "Recreation/Travel"],
    "oracle": ["Computers/Programming/Databases", "Arts/Literature"],
    "galaxy": ["Science/Astronomy", "Shopping/Electronics"],
    "eclipse": ["Science/Astronomy", "Computers/Programming/Java"],
    "virus": ["Health/Medicine", "Computers/Internet"],
    "pitch": ["Sports/Football", "Arts/Music"],
    "solar": ["Science/Astronomy", "Science/Energy"],
    "court": ["Sports/Tennis", "Business/Jobs"],
}

_ZIPF_EXPONENT = 1.07


class Vocabulary:
    """Leaf-indexed word lists with Zipf sampling and a naive-Bayes classifier.

    The classifier (:meth:`classify`) stands in for the paper's "look the
    query up in ODP": it maps a bag of terms to the leaf category whose word
    distribution most plausibly generated it.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        words_by_leaf: dict[Category, list[str]],
    ) -> None:
        self._taxonomy = taxonomy
        self._words_by_leaf: dict[Category, list[str]] = {}
        self._weights_by_leaf: dict[Category, np.ndarray] = {}
        self._leaves_by_term: dict[str, list[Category]] = {}
        for leaf in taxonomy.leaves:
            words = words_by_leaf.get(leaf, [])
            if not words:
                raise ValueError(f"leaf {leaf} has an empty vocabulary")
            self._words_by_leaf[leaf] = list(words)
            ranks = np.arange(1, len(words) + 1, dtype=float)
            weights = ranks**-_ZIPF_EXPONENT
            self._weights_by_leaf[leaf] = weights / weights.sum()
            for word in words:
                self._leaves_by_term.setdefault(word, []).append(leaf)

    @property
    def taxonomy(self) -> Taxonomy:
        """The taxonomy whose leaves this vocabulary covers."""
        return self._taxonomy

    @property
    def all_words(self) -> list[str]:
        """Every word across all leaves, sorted and de-duplicated."""
        return sorted(self._leaves_by_term)

    def words_of(self, leaf: Category) -> list[str]:
        """The word list of *leaf*, most-probable first."""
        return list(self._words_by_leaf[leaf])

    def leaves_of_term(self, term: str) -> list[Category]:
        """The leaves whose vocabulary contains *term* (empty if unknown)."""
        return list(self._leaves_by_term.get(term, []))

    def is_ambiguous(self, term: str) -> bool:
        """Whether *term* belongs to more than one leaf."""
        return len(self._leaves_by_term.get(term, [])) > 1

    @property
    def ambiguous_terms(self) -> list[str]:
        """All terms shared by 2+ leaves, sorted."""
        return sorted(
            term for term, leaves in self._leaves_by_term.items()
            if len(leaves) > 1
        )

    def term_probability(self, term: str, leaf: Category) -> float:
        """``p(term | leaf)`` under the leaf's Zipf distribution (0 if absent)."""
        words = self._words_by_leaf[leaf]
        try:
            index = words.index(term)
        except ValueError:
            return 0.0
        return float(self._weights_by_leaf[leaf][index])

    def sample_terms(
        self,
        leaf: Category,
        n: int,
        rng: np.random.Generator,
        bias: Sequence[float] | None = None,
        replace: bool = False,
    ) -> list[str]:
        """Draw *n* distinct terms from *leaf*'s Zipf distribution.

        *bias* (same length as the leaf's word list) multiplies the Zipf
        weights — this is how a user's idiosyncratic word preference enters
        query generation.
        """
        words = self._words_by_leaf[leaf]
        weights = self._weights_by_leaf[leaf]
        if bias is not None:
            if len(bias) != len(words):
                raise ValueError(
                    f"bias length {len(bias)} != vocabulary size {len(words)}"
                )
            weights = weights * np.asarray(bias, dtype=float)
            total = weights.sum()
            if total <= 0:
                raise ValueError("bias zeroes out the whole vocabulary")
            weights = weights / total
        n = min(n, len(words)) if not replace else n
        drawn = rng.choice(len(words), size=n, replace=replace, p=weights)
        return [words[int(i)] for i in np.atleast_1d(drawn)]

    def classify(self, terms: Iterable[str]) -> Category | None:
        """Most plausible leaf for a bag of *terms* (None if none are known).

        Naive-Bayes scoring with a uniform leaf prior; unknown terms are
        ignored; terms absent from a leaf contribute a small smoothing mass so
        one off-topic term cannot veto an otherwise clear leaf.
        """
        smoothing = 1e-6
        scores: dict[Category, float] = {}
        informative = [t for t in terms if t in self._leaves_by_term]
        if not informative:
            return None
        for leaf in self._taxonomy.leaves:
            score = 0.0
            for term in informative:
                score += float(
                    np.log(self.term_probability(term, leaf) + smoothing)
                )
            scores[leaf] = score
        return max(scores, key=lambda leaf: (scores[leaf], str(leaf)))


def build_vocabulary(
    taxonomy: Taxonomy,
    words_per_leaf: int = 40,
    seed_words: dict[str, list[str]] | None = None,
    ambiguous_terms: dict[str, list[str]] | None = None,
) -> Vocabulary:
    """Build the default vocabulary for *taxonomy*.

    Each leaf receives its curated seed words (if any), then deterministic
    filler words ``{stem}{i}`` up to *words_per_leaf*, then the ambiguous
    terms assigned to it.  Construction is fully deterministic.
    """
    if seed_words is None:
        seed_words = SEED_WORDS
    if ambiguous_terms is None:
        ambiguous_terms = AMBIGUOUS_TERMS

    words_by_leaf: dict[Category, list[str]] = {}
    for leaf in taxonomy.leaves:
        words = list(seed_words.get(str(leaf), []))
        stem = "".join(ch for ch in leaf.leaf_name.lower() if ch.isalnum())
        index = 0
        while len(words) < words_per_leaf:
            filler = f"{stem}{index}"
            if filler not in words:
                words.append(filler)
            index += 1
        words_by_leaf[leaf] = words

    for term, leaf_paths in ambiguous_terms.items():
        for path in leaf_paths:
            leaf = taxonomy.get(path)
            if leaf not in words_by_leaf:
                raise ValueError(f"ambiguous term {term!r} maps to non-leaf {path!r}")
            if term not in words_by_leaf[leaf]:
                # Insert near the head: ambiguous terms are high-frequency.
                words_by_leaf[leaf].insert(1, term)

    return Vocabulary(taxonomy, words_by_leaf)
