"""ODP-like topic taxonomy.

The paper's Diversity (Eq. 32) and Relevance (Eq. 34) metrics compare the
ODP category paths of pages and queries.  This module provides the category
tree those metrics walk: a :class:`Taxonomy` of slash-path categories with
the longest-common-prefix path similarity the paper uses.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["Category", "Taxonomy", "default_taxonomy", "DEFAULT_TREE"]


@dataclass(frozen=True, slots=True)
class Category:
    """A node of the taxonomy, identified by its path from the root.

    ``Category(("Computers", "Programming", "Java"))`` prints as
    ``Computers/Programming/Java``, mirroring ODP paths.
    """

    path: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("Category path must be non-empty")
        if any(not part for part in self.path):
            raise ValueError(f"Category path has empty segment: {self.path!r}")

    def __str__(self) -> str:
        return "/".join(self.path)

    @property
    def depth(self) -> int:
        """Number of path segments."""
        return len(self.path)

    @property
    def leaf_name(self) -> str:
        """The final path segment."""
        return self.path[-1]

    @property
    def top(self) -> str:
        """The first path segment (the ODP top-level category)."""
        return self.path[0]

    def is_ancestor_of(self, other: "Category") -> bool:
        """Whether *self* is a strict ancestor of *other*."""
        return (
            len(self.path) < len(other.path)
            and other.path[: len(self.path)] == self.path
        )


def _common_prefix_length(left: Sequence[str], right: Sequence[str]) -> int:
    length = 0
    for a, b in zip(left, right):
        if a != b:
            break
        length += 1
    return length


class Taxonomy:
    """A rooted category tree with path-similarity queries.

    Construct from a nested mapping ``{"Computers": {"Programming": {"Java":
    {}}}}``; every node (not only leaves) is a valid :class:`Category`, but
    content (vocabulary, URLs) attaches to leaves.
    """

    def __init__(self, tree: Mapping[str, Mapping]) -> None:
        if not tree:
            raise ValueError("taxonomy tree must be non-empty")
        self._categories: list[Category] = []
        self._leaves: list[Category] = []
        self._walk(tree, ())
        self._by_path = {category.path: category for category in self._categories}
        self._leaf_index = {leaf: i for i, leaf in enumerate(self._leaves)}

    def _walk(self, tree: Mapping[str, Mapping], prefix: tuple[str, ...]) -> None:
        for name in sorted(tree):
            path = prefix + (name,)
            category = Category(path)
            self._categories.append(category)
            children = tree[name]
            if children:
                self._walk(children, path)
            else:
                self._leaves.append(category)

    # -- lookup --------------------------------------------------------------------

    @property
    def categories(self) -> list[Category]:
        """All categories (internal and leaf), in sorted walk order."""
        return list(self._categories)

    @property
    def leaves(self) -> list[Category]:
        """All leaf categories, in sorted walk order."""
        return list(self._leaves)

    @property
    def max_depth(self) -> int:
        """Depth of the deepest category."""
        return max(category.depth for category in self._categories)

    def __contains__(self, category: Category) -> bool:
        return category.path in self._by_path

    def __len__(self) -> int:
        return len(self._categories)

    def get(self, path: str | Iterable[str]) -> Category:
        """Look up a category by ``"A/B/C"`` string or iterable of segments."""
        if isinstance(path, str):
            parts = tuple(part for part in path.split("/") if part)
        else:
            parts = tuple(path)
        try:
            return self._by_path[parts]
        except KeyError:
            raise KeyError(f"no category {'/'.join(parts)!r} in taxonomy") from None

    def leaf_ordinal(self, leaf: Category) -> int:
        """Stable index of *leaf* among :attr:`leaves` (for array indexing)."""
        try:
            return self._leaf_index[leaf]
        except KeyError:
            raise KeyError(f"{leaf} is not a leaf of this taxonomy") from None

    # -- similarity (paper Eq. 34 / Eq. 32's sim) -----------------------------------

    def path_similarity(self, left: Category, right: Category) -> float:
        """``|longest common prefix| / max(|A|, |B|)`` — the paper's Eq. 34.

        1.0 for identical categories, 0.0 for categories under different
        top-level nodes.
        """
        if left not in self or right not in self:
            raise KeyError("both categories must belong to this taxonomy")
        prefix = _common_prefix_length(left.path, right.path)
        return prefix / max(left.depth, right.depth)

    def sample_leaf(self, rng: np.random.Generator) -> Category:
        """Uniformly sample a leaf category."""
        return self._leaves[int(rng.integers(0, len(self._leaves)))]


#: The default ODP-like tree: 9 top-level categories, 27 leaves, depth <= 3.
#: Shaped after dmoz's actual top levels so that path-similarity values span
#: the same range the paper's metrics saw.
DEFAULT_TREE: dict = {
    "Arts": {"Music": {}, "Movies": {}, "Literature": {}},
    "Business": {"Finance": {}, "Jobs": {}},
    "Computers": {
        "Programming": {"Java": {}, "Python": {}, "Databases": {}},
        "Hardware": {},
        "Internet": {},
    },
    "Health": {"Medicine": {}, "Fitness": {}, "Nutrition": {}},
    "News": {"Newspapers": {}, "Weather": {}},
    "Recreation": {"Travel": {}, "Autos": {}, "Outdoors": {}},
    "Science": {"Astronomy": {}, "Biology": {}, "Physics": {}, "Energy": {}},
    "Shopping": {"Electronics": {}, "Clothing": {}},
    "Sports": {"Football": {}, "Basketball": {}, "Tennis": {}},
}


def default_taxonomy() -> Taxonomy:
    """The default 27-leaf ODP-like taxonomy used across the reproduction."""
    return Taxonomy(DEFAULT_TREE)
