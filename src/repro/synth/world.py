"""Bundle of the synthetic search world's static parts.

:class:`SyntheticWorld` groups the taxonomy, vocabulary and web so the
generator, oracle and metrics can be handed one object.  :func:`make_world`
is the one-call constructor used by examples, tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.synth.taxonomy import Taxonomy, default_taxonomy
from repro.synth.vocabulary import Vocabulary, build_vocabulary
from repro.synth.web import SyntheticWeb, build_web

__all__ = ["SyntheticWorld", "make_world"]


@dataclass(frozen=True, slots=True)
class SyntheticWorld:
    """The static synthetic search world (no users, no log).

    Attributes:
        taxonomy: The ODP-like category tree.
        vocabulary: Per-leaf word lists with ambiguous terms.
        web: Titled pages per leaf.
    """

    taxonomy: Taxonomy
    vocabulary: Vocabulary
    web: SyntheticWeb

    def __post_init__(self) -> None:
        if self.vocabulary.taxonomy is not self.taxonomy:
            raise ValueError("vocabulary was built for a different taxonomy")


def make_world(
    words_per_leaf: int = 40,
    pages_per_leaf: int = 12,
    seed: int = 0,
) -> SyntheticWorld:
    """Build the default synthetic world (27-leaf taxonomy, titled web)."""
    taxonomy = default_taxonomy()
    vocabulary = build_vocabulary(taxonomy, words_per_leaf=words_per_leaf)
    web = build_web(vocabulary, pages_per_leaf=pages_per_leaf, seed=seed)
    return SyntheticWorld(taxonomy=taxonomy, vocabulary=vocabulary, web=web)
