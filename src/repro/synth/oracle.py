"""Ground-truth oracle and simulated rater panel.

The oracle replaces two external resources the paper relies on:

* **ODP lookups** — the Relevance metric (Eq. 34) needs "the ODP category of
  a query"; the oracle answers from the generator's ground truth, falling
  back to the vocabulary classifier for queries it never generated.
* **Human experts** — the HPR experiment (Fig. 6) had experts rate
  suggestions on a 6-point scale over four months; :class:`RaterPanel`
  simulates such experts: a rater sees the *true* intent of the test session
  (which a human implicitly knows about their own search) plus the user's
  long-term profile, scores a suggestion by taxonomy alignment, quantizes to
  the paper's {0, 0.2, ..., 1} scale and adds bounded rater noise.
"""

from __future__ import annotations

import numpy as np

from repro.logs.schema import Session
from repro.synth.generator import SyntheticLog
from repro.synth.taxonomy import Category
from repro.synth.world import SyntheticWorld
from repro.utils.rng import ensure_rng
from repro.utils.text import normalize_query, tokenize
from repro.utils.validation import check_probability

__all__ = ["Oracle", "RaterPanel"]

#: The paper's 6-point rating scale.
RATING_SCALE = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)


class Oracle:
    """Ground-truth answers about a generated log."""

    def __init__(self, world: SyntheticWorld, synthetic: SyntheticLog) -> None:
        self._world = world
        self._synthetic = synthetic

    @property
    def world(self) -> SyntheticWorld:
        """The static world behind the log."""
        return self._world

    def category_of_query(self, query: str) -> Category | None:
        """The ODP-like category of *query*.

        Ground truth (dominant intent over the query's occurrences) when the
        query appears in the log, otherwise the vocabulary classifier;
        ``None`` when even the classifier has no signal.
        """
        normalized = normalize_query(query)
        category = self._synthetic.query_category.get(normalized)
        if category is not None:
            return category
        return self._world.vocabulary.classify(tokenize(normalized))

    def category_of_url(self, url: str) -> Category | None:
        """The category of *url*, or None for URLs outside the synthetic web."""
        if url in self._world.web:
            return self._world.web.category_of(url)
        return None

    def intent_of_session(self, session_id: str) -> Category:
        """The true intent leaf of a generated session."""
        try:
            return self._synthetic.session_intent[session_id]
        except KeyError:
            raise KeyError(f"unknown session {session_id!r}") from None

    def user_interest_weight(self, user_id: str, category: Category) -> float:
        """The user's long-term preference mass on *category* (0 if none)."""
        user = self._synthetic.population.get(user_id)
        return user.interests.get(category, 0.0)

    def query_similarity(self, left: str, right: str) -> float:
        """Taxonomy path similarity between two queries' categories.

        0.0 when either query cannot be categorized.
        """
        a = self.category_of_query(left)
        b = self.category_of_query(right)
        if a is None or b is None:
            return 0.0
        return self._world.taxonomy.path_similarity(a, b)


class RaterPanel:
    """Simulated human experts for the HPR experiment (Fig. 6).

    A rater's raw judgement of suggestion *q* for a session with true intent
    *c* and user *u* is::

        score = (1 - profile_weight) * sim(cat(q), c)
                + profile_weight * interest_alignment(u, cat(q))

    quantized to the 6-point scale after adding Gaussian rater noise.  The
    ``profile_weight`` term models that the paper's experts rated relevance
    *to themselves*, not to an abstract topic.
    """

    def __init__(
        self,
        oracle: Oracle,
        n_raters: int = 3,
        noise_sd: float = 0.08,
        profile_weight: float = 0.3,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_raters < 1:
            raise ValueError("n_raters must be >= 1")
        if noise_sd < 0:
            raise ValueError("noise_sd must be >= 0")
        check_probability("profile_weight", profile_weight)
        self._oracle = oracle
        self._n_raters = n_raters
        self._noise_sd = noise_sd
        self._profile_weight = profile_weight
        self._rng = ensure_rng(seed)

    @staticmethod
    def _quantize(value: float) -> float:
        clipped = min(max(value, 0.0), 1.0)
        return min(RATING_SCALE, key=lambda level: abs(level - clipped))

    def rate(self, suggestion: str, session: Session, intent: Category) -> float:
        """Mean rating of *suggestion* for a test *session* across the panel."""
        category = self._oracle.category_of_query(suggestion)
        if category is None:
            topical = 0.0
            interest = 0.0
        else:
            taxonomy = self._oracle.world.taxonomy
            topical = taxonomy.path_similarity(category, intent)
            interest = self._oracle.user_interest_weight(
                session.user_id, category
            )
            # Interest mass rarely exceeds ~0.7; rescale gently to [0, 1].
            interest = min(interest / 0.7, 1.0)
        truth = (
            (1 - self._profile_weight) * topical
            + self._profile_weight * interest
        )
        ratings = [
            self._quantize(truth + float(self._rng.normal(0.0, self._noise_sd)))
            for _ in range(self._n_raters)
        ]
        return float(np.mean(ratings))
