"""Synthetic search-engine users.

Each user has (1) a sparse Dirichlet preference over taxonomy leaves — their
long-term interests; (2) per-interest *temporal drift*: a Beta curve over the
log's time span modulating when each interest is prominent (the paper's "web
search is essentially dynamic"); and (3) idiosyncratic per-leaf word and URL
biases — the UPM's motivating example of the Toyota user vs. the Ford user.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.stats import beta as beta_dist

from repro.synth.taxonomy import Category
from repro.synth.vocabulary import Vocabulary
from repro.synth.web import SyntheticWeb
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability

__all__ = ["UserModel", "UserPopulation"]


@dataclass(slots=True)
class UserModel:
    """One synthetic user.

    Attributes:
        user_id: Stable identifier, e.g. ``"user0042"``.
        interests: Leaf -> long-term preference weight (sums to 1).
        drift: Leaf -> ``(a, b)`` Beta parameters over normalized time.
        word_bias: Leaf -> multiplicative bias over the leaf's word list.
        url_bias: Leaf -> multiplicative bias over the leaf's page list.
    """

    user_id: str
    interests: dict[Category, float]
    drift: dict[Category, tuple[float, float]] = field(default_factory=dict)
    word_bias: dict[Category, np.ndarray] = field(default_factory=dict)
    url_bias: dict[Category, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.interests:
            raise ValueError("user must have at least one interest")
        total = sum(self.interests.values())
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"interest weights must sum to 1, got {total}")

    @property
    def interest_leaves(self) -> list[Category]:
        """The user's interest leaves, strongest first."""
        return sorted(self.interests, key=lambda c: (-self.interests[c], str(c)))

    def topic_weights_at(self, t_norm: float) -> dict[Category, float]:
        """Interest weights modulated by temporal drift at time ``t_norm``.

        ``t_norm`` is the position in the log's time span, in [0, 1].  The
        returned weights are normalized to sum to 1.
        """
        check_probability("t_norm", t_norm)
        # Clamp away from the Beta pdf's possibly-infinite endpoints.
        t = min(max(t_norm, 1e-3), 1 - 1e-3)
        raw: dict[Category, float] = {}
        for leaf, weight in self.interests.items():
            a, b = self.drift.get(leaf, (1.0, 1.0))
            raw[leaf] = weight * float(beta_dist.pdf(t, a, b))
        total = sum(raw.values())
        if total <= 0:
            # Degenerate drift; fall back to the long-term interests.
            return dict(self.interests)
        return {leaf: value / total for leaf, value in raw.items()}

    def sample_intent(
        self, t_norm: float, rng: np.random.Generator
    ) -> Category:
        """Draw the leaf the user searches about at time ``t_norm``."""
        weights = self.topic_weights_at(t_norm)
        leaves = sorted(weights, key=str)
        probs = np.array([weights[leaf] for leaf in leaves])
        return leaves[int(rng.choice(len(leaves), p=probs / probs.sum()))]


class UserPopulation:
    """A collection of :class:`UserModel` with deterministic generation."""

    def __init__(self, users: list[UserModel]) -> None:
        self._users = list(users)
        self._by_id = {user.user_id: user for user in self._users}
        if len(self._by_id) != len(self._users):
            raise ValueError("duplicate user ids in population")

    def __len__(self) -> int:
        return len(self._users)

    def __iter__(self):
        return iter(self._users)

    def __contains__(self, user_id: str) -> bool:
        return user_id in self._by_id

    @property
    def user_ids(self) -> list[str]:
        """All user ids in generation order."""
        return [user.user_id for user in self._users]

    def get(self, user_id: str) -> UserModel:
        """The user with *user_id*; raises ``KeyError`` if unknown."""
        try:
            return self._by_id[user_id]
        except KeyError:
            raise KeyError(f"unknown user {user_id!r}") from None

    @classmethod
    def generate(
        cls,
        n_users: int,
        vocabulary: Vocabulary,
        web: SyntheticWeb,
        interests_per_user: tuple[int, int] = (2, 4),
        seed: int | np.random.Generator | None = 0,
    ) -> "UserPopulation":
        """Generate *n_users* users with sparse interests and biases.

        Interests are a Dirichlet draw over a uniformly sampled subset of
        leaves; word/URL biases are log-normal multipliers truncated away
        from zero so no word is ever impossible for a user.
        """
        if n_users < 1:
            raise ValueError("n_users must be >= 1")
        low, high = interests_per_user
        if not 1 <= low <= high:
            raise ValueError("interests_per_user must satisfy 1 <= low <= high")
        rng = ensure_rng(seed)
        taxonomy = vocabulary.taxonomy
        leaves = taxonomy.leaves
        users: list[UserModel] = []
        for index in range(n_users):
            n_interests = int(rng.integers(low, high + 1))
            n_interests = min(n_interests, len(leaves))
            chosen_idx = rng.choice(len(leaves), size=n_interests, replace=False)
            chosen = [leaves[int(i)] for i in chosen_idx]
            weights = rng.dirichlet(np.full(n_interests, 1.2))
            interests = {
                leaf: float(w) for leaf, w in zip(chosen, weights)
            }
            drift = {
                leaf: (float(rng.uniform(1.0, 4.0)), float(rng.uniform(1.0, 4.0)))
                for leaf in chosen
            }
            # Heavy-tailed biases (sigma 2.2) concentrate each user on a
            # personal subset of the leaf vocabulary / pages — real users
            # are lexically repetitive, which is the signal the UPM (and
            # any personalization) feeds on.
            word_bias = {
                leaf: np.clip(
                    rng.lognormal(0.0, 2.2, size=len(vocabulary.words_of(leaf))),
                    0.02,
                    None,
                )
                for leaf in chosen
            }
            url_bias = {
                leaf: np.clip(
                    rng.lognormal(0.0, 2.2, size=len(web.pages_of(leaf))),
                    0.02,
                    None,
                )
                for leaf in chosen
            }
            users.append(
                UserModel(
                    user_id=f"user{index:04d}",
                    interests=interests,
                    drift=drift,
                    word_bias=word_bias,
                    url_bias=url_bias,
                )
            )
        return cls(users)
