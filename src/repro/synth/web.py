"""Synthetic web: titled URLs attached to taxonomy leaves.

Each page stands in for a real clicked document: it has a URL, the ODP-like
category it would be filed under, and a title drawn from its category's
vocabulary.  The Diversity metric (Eq. 32) compares pages via their category
paths; the PPR metric compares suggested-query terms against these titles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.synth.taxonomy import Category, Taxonomy
from repro.synth.vocabulary import Vocabulary
from repro.utils.rng import ensure_rng

__all__ = ["WebPage", "SyntheticWeb", "build_web"]


@dataclass(frozen=True, slots=True)
class WebPage:
    """One synthetic web page.

    Attributes:
        url: Unique URL string, e.g. ``"www.java-3.example.com"``.
        category: The taxonomy leaf the page belongs to.
        title: Space-joined topical title terms (the "high-quality field"
            used by the PPR metric).
    """

    url: str
    category: Category
    title: str

    @property
    def title_terms(self) -> list[str]:
        """The title as a term list."""
        return self.title.split()


class SyntheticWeb:
    """Lookup structure over all synthetic pages."""

    def __init__(self, pages: list[WebPage]) -> None:
        self._pages = list(pages)
        self._by_url: dict[str, WebPage] = {}
        self._by_leaf: dict[Category, list[WebPage]] = {}
        for page in self._pages:
            if page.url in self._by_url:
                raise ValueError(f"duplicate URL {page.url!r}")
            self._by_url[page.url] = page
            self._by_leaf.setdefault(page.category, []).append(page)

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, url: str) -> bool:
        return url in self._by_url

    @property
    def pages(self) -> list[WebPage]:
        """All pages in construction order."""
        return list(self._pages)

    @property
    def urls(self) -> list[str]:
        """All URLs, sorted for determinism."""
        return sorted(self._by_url)

    def page(self, url: str) -> WebPage:
        """The page at *url*; raises ``KeyError`` for unknown URLs."""
        try:
            return self._by_url[url]
        except KeyError:
            raise KeyError(f"unknown URL {url!r}") from None

    def category_of(self, url: str) -> Category:
        """The taxonomy leaf of *url*."""
        return self.page(url).category

    def title_of(self, url: str) -> str:
        """The title of *url*."""
        return self.page(url).title

    def pages_of(self, leaf: Category) -> list[WebPage]:
        """Pages filed under *leaf* (empty list if none)."""
        return list(self._by_leaf.get(leaf, []))

    def sample_page(
        self,
        leaf: Category,
        rng: np.random.Generator,
        bias: np.ndarray | None = None,
    ) -> WebPage:
        """Sample one of *leaf*'s pages, optionally biased per-page.

        Pages are weighted by a Zipf-like rank prior (earlier pages are more
        popular, mimicking real click concentration), multiplied by the
        optional per-user *bias* vector.
        """
        pages = self._by_leaf.get(leaf)
        if not pages:
            raise KeyError(f"no pages under {leaf}")
        ranks = np.arange(1, len(pages) + 1, dtype=float)
        weights = ranks**-1.0
        if bias is not None:
            if len(bias) != len(pages):
                raise ValueError(
                    f"bias length {len(bias)} != page count {len(pages)}"
                )
            weights = weights * np.asarray(bias, dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("bias zeroes out every page of the leaf")
        index = int(rng.choice(len(pages), p=weights / total))
        return pages[index]


def build_web(
    vocabulary: Vocabulary,
    pages_per_leaf: int = 12,
    title_terms: int = 5,
    seed: int | np.random.Generator | None = 0,
) -> SyntheticWeb:
    """Create *pages_per_leaf* titled pages for every taxonomy leaf.

    URLs encode the leaf and ordinal (``www.{stem}-{i}.example.com``) so
    tests can reason about them; titles are sampled from the leaf vocabulary
    with the leaf's top word always included (a page about Java says "java").
    """
    rng = ensure_rng(seed)
    taxonomy: Taxonomy = vocabulary.taxonomy
    pages: list[WebPage] = []
    for leaf in taxonomy.leaves:
        words = vocabulary.words_of(leaf)
        stem = "".join(ch for ch in leaf.leaf_name.lower() if ch.isalnum())
        for ordinal in range(pages_per_leaf):
            url = f"www.{stem}-{ordinal}.example.com"
            sampled = vocabulary.sample_terms(
                leaf, max(title_terms - 1, 1), rng
            )
            terms = [words[0]] + [t for t in sampled if t != words[0]]
            pages.append(WebPage(url=url, category=leaf, title=" ".join(terms)))
    return SyntheticWeb(pages)
