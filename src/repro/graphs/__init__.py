"""Query-log representations (paper Sec. III and IV-A).

* :mod:`bipartite <repro.graphs.bipartite>` — a generic weighted bipartite
  between queries and facets (URLs, sessions or terms);
* :mod:`weighting <repro.graphs.weighting>` — the inverse-query-frequency
  (``iqf``) edge weighting of Eqs. 1-6;
* :mod:`click_graph <repro.graphs.click_graph>` — the classic query-URL
  click graph that all baselines run on;
* :mod:`multibipartite <repro.graphs.multibipartite>` — the paper's
  three-bipartite representation (query-URL, query-session, query-term);
* :mod:`compact <repro.graphs.compact>` — compact neighbourhood extraction
  by Markov random walk (Sec. IV-A);
* :mod:`matrices <repro.graphs.matrices>` — the normalized matrices
  ``W^X``, ``D^X`` and ``L^X`` that the diversification component consumes;
* :mod:`shard <repro.graphs.shard>` — query-side sharding of the graph
  plane with bit-identical shard-aware random walks.
"""

from repro.graphs.bipartite import Bipartite
from repro.graphs.click_graph import ClickGraph, build_click_graph
from repro.graphs.compact import CompactConfig, compact_subgraph
from repro.graphs.matrices import BipartiteMatrices, build_matrices
from repro.graphs.multibipartite import (
    BIPARTITE_KINDS,
    MultiBipartite,
    build_multibipartite,
)
from repro.graphs.shard import (
    ShardedExpander,
    ShardPlan,
    ShardSlice,
    build_shard_slices,
    stitch_slices,
)
from repro.graphs.weighting import apply_cfiqf, iqf

__all__ = [
    "BIPARTITE_KINDS",
    "Bipartite",
    "BipartiteMatrices",
    "ClickGraph",
    "CompactConfig",
    "MultiBipartite",
    "ShardPlan",
    "ShardSlice",
    "ShardedExpander",
    "apply_cfiqf",
    "build_click_graph",
    "build_matrices",
    "build_multibipartite",
    "build_shard_slices",
    "compact_subgraph",
    "iqf",
    "stitch_slices",
]
