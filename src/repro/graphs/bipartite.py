"""Generic weighted bipartite graph between queries and facets.

One side is always the set of (normalized) query strings; the other side —
the *facets* — is URLs, session ids or terms depending on which of the three
bipartites of Sec. III is being represented.  Edge weights are raw
co-occurrence counts until :func:`repro.graphs.weighting.apply_cfiqf`
re-weights them.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np
from scipy import sparse

__all__ = ["Bipartite"]


class Bipartite:
    """A weighted bipartite between query strings and facet identifiers.

    Mutable while being built (:meth:`add`); all read accessors are cheap.
    Weights must be positive; adding the same edge accumulates.
    """

    def __init__(self) -> None:
        self._edges: dict[str, dict[str, float]] = {}
        self._facet_edges: dict[str, dict[str, float]] = {}
        self._facet_sets: dict[str, frozenset[str]] = {}

    # -- construction --------------------------------------------------------------

    def add(self, query: str, facet: str, weight: float = 1.0) -> None:
        """Accumulate *weight* onto the (query, facet) edge."""
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        if not query or not facet:
            raise ValueError("query and facet must be non-empty strings")
        self._edges.setdefault(query, {})
        self._edges[query][facet] = self._edges[query].get(facet, 0.0) + weight
        self._facet_edges.setdefault(facet, {})
        self._facet_edges[facet][query] = (
            self._facet_edges[facet].get(query, 0.0) + weight
        )
        self._facet_sets.pop(query, None)

    def scale_facet(self, facet: str, factor: float) -> None:
        """Multiply every edge incident to *facet* by *factor* (> 0)."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        for query in self._facet_edges.get(facet, {}):
            self._edges[query][facet] *= factor
            self._facet_edges[facet][query] *= factor

    # -- accessors -----------------------------------------------------------------

    @property
    def queries(self) -> list[str]:
        """Query-side nodes, sorted for determinism."""
        return sorted(self._edges)

    @property
    def facets(self) -> list[str]:
        """Facet-side nodes, sorted for determinism."""
        return sorted(self._facet_edges)

    @property
    def n_edges(self) -> int:
        """Number of distinct (query, facet) edges."""
        return sum(len(facets) for facets in self._edges.values())

    def weight(self, query: str, facet: str) -> float:
        """Weight of the (query, facet) edge (0.0 if absent)."""
        return self._edges.get(query, {}).get(facet, 0.0)

    def facets_of(self, query: str) -> dict[str, float]:
        """Facet -> weight for one query (copy; empty if query unknown)."""
        return dict(self._edges.get(query, {}))

    def facet_set(self, query: str) -> frozenset[str]:
        """The facets of *query* as a memoized frozenset.

        For the query-term bipartite this is exactly the query's token
        set, which lets hot paths (e.g. the term-backoff Jaccard scoring)
        skip re-tokenizing candidates; the memo entry is invalidated when
        an edge is added for the query.
        """
        cached = self._facet_sets.get(query)
        if cached is None:
            cached = frozenset(self._edges.get(query, ()))
            self._facet_sets[query] = cached
        return cached

    def queries_of(self, facet: str) -> dict[str, float]:
        """Query -> weight for one facet (copy; empty if facet unknown)."""
        return dict(self._facet_edges.get(facet, {}))

    def facet_query_count(self, facet: str) -> int:
        """Number of distinct queries connected to *facet*.

        This is the ``n^X(x_j)`` of Eqs. 1-3 when raw counts are per-query;
        see :func:`repro.graphs.weighting.apply_cfiqf` for the submission-
        weighted variant.
        """
        return len(self._facet_edges.get(facet, {}))

    def facet_weight_sum(self, facet: str) -> float:
        """Total edge weight incident to *facet*."""
        return sum(self._facet_edges.get(facet, {}).values())

    def query_neighbors(self, query: str) -> set[str]:
        """Queries sharing at least one facet with *query* (excl. itself)."""
        neighbors: set[str] = set()
        for facet in self._edges.get(query, {}):
            neighbors.update(self._facet_edges[facet])
        neighbors.discard(query)
        return neighbors

    # -- derivation ----------------------------------------------------------------

    def copy(self) -> "Bipartite":
        """Deep copy."""
        clone = Bipartite()
        for query, facets in self._edges.items():
            for facet, weight in facets.items():
                clone.add(query, facet, weight)
        return clone

    def restrict_queries(self, queries: Iterable[str]) -> "Bipartite":
        """Sub-bipartite keeping only the given queries (and their facets)."""
        wanted = set(queries)
        restricted = Bipartite()
        for query in wanted:
            for facet, weight in self._edges.get(query, {}).items():
                restricted.add(query, facet, weight)
        return restricted

    def to_matrix(
        self,
        query_index: Mapping[str, int],
        facet_index: Mapping[str, int] | None = None,
    ) -> tuple[sparse.csr_matrix, dict[str, int]]:
        """CSR matrix of shape (n_queries, n_facets) plus the facet index.

        *query_index* fixes the row order (shared across the three
        bipartites); the facet index is built here unless supplied.  Queries
        absent from the bipartite produce empty rows.
        """
        if facet_index is None:
            facet_index = {facet: i for i, facet in enumerate(self.facets)}
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        for query, row in query_index.items():
            for facet, weight in self._edges.get(query, {}).items():
                if facet in facet_index:
                    rows.append(row)
                    cols.append(facet_index[facet])
                    data.append(weight)
        matrix = sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(len(query_index), len(facet_index)),
            dtype=np.float64,
        )
        return matrix, dict(facet_index)
