"""Normalized matrices of a (compact) multi-bipartite representation.

For each bipartite ``X ∈ {U, S, T}`` the diversification component needs:

* ``W^X`` — the (n_queries, n_facets) weighted incidence matrix;
* ``D^X`` — diagonal with ``D_ii = Σ_j (W^X W^{X⊤})_ij`` (paper Eq. 9);
* ``L^X = D^{-1/2} W^X W^{X⊤} D^{-1/2}`` — the symmetric normalized
  query-query affinity through X, whose spectral radius is at most 1 (this
  is what makes the Eq. 15 system positive definite);
* ``P^X`` — the row-stochastic two-step transition
  ``query → facet → query`` used by the cross-bipartite walker.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.graphs.multibipartite import BIPARTITE_KINDS, MultiBipartite

__all__ = ["BipartiteMatrices", "build_matrices", "row_normalize"]


def row_normalize(matrix: sparse.spmatrix) -> sparse.csr_matrix:
    """Row-stochastic copy of *matrix*; all-zero rows stay zero."""
    matrix = matrix.tocsr()
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums > 0)
    return (sparse.diags(inverse) @ matrix).tocsr()


@dataclass(frozen=True)
class BipartiteMatrices:
    """All matrices of one representation, on a fixed query ordering.

    Attributes:
        queries: Query strings, row order of every matrix.
        query_index: Query -> row ordinal.
        incidence: Kind -> ``W^X`` (n_queries, n_facets_X).
        affinity: Kind -> ``L^X`` (n_queries, n_queries), symmetric,
            spectral radius <= 1.
        transition: Kind -> ``P^X`` (n_queries, n_queries), row-stochastic
            (zero rows for queries with no facet in X).
    """

    queries: list[str]
    query_index: dict[str, int]
    incidence: dict[str, sparse.csr_matrix]
    affinity: dict[str, sparse.csr_matrix]
    transition: dict[str, sparse.csr_matrix]

    @property
    def n_queries(self) -> int:
        """Number of query rows."""
        return len(self.queries)

    def mean_transition(self) -> sparse.csr_matrix:
        """Uniform mixture of the three ``P^X`` (the default walker prior)."""
        mixed = sum(self.transition[kind] for kind in BIPARTITE_KINDS)
        return (mixed / len(BIPARTITE_KINDS)).tocsr()


def _affinity_of(incidence: sparse.csr_matrix) -> sparse.csr_matrix:
    """``L = D^{-1/2} W W^T D^{-1/2}`` with D the row sums of ``W W^T``."""
    gram = (incidence @ incidence.T).tocsr()
    degrees = np.asarray(gram.sum(axis=1)).ravel()
    scale = np.divide(
        1.0, np.sqrt(degrees), out=np.zeros_like(degrees), where=degrees > 0
    )
    diagonal = sparse.diags(scale)
    return (diagonal @ gram @ diagonal).tocsr()


def _transition_of(incidence: sparse.csr_matrix) -> sparse.csr_matrix:
    """Two-step ``query -> facet -> query`` row-stochastic transition."""
    forward = row_normalize(incidence)
    backward = row_normalize(incidence.T)
    return (forward @ backward).tocsr()


def build_matrices(multibipartite: MultiBipartite) -> BipartiteMatrices:
    """Compute every matrix of *multibipartite* on its sorted query order."""
    queries = multibipartite.queries
    query_index = {query: i for i, query in enumerate(queries)}
    incidence: dict[str, sparse.csr_matrix] = {}
    affinity: dict[str, sparse.csr_matrix] = {}
    transition: dict[str, sparse.csr_matrix] = {}
    for kind in BIPARTITE_KINDS:
        matrix, _ = multibipartite.bipartite(kind).to_matrix(query_index)
        incidence[kind] = matrix
        affinity[kind] = _affinity_of(matrix)
        transition[kind] = _transition_of(matrix)
    return BipartiteMatrices(
        queries=list(queries),
        query_index=query_index,
        incidence=incidence,
        affinity=affinity,
        transition=transition,
    )
