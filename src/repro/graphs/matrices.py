"""Normalized matrices of a (compact) multi-bipartite representation.

For each bipartite ``X ∈ {U, S, T}`` the diversification component needs:

* ``W^X`` — the (n_queries, n_facets) weighted incidence matrix;
* ``D^X`` — diagonal with ``D_ii = Σ_j (W^X W^{X⊤})_ij`` (paper Eq. 9);
* ``L^X = D^{-1/2} W^X W^{X⊤} D^{-1/2}`` — the symmetric normalized
  query-query affinity through X, whose spectral radius is at most 1 (this
  is what makes the Eq. 15 system positive definite);
* ``P^X`` — the row-stochastic two-step transition
  ``query → facet → query`` used by the cross-bipartite walker.

The helpers here sit on the online serving path (a compact representation
is derived per request), so they avoid scipy's Python-level dispatch where
it matters: row sums go through the ``csr_matvec`` kernel, diagonal
scalings operate on the CSR ``data`` array directly, and intermediate
matrices are assembled without re-validating their index structure.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.graphs.multibipartite import BIPARTITE_KINDS, MultiBipartite

try:  # scipy's C kernels; private but stable, guarded for safety.
    from scipy.sparse._sparsetools import csr_matvec as _csr_matvec
except ImportError:  # pragma: no cover - exercised only on exotic scipy
    _csr_matvec = None

__all__ = [
    "BipartiteMatrices",
    "LazyAffinities",
    "build_matrices",
    "csr_from_parts",
    "row_normalize",
]


def _raw_csr(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: tuple[int, int],
    sorted_indices: bool = False,
) -> sparse.csr_matrix:
    """Assemble a csr_matrix from parts already known to be consistent.

    Bypasses ``csr_matrix.__init__`` (and its format validation), which is
    measurable overhead when deriving a compact representation per request.
    Callers must guarantee the arrays form a valid CSR structure.
    """
    matrix = sparse.csr_matrix.__new__(sparse.csr_matrix)
    matrix.data = data
    matrix.indices = indices
    matrix.indptr = indptr
    matrix._shape = shape
    if sorted_indices:
        matrix.has_sorted_indices = True
    return matrix


def _row_sums(matrix: sparse.csr_matrix) -> np.ndarray:
    """Row sums of a CSR matrix, same accumulation order as ``M @ 1``."""
    if _csr_matvec is None:
        return np.asarray(matrix.sum(axis=1)).ravel()
    n_rows, n_cols = matrix.shape
    out = np.zeros(n_rows)
    _csr_matvec(
        n_rows,
        n_cols,
        matrix.indptr,
        matrix.indices,
        matrix.data,
        np.ones(n_cols),
        out,
    )
    return out


def _scale_rows(matrix: sparse.csr_matrix, scale: np.ndarray) -> sparse.csr_matrix:
    """``diag(scale) @ matrix`` without building the diagonal matrix."""
    per_entry = np.repeat(scale, np.diff(matrix.indptr))
    return _raw_csr(
        per_entry * matrix.data,
        matrix.indices,
        matrix.indptr,
        matrix.shape,
        sorted_indices=bool(matrix.has_sorted_indices),
    )


def row_normalize(matrix: sparse.spmatrix) -> sparse.csr_matrix:
    """Row-stochastic copy of *matrix*; all-zero rows stay zero."""
    matrix = matrix.tocsr()
    sums = _row_sums(matrix)
    inverse = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums > 0)
    return _scale_rows(matrix, inverse)


def _take_rows(
    matrix: sparse.csr_matrix, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR row gather: (indices, data, indptr) of ``matrix[rows, :]``.

    Preserves the within-row entry order of the parent, so sorted parents
    yield sorted slices.
    """
    starts = matrix.indptr[rows]
    counts = matrix.indptr[rows + 1] - starts
    indptr = np.zeros(rows.size + 1, dtype=matrix.indptr.dtype)
    np.cumsum(counts, out=indptr[1:])
    take = np.repeat(starts - indptr[:-1], counts) + np.arange(
        int(indptr[-1]), dtype=matrix.indptr.dtype
    )
    return matrix.indices[take], matrix.data[take], indptr


def csr_from_parts(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: tuple[int, int],
    sorted_indices: bool = False,
) -> sparse.csr_matrix:
    """Public validation-free CSR assembly over existing buffers.

    The shared-memory serving plane (:mod:`repro.serve.shm`) wraps
    attached read-only views with this — ``csr_matrix.__init__`` would
    both re-validate and, for non-writable inputs, copy the arrays,
    defeating the zero-copy layout.  Callers must guarantee the arrays
    form a valid CSR structure.
    """
    return _raw_csr(data, indices, indptr, shape, sorted_indices)


class LazyAffinities(Mapping):
    """Kind -> ``L^X`` mapping derived from the cached grams on demand.

    The serving hot path never reads the full-graph affinities —
    :meth:`BipartiteMatrices.restrict` derives compact affinities from the
    sliced grams — so a worker that attaches shared full-graph structures
    defers (and usually never pays) the ``D^{-1/2} G D^{-1/2}`` scaling.
    """

    def __init__(self, gram: Mapping) -> None:
        self._gram = gram
        self._cache: dict[str, sparse.csr_matrix] = {}

    def __getitem__(self, kind: str) -> sparse.csr_matrix:
        if kind not in self._cache:
            self._cache[kind] = _affinity_from_gram(self._gram[kind])
        return self._cache[kind]

    def __iter__(self):
        return iter(self._gram)

    def __len__(self) -> int:
        return len(self._gram)


class _LazyTransitions(Mapping):
    """Kind -> ``P^X`` mapping that derives each transition on first access.

    The serving fast path never reads the per-kind transitions — the
    cross-bipartite walker assembles its mixed transition straight from the
    incidence matrices — so :meth:`BipartiteMatrices.restrict` defers the
    three two-step matmuls until somebody actually asks for one.
    """

    def __init__(self, incidence: Mapping[str, sparse.csr_matrix]) -> None:
        self._incidence = incidence
        self._cache: dict[str, sparse.csr_matrix] = {}

    def __getitem__(self, kind: str) -> sparse.csr_matrix:
        if kind not in self._cache:
            self._cache[kind] = _transition_of(self._incidence[kind])
        return self._cache[kind]

    def __iter__(self):
        return iter(self._incidence)

    def __len__(self) -> int:
        return len(self._incidence)


@dataclass(frozen=True)
class BipartiteMatrices:
    """All matrices of one representation, on a fixed query ordering.

    Attributes:
        queries: Query strings, row order of every matrix.
        query_index: Query -> row ordinal.
        incidence: Kind -> ``W^X`` (n_queries, n_facets_X).
        affinity: Kind -> ``L^X`` (n_queries, n_queries), symmetric,
            spectral radius <= 1.
        transition: Kind -> ``P^X`` (n_queries, n_queries), row-stochastic
            (zero rows for queries with no facet in X).
        gram: Kind -> ``W^X W^{X⊤}`` (n_queries, n_queries).  Cached by
            :func:`build_matrices` so :meth:`restrict` can derive compact
            affinities by slicing instead of re-multiplying; None on
            hand-assembled instances (restrict then recomputes it).
    """

    queries: list[str]
    query_index: dict[str, int]
    incidence: dict[str, sparse.csr_matrix]
    affinity: dict[str, sparse.csr_matrix]
    transition: dict[str, sparse.csr_matrix]
    gram: dict[str, sparse.csr_matrix] | None = None

    @property
    def n_queries(self) -> int:
        """Number of query rows."""
        return len(self.queries)

    def mean_transition(self) -> sparse.csr_matrix:
        """Uniform mixture of the three ``P^X`` (the default walker prior)."""
        mixed = sum(self.transition[kind] for kind in BIPARTITE_KINDS)
        return (mixed / len(BIPARTITE_KINDS)).tocsr()

    def restrict(self, ordinals: Sequence[int]) -> "BipartiteMatrices":
        """Compact matrices over the query rows *ordinals*, by slicing.

        The serving fast path: the compact incidence ``W^X`` is a CSR row
        slice of the full incidence (with facet columns that lost all their
        edges dropped), and the compact gram ``W^X W^{X⊤}`` is a row+column
        slice of the cached full gram — restricting the query set removes
        whole rows but never touches the facets a kept query is connected
        to, so every gram entry between kept queries is unchanged.  Only
        the cheap derived matrices (degree scalings and the two-step
        transition, whose facet-side normalizer genuinely depends on the
        kept set) are recomputed.

        The result is numerically identical to
        ``build_matrices(multibipartite.restrict_queries(queries))`` for
        the same query set.
        """
        rows = np.unique(np.asarray(list(ordinals), dtype=np.intp))
        if rows.size == 0:
            raise ValueError("ordinals must be non-empty")
        if rows[0] < 0 or rows[-1] >= self.n_queries:
            raise ValueError("ordinals out of range")
        queries = [self.queries[int(i)] for i in rows]
        query_index = {query: i for i, query in enumerate(queries)}
        # Old ordinal -> compact ordinal (-1 = dropped); shared by the
        # per-kind gram slicing below.
        lookup = np.full(self.n_queries, -1, dtype=np.intp)
        lookup[rows] = np.arange(rows.size, dtype=np.intp)
        incidence: dict[str, sparse.csr_matrix] = {}
        affinity: dict[str, sparse.csr_matrix] = {}
        gram: dict[str, sparse.csr_matrix] = {}
        for kind in BIPARTITE_KINDS:
            full = self.incidence[kind]
            indices, data, indptr = _take_rows(full, rows)
            # Every surviving column index appears in the slice, so column
            # compaction is a pure renumbering — no entry is dropped.
            live_columns = np.unique(indices)
            if live_columns.size < full.shape[1]:
                indices = np.searchsorted(live_columns, indices).astype(
                    indices.dtype
                )
            sliced = _raw_csr(
                data,
                indices,
                indptr,
                (rows.size, int(live_columns.size)),
                sorted_indices=bool(full.has_sorted_indices),
            )
            if self.gram is not None:
                sub_gram = _slice_square(self.gram[kind], rows, lookup)
            else:
                sub_gram = _gram_of(sliced)
            incidence[kind] = sliced
            gram[kind] = sub_gram
            affinity[kind] = _affinity_from_gram(sub_gram)
        return BipartiteMatrices(
            queries=queries,
            query_index=query_index,
            incidence=incidence,
            affinity=affinity,
            transition=_LazyTransitions(incidence),
            gram=gram,
        )


def _slice_square(
    matrix: sparse.csr_matrix, rows: np.ndarray, lookup: np.ndarray
) -> sparse.csr_matrix:
    """``matrix[rows, :][:, rows]`` with columns renumbered to 0..len(rows).

    *rows* must be sorted unique ordinals and *lookup* the old->new ordinal
    map (-1 for dropped ordinals); entry order within rows is preserved, so
    a sorted parent yields a sorted (canonical) slice.
    """
    indices, data, _ = _take_rows(matrix, rows)
    position = lookup[indices]
    keep = position >= 0
    counts = matrix.indptr[rows + 1] - matrix.indptr[rows]
    row_of_entry = np.repeat(
        np.arange(rows.size, dtype=np.intp), counts.astype(np.intp)
    )
    kept_counts = np.bincount(row_of_entry[keep], minlength=rows.size)
    indptr = np.zeros(rows.size + 1, dtype=matrix.indptr.dtype)
    np.cumsum(kept_counts, out=indptr[1:])
    return _raw_csr(
        data[keep],
        position[keep].astype(matrix.indices.dtype),
        indptr,
        (int(rows.size), int(rows.size)),
        sorted_indices=bool(matrix.has_sorted_indices),
    )


def _gram_of(incidence: sparse.csr_matrix) -> sparse.csr_matrix:
    """``W W^T`` in canonical (sorted-indices) CSR form."""
    gram = (incidence @ incidence.T).tocsr()
    gram.sort_indices()
    return gram


def _affinity_from_gram(gram: sparse.csr_matrix) -> sparse.csr_matrix:
    """``L = D^{-1/2} G D^{-1/2}`` with D the row sums of ``G = W W^T``."""
    degrees = _row_sums(gram)
    scale = np.divide(
        1.0, np.sqrt(degrees), out=np.zeros_like(degrees), where=degrees > 0
    )
    per_entry = np.repeat(scale, np.diff(gram.indptr))
    return _raw_csr(
        (per_entry * gram.data) * scale[gram.indices],
        gram.indices,
        gram.indptr,
        gram.shape,
        sorted_indices=bool(gram.has_sorted_indices),
    )


def _transition_of(incidence: sparse.csr_matrix) -> sparse.csr_matrix:
    """Two-step ``query -> facet -> query`` row-stochastic transition."""
    forward = row_normalize(incidence)
    backward = row_normalize(incidence.T)
    product = (forward @ backward).tocsr()
    product.sort_indices()
    return product


def build_matrices(multibipartite: MultiBipartite) -> BipartiteMatrices:
    """Compute every matrix of *multibipartite* on its sorted query order."""
    queries = multibipartite.queries
    query_index = {query: i for i, query in enumerate(queries)}
    incidence: dict[str, sparse.csr_matrix] = {}
    affinity: dict[str, sparse.csr_matrix] = {}
    transition: dict[str, sparse.csr_matrix] = {}
    gram: dict[str, sparse.csr_matrix] = {}
    for kind in BIPARTITE_KINDS:
        matrix, _ = multibipartite.bipartite(kind).to_matrix(query_index)
        matrix.sort_indices()
        incidence[kind] = matrix
        gram[kind] = _gram_of(matrix)
        affinity[kind] = _affinity_from_gram(gram[kind])
        transition[kind] = _transition_of(matrix)
    return BipartiteMatrices(
        queries=list(queries),
        query_index=query_index,
        incidence=incidence,
        affinity=affinity,
        transition=transition,
        gram=gram,
    )
