"""Inverse-query-frequency edge weighting (paper Eqs. 1-6).

The raw frequency of a (query, facet) relation under-values rare but
discriminative facets.  The paper multiplies each raw count ``c^X_{ij}`` by
the facet's inverse query frequency::

    iqf^X(x_j) = log(|Q| / n^X(x_j))          (Eqs. 1-3)
    cfiqf^X(q_i, x_j) = c^X_{ij} * iqf^X(x_j) (Eqs. 4-6)

where ``|Q|`` is the number of query submissions in the log and
``n^X(x_j)`` the number of submissions interacting with facet ``x_j``.
"""

from __future__ import annotations

import math

from repro.graphs.bipartite import Bipartite

__all__ = ["iqf", "apply_cfiqf", "facet_entropy", "apply_entropy_bias"]


def iqf(total_queries: int, facet_query_count: float) -> float:
    """``log(|Q| / n^X(x_j))`` — Eqs. 1-3.

    Raises ``ValueError`` on non-positive inputs; returns 0.0 for a facet
    connected to every submission (fully non-discriminative).
    """
    if total_queries <= 0:
        raise ValueError(f"total_queries must be positive, got {total_queries}")
    if facet_query_count <= 0:
        raise ValueError(
            f"facet_query_count must be positive, got {facet_query_count}"
        )
    if facet_query_count > total_queries:
        raise ValueError(
            f"facet_query_count ({facet_query_count}) exceeds total_queries "
            f"({total_queries})"
        )
    return math.log(total_queries / facet_query_count)


def apply_cfiqf(bipartite: Bipartite, total_queries: int) -> Bipartite:
    """Return a cfiqf-weighted copy of *bipartite* (Eqs. 4-6).

    ``n^X(x_j)`` is taken as the facet's total raw edge weight, i.e. the
    number of query submissions interacting with the facet (the bipartite is
    built with one unit of weight per submission).  Facets whose ``iqf`` is 0
    (connected to every submission) keep a small epsilon weight instead of
    dropping out of the graph entirely.
    """
    weighted = Bipartite()
    epsilon = 1e-3
    for query in bipartite.queries:
        for facet, raw in bipartite.facets_of(query).items():
            # A multi-occurrence term can push the facet weight slightly past
            # |Q|; clamp so iqf stays defined (and non-negative).
            count = min(bipartite.facet_weight_sum(facet), float(total_queries))
            factor = iqf(total_queries, count)
            weighted.add(query, facet, raw * max(factor, epsilon))
    return weighted


def facet_entropy(bipartite: Bipartite, facet: str) -> float:
    """Shannon entropy (nats) of a facet's weight distribution over queries.

    The *click entropy* of Deng, King & Lyu (SIGIR 2009, the paper's ref
    [18]): a URL clicked uniformly from many unrelated queries has high
    entropy and is a poor relevance signal; a URL reached from one focused
    query has entropy 0.
    """
    weights = bipartite.queries_of(facet)
    total = sum(weights.values())
    if total <= 0:
        return 0.0
    entropy = 0.0
    for weight in weights.values():
        p = weight / total
        if p > 0:
            entropy -= p * math.log(p)
    return entropy


def apply_entropy_bias(bipartite: Bipartite) -> Bipartite:
    """Entropy-biased re-weighting: ``c_ij / (1 + H(x_j))``.

    The alternative to :func:`apply_cfiqf` proposed by Deng et al. for the
    click graph: instead of discounting facets by raw popularity (iqf),
    discount by the *entropy* of their query distribution — a popular but
    focused facet keeps its weight, while a facet spread uniformly over
    unrelated queries (the hub-URL pathology) is suppressed.
    """
    weighted = Bipartite()
    entropies = {
        facet: facet_entropy(bipartite, facet) for facet in bipartite.facets
    }
    for query in bipartite.queries:
        for facet, raw in bipartite.facets_of(query).items():
            weighted.add(query, facet, raw / (1.0 + entropies[facet]))
    return weighted
