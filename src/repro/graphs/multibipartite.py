"""The paper's multi-bipartite query-log representation (Sec. III).

Three bipartites share the query side:

* ``"U"`` — query-URL (the classic click graph's edges);
* ``"S"`` — query-session (a query connects to every session that issued it);
* ``"T"`` — query-term (a query connects to its topical terms).

Raw edge weights are submission counts (``c^X_{ij}``); the weighted variant
applies the ``cfiqf`` scheme of Eqs. 4-6.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graphs.bipartite import Bipartite
from repro.graphs.weighting import apply_cfiqf, apply_entropy_bias
from repro.logs.schema import Session
from repro.logs.storage import QueryLog
from repro.utils.text import normalize_query, tokenize

__all__ = ["BIPARTITE_KINDS", "MultiBipartite", "build_multibipartite"]

#: The three bipartite kinds, in the paper's order (X ∈ {U, S, T}).
BIPARTITE_KINDS: tuple[str, ...] = ("U", "S", "T")


class MultiBipartite:
    """Three bipartites over a shared query-node set."""

    def __init__(self, bipartites: dict[str, Bipartite]) -> None:
        missing = set(BIPARTITE_KINDS) - set(bipartites)
        if missing:
            raise ValueError(f"missing bipartites: {sorted(missing)}")
        self._bipartites = {kind: bipartites[kind] for kind in BIPARTITE_KINDS}
        all_queries: set[str] = set()
        for bipartite in self._bipartites.values():
            all_queries.update(bipartite.queries)
        self._queries = sorted(all_queries)
        self._query_set = frozenset(all_queries)

    def bipartite(self, kind: str) -> Bipartite:
        """The bipartite of *kind* (``"U"``, ``"S"`` or ``"T"``)."""
        try:
            return self._bipartites[kind]
        except KeyError:
            raise KeyError(
                f"kind must be one of {BIPARTITE_KINDS}, got {kind!r}"
            ) from None

    @property
    def queries(self) -> list[str]:
        """The union of query nodes across the three bipartites, sorted."""
        return list(self._queries)

    @property
    def n_queries(self) -> int:
        """Number of distinct query nodes."""
        return len(self._queries)

    def __contains__(self, query: str) -> bool:
        return normalize_query(query) in self._query_set

    def query_neighbors(self, query: str) -> set[str]:
        """Queries reachable from *query* through any of the bipartites."""
        normalized = normalize_query(query)
        neighbors: set[str] = set()
        for bipartite in self._bipartites.values():
            neighbors.update(bipartite.query_neighbors(normalized))
        return neighbors

    def restrict_queries(self, queries: Iterable[str]) -> "MultiBipartite":
        """The compact sub-representation over the given query set."""
        wanted = [normalize_query(q) for q in queries]
        return MultiBipartite(
            {
                kind: bipartite.restrict_queries(wanted)
                for kind, bipartite in self._bipartites.items()
            }
        )


def build_multibipartite(
    log: QueryLog,
    sessions: list[Session],
    weighted: bool = True,
    scheme: str = "cfiqf",
) -> MultiBipartite:
    """Build the multi-bipartite representation of *log*.

    Args:
        log: The (cleaned) query log.
        sessions: Session segmentation of the same log (ground truth or the
            output of :func:`repro.logs.sessionizer.sessionize`).
        weighted: Apply edge re-weighting; when False the raw submission
            counts are kept (the paper's "raw" variant in Fig. 3(a)/(c)).
        scheme: Weighting scheme when *weighted*: ``"cfiqf"`` (the paper's
            Eqs. 4-6) or ``"entropy"`` (the entropy bias of Deng et al.,
            ref [18] — the ablation alternative).

    The query-URL and query-term bipartites come straight from the records;
    the query-session bipartite connects each query string to the id of
    every session that issued it.
    """
    if scheme not in ("cfiqf", "entropy"):
        raise ValueError(
            f"scheme must be 'cfiqf' or 'entropy', got {scheme!r}"
        )
    url_bipartite = Bipartite()
    term_bipartite = Bipartite()
    session_bipartite = Bipartite()

    for record in log:
        query = normalize_query(record.query)
        if not query:
            continue
        if record.clicked_url is not None:
            url_bipartite.add(query, record.clicked_url, 1.0)
        for term in set(tokenize(query)):
            term_bipartite.add(query, term, 1.0)

    for session in sessions:
        for record in session:
            query = normalize_query(record.query)
            if not query:
                continue
            session_bipartite.add(query, session.session_id, 1.0)

    bipartites = {"U": url_bipartite, "S": session_bipartite, "T": term_bipartite}
    if weighted:
        if scheme == "cfiqf":
            total = log.total_queries
            bipartites = {
                kind: apply_cfiqf(bipartite, total)
                for kind, bipartite in bipartites.items()
            }
        else:
            bipartites = {
                kind: apply_entropy_bias(bipartite)
                for kind, bipartite in bipartites.items()
            }
    return MultiBipartite(bipartites)
