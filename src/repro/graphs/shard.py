"""Query-side sharding of the multi-bipartite graph plane.

A :class:`ShardPlan` partitions the query rows of one
:class:`~repro.graphs.matrices.BipartiteMatrices` into ``n_shards``
disjoint shards — hash-based by default (crc32 of the normalized query,
the same hash the serving pool routes by), or packed by connected
component so that every random walk stays inside its home shard.

Each shard materializes as a :class:`ShardSlice`: the home rows' incidence
matrices with *locally renumbered* facet columns (plus the facet-name
vocabularies that make the renumbering reversible), the local walk stacks,
and — for *closed* shards — the home block of the cached gram.  A shard is
closed when no facet of a home query touches a foreign query, i.e. the
shard is a union of connected components; component plans are closed by
construction, hash plans usually are not.

:class:`ShardedExpander` reproduces the unsharded
:class:`~repro.graphs.compact.RandomWalkExpander` **bit for bit** at any
shard count through two exact paths:

* **Closed fast path** — when every seed's home shard is closed, the
  power iteration runs on the local stacks only.  Mass can never leave a
  closed shard, and in the unsharded walk every foreign entry of the mass
  vector is exactly ``+0.0`` (scipy's matvec kernels accumulate nothing
  into untouched columns, and ``x + 0.0 == x`` bitwise for the
  non-negative values a walk produces), so scattering the local results
  into full-length vectors and renormalizing *those* replays the global
  arithmetic — including ``np.sum``'s pairwise tree — exactly.
* **Stitched spill path** — otherwise the walk *spills*: every shard is
  attached, :func:`stitch_slices` reassembles the exact global matrices
  (row gather is a permutation-free concatenation; local facet columns
  remap monotonically into the sorted union of the per-shard vocabularies,
  which at aligned epochs is the original global column order), and the
  standard expander runs on the reassembly.

Both paths hand the downstream Eq. 15 solve matrices that are bit-equal
to the unsharded ``restrict()`` output: closed shards slice their cached
local gram (the home block of the global gram), and the stitched
reassembly recomputes grams through the same SPA accumulation order
scipy's spgemm uses for the full build.
"""

from __future__ import annotations

import zlib
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np
from scipy import sparse

from repro.graphs.compact import CompactConfig, RandomWalkExpander, _vec_times_csr
from repro.graphs.matrices import (
    BipartiteMatrices,
    LazyAffinities,
    _gram_of,
    _LazyTransitions,
    _raw_csr,
    _slice_square,
    _take_rows,
    build_matrices,
    row_normalize,
)
from repro.graphs.multibipartite import BIPARTITE_KINDS, MultiBipartite
from repro.utils.text import normalize_query

__all__ = [
    "ShardPlan",
    "ShardSlice",
    "ShardedExpander",
    "ShardedMatrices",
    "build_shard_slices",
    "shard_hash",
    "stitch_slices",
]


def shard_hash(normalized: str, n_shards: int) -> int:
    """crc32-based shard of a normalized query — the routing hash."""
    return zlib.crc32(normalized.encode("utf-8")) % n_shards


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of the query side to ``n_shards`` disjoint shards.

    Attributes:
        n_shards: Number of shards (>= 1).
        kind: ``"hash"`` (stateless crc32 routing) or ``"component"``
            (explicit assignment packed from connected components, with
            crc32 fallback for queries the plan has never seen).
        assignment: Query -> shard for component plans; empty for hash
            plans.
    """

    n_shards: int
    kind: str = "hash"
    assignment: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.kind not in ("hash", "component"):
            raise ValueError(f"kind must be 'hash' or 'component', got {self.kind!r}")

    @classmethod
    def hashed(cls, n_shards: int) -> "ShardPlan":
        """The stateless crc32 plan (balanced, but rarely closed)."""
        return cls(n_shards=n_shards, kind="hash")

    @classmethod
    def components(
        cls, multibipartite: MultiBipartite, n_shards: int
    ) -> "ShardPlan":
        """Pack connected components into shards (every shard closed).

        Components are found over the union neighbor relation of the
        three bipartites and greedily bin-packed largest-first onto the
        lightest shard, so walks never cross shards while the load stays
        roughly balanced.
        """
        seen: set[str] = set()
        components: list[list[str]] = []
        for query in multibipartite.queries:
            if query in seen:
                continue
            component = [query]
            seen.add(query)
            frontier = [query]
            while frontier:
                current = frontier.pop()
                for neighbor in multibipartite.query_neighbors(current):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        component.append(neighbor)
                        frontier.append(neighbor)
            components.append(sorted(component))
        components.sort(key=lambda c: (-len(c), c[0]))
        loads = [0] * n_shards
        assignment: dict[str, int] = {}
        for component in components:
            target = min(range(n_shards), key=lambda s: (loads[s], s))
            loads[target] += len(component)
            for query in component:
                assignment[query] = target
        return cls(n_shards=n_shards, kind="component", assignment=assignment)

    def shard_of(self, query: str) -> int:
        """Home shard of *query* (normalizing first).

        Component plans answer from the assignment and fall back to the
        routing hash for queries the plan has never seen — an unseen
        query then resolves against its fallback shard's vocabulary and
        correctly reads as unknown.
        """
        normalized = normalize_query(query)
        if self.kind == "component":
            owner = self.assignment.get(normalized)
            if owner is not None:
                return owner
        return shard_hash(normalized, self.n_shards)


@dataclass(frozen=True, eq=False)
class ShardSlice:
    """One shard's materialized share of the graph plane.

    Attributes:
        shard_id: The shard this slice belongs to.
        queries: Home query strings, in global row order.
        rows: Global row ordinals of the home queries (sorted).
        n_queries_global: Row count of the full (unsharded) plane.
        closed: True when no facet of a home query touches a foreign
            query — the precondition of the intra-shard fast walk.
        incidence: Kind -> home-rows incidence with locally renumbered
            facet columns.
        facet_names: Kind -> facet name per local column (sorted, a
            subsequence of the global sorted facet order).
        gram: Kind -> home block of the global gram on local ordinals
            (closed shards only; None otherwise).
        stacks: Optional pre-derived ``(forward, backward)`` walk stacks.
            When ``None`` the stacks are derived lazily from the local
            incidence on first ``forward_stack``/``backward_stack``
            access — epochs whose slices are consumed without a walk
            (or a segment publish) never pay for them.
    """

    shard_id: int
    queries: tuple[str, ...]
    rows: np.ndarray
    n_queries_global: int
    closed: bool
    incidence: dict[str, sparse.csr_matrix]
    facet_names: dict[str, tuple[str, ...]]
    gram: dict[str, sparse.csr_matrix] | None
    stacks: tuple[sparse.csr_matrix, sparse.csr_matrix] | None = None

    @property
    def forward_stack(self) -> sparse.csr_matrix:
        """Local forward walk stack (derived on first access)."""
        return self._local_stacks()[0]

    @property
    def backward_stack(self) -> sparse.csr_matrix:
        """Local backward walk stack (derived on first access)."""
        return self._local_stacks()[1]

    def _local_stacks(self) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        if self.stacks is None:
            object.__setattr__(self, "stacks", local_stacks(self.incidence))
        return self.stacks

    @property
    def n_queries(self) -> int:
        """Number of home queries."""
        return len(self.queries)

    @property
    def query_index(self) -> dict[str, int]:
        """Home query -> local ordinal (built on demand)."""
        return {query: i for i, query in enumerate(self.queries)}

    def nnz(self) -> int:
        """Stored entries across the three incidence matrices."""
        return sum(int(self.incidence[kind].nnz) for kind in BIPARTITE_KINDS)

    def local_matrices(self) -> BipartiteMatrices:
        """The slice as a standalone ``BipartiteMatrices`` over local rows.

        For closed shards, ``local_matrices().restrict(...)`` is bit-equal
        to restricting the global matrices to the same queries: the local
        gram is the home block of the global gram, and the gram-free
        fallback recomputes through the same accumulation order.
        """
        return BipartiteMatrices(
            queries=list(self.queries),
            query_index=self.query_index,
            incidence=dict(self.incidence),
            affinity=(
                LazyAffinities(self.gram)
                if self.gram is not None
                else _LazyGram(self.incidence)
            ),
            transition=_LazyTransitions(self.incidence),
            gram=dict(self.gram) if self.gram is not None else None,
        )


class _LazyGram(Mapping):
    """Kind -> gram mapping computed from incidence on first access."""

    def __init__(self, incidence: Mapping[str, sparse.csr_matrix]) -> None:
        self._incidence = incidence
        self._cache: dict[str, sparse.csr_matrix] = {}

    def __getitem__(self, kind: str) -> sparse.csr_matrix:
        if kind not in self._cache:
            self._cache[kind] = _gram_of(self._incidence[kind])
        return self._cache[kind]

    def __iter__(self):
        return iter(self._incidence)

    def __len__(self) -> int:
        return len(self._incidence)


def local_stacks(
    incidence: Mapping[str, sparse.csr_matrix],
) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
    """(forward, backward) walk stacks of a slice's local incidence.

    Identical derivation to the unsharded expander's: per-kind row
    normalization is per-row arithmetic, so a closed shard's local stacks
    carry exactly the global stacks' values on the home rows/facets.
    """
    forwards, backwards = [], []
    for kind in BIPARTITE_KINDS:
        matrix = incidence[kind]
        forwards.append(row_normalize(matrix))
        backwards.append(row_normalize(matrix.T) / len(BIPARTITE_KINDS))
    return (
        sparse.hstack(forwards, format="csr"),
        sparse.vstack(backwards, format="csr"),
    )


def _closed_shards(
    matrices: BipartiteMatrices, row_shard: np.ndarray, n_shards: int
) -> np.ndarray:
    """Boolean closed-flag per shard.

    A facet column is *pure* when every incident row lives in one shard; a
    shard is closed iff every column its rows touch is pure.
    """
    closed = np.ones(n_shards, dtype=bool)
    for kind in BIPARTITE_KINDS:
        incidence = matrices.incidence[kind]
        n_rows, n_cols = incidence.shape
        if incidence.nnz == 0:
            continue
        entry_rows = np.repeat(
            np.arange(n_rows, dtype=np.intp), np.diff(incidence.indptr)
        )
        entry_shard = row_shard[entry_rows]
        col_min = np.full(n_cols, n_shards, dtype=np.intp)
        col_max = np.full(n_cols, -1, dtype=np.intp)
        np.minimum.at(col_min, incidence.indices, entry_shard)
        np.maximum.at(col_max, incidence.indices, entry_shard)
        impure = (col_max >= 0) & (col_min != col_max)
        if impure.any():
            closed[np.unique(entry_shard[impure[incidence.indices]])] = False
    return closed


def _csr_identical(left: sparse.csr_matrix, right: sparse.csr_matrix) -> bool:
    """Bit-level equality of two canonical CSR matrices."""
    return (
        left.shape == right.shape
        and left.indptr.size == right.indptr.size
        and np.array_equal(left.indptr, right.indptr)
        and np.array_equal(left.indices, right.indices)
        and np.array_equal(left.data, right.data)
    )


def _slice_reusable(
    prior: ShardSlice,
    queries: tuple[str, ...],
    rows: np.ndarray,
    n_queries_global: int,
    closed: bool,
    incidence: Mapping[str, sparse.csr_matrix],
    facet_names: Mapping[str, tuple[str, ...]],
    gram_wanted: bool,
) -> bool:
    """True when *prior* already materializes exactly this shard content."""
    if (
        prior.queries != queries
        or prior.closed != closed
        or prior.n_queries_global != n_queries_global
        or (prior.gram is not None) != gram_wanted
        or not np.array_equal(prior.rows, rows)
    ):
        return False
    for kind in BIPARTITE_KINDS:
        if prior.facet_names[kind] != facet_names[kind]:
            return False
        if not _csr_identical(prior.incidence[kind], incidence[kind]):
            return False
    return True


def build_shard_slices(
    matrices: BipartiteMatrices,
    plan: ShardPlan,
    multibipartite: MultiBipartite,
    previous: Mapping[int, ShardSlice] | None = None,
    dirty_shards: set[int] | frozenset[int] | None = None,
    row_shard: np.ndarray | None = None,
    closed: np.ndarray | None = None,
) -> dict[int, ShardSlice]:
    """Slice the full plane into one :class:`ShardSlice` per shard.

    *multibipartite* supplies the facet-name vocabularies (`to_matrix`
    orders columns by sorted facet name, and the streaming patcher
    preserves that order), which make local columns stitchable back into
    the global order by name.  Empty shards yield empty slices.

    With *previous* (a prior build's slices, e.g. the last epoch's), any
    shard whose content is bit-identical to its prior slice returns that
    slice **object** unchanged — the identity the streaming layer uses to
    compute minimal per-shard update sets — and skips the gram/stack
    derivation for it.

    *dirty_shards* restricts the derive-and-compare work to the named
    shards: every other shard returns its *previous* slice object without
    any row gathering.  The caller owns the invariant that non-dirty
    shards are bit-identical to their prior slices (same rows, incidence
    bytes, and closed flag); the streaming layer derives it from its
    delta bookkeeping.  Requires *previous* to cover every non-dirty
    shard.

    *row_shard* (query row -> shard id, aligned with ``matrices.queries``)
    and *closed* (per-shard closed flags) skip the O(n_queries) routing
    pass and the O(nnz) purity scan when the caller maintains them
    incrementally.
    """
    n_queries = matrices.n_queries
    if row_shard is None:
        row_shard = np.fromiter(
            (plan.shard_of(query) for query in matrices.queries),
            dtype=np.intp,
            count=n_queries,
        )
    elif len(row_shard) != n_queries:
        raise ValueError(
            f"row_shard covers {len(row_shard)} rows, matrices have "
            f"{n_queries}"
        )
    if dirty_shards is not None and previous is None:
        raise ValueError("dirty_shards requires previous slices")
    if closed is None:
        closed = _closed_shards(matrices, row_shard, plan.n_shards)
    global_names = {
        kind: multibipartite.bipartite(kind).facets for kind in BIPARTITE_KINDS
    }
    for kind in BIPARTITE_KINDS:
        if len(global_names[kind]) != matrices.incidence[kind].shape[1]:
            raise ValueError(
                f"facet vocabulary of kind {kind!r} does not match the "
                "incidence column count — matrices and multibipartite "
                "are from different builds"
            )
    lookup = np.full(n_queries, -1, dtype=np.intp)
    slices: dict[int, ShardSlice] = {}
    for shard_id in range(plan.n_shards):
        if dirty_shards is not None and shard_id not in dirty_shards:
            prior = previous.get(shard_id)
            if prior is None:
                raise ValueError(
                    f"shard {shard_id} is not dirty but has no previous "
                    "slice to reuse"
                )
            slices[shard_id] = prior
            continue
        rows = np.flatnonzero(row_shard == shard_id).astype(np.intp)
        queries = tuple(matrices.queries[int(i)] for i in rows)
        is_closed = bool(closed[shard_id])
        incidence: dict[str, sparse.csr_matrix] = {}
        facet_names: dict[str, tuple[str, ...]] = {}
        gram_wanted = is_closed and matrices.gram is not None
        for kind in BIPARTITE_KINDS:
            full = matrices.incidence[kind]
            indices, data, indptr = _take_rows(full, rows)
            live = np.unique(indices)
            local_indices = np.searchsorted(live, indices).astype(indices.dtype)
            incidence[kind] = _raw_csr(
                data,
                local_indices,
                indptr,
                (int(rows.size), int(live.size)),
                sorted_indices=bool(full.has_sorted_indices),
            )
            names = global_names[kind]
            facet_names[kind] = tuple(names[int(c)] for c in live)
        if previous is not None:
            prior = previous.get(shard_id)
            if prior is not None and _slice_reusable(
                prior,
                queries,
                rows,
                n_queries,
                is_closed,
                incidence,
                facet_names,
                gram_wanted,
            ):
                slices[shard_id] = prior
                continue
        gram: dict[str, sparse.csr_matrix] | None = None
        if gram_wanted:
            lookup[:] = -1
            lookup[rows] = np.arange(rows.size, dtype=np.intp)
            gram = {
                kind: _slice_square(matrices.gram[kind], rows, lookup)
                for kind in BIPARTITE_KINDS
            }
        slices[shard_id] = ShardSlice(
            shard_id=shard_id,
            queries=queries,
            rows=rows,
            n_queries_global=n_queries,
            closed=is_closed,
            incidence=incidence,
            facet_names=facet_names,
            gram=gram,
        )
    return slices


def stitch_slices(slices: Mapping[int, ShardSlice]) -> BipartiteMatrices:
    """Reassemble the exact global matrices from a full set of slices.

    At aligned epochs (every slice from the same build) the result is
    bit-identical to the unsharded matrices: rows scatter back to their
    recorded global ordinals, and the sorted union of the per-shard facet
    vocabularies reproduces the original sorted global column order, so
    the monotone column remap preserves every value and every within-row
    entry order.  The gram is left ``None`` — ``restrict()`` then
    recomputes compact grams through scipy's SPA spgemm, whose per-entry
    accumulation order matches slicing the cached gram.
    """
    ordered = [slices[shard_id] for shard_id in sorted(slices)]
    if not ordered:
        raise ValueError("cannot stitch an empty slice set")
    n_queries = ordered[0].n_queries_global
    for piece in ordered:
        if piece.n_queries_global != n_queries:
            raise ValueError("slices disagree on the global query count")
    queries: list[str | None] = [None] * n_queries
    for piece in ordered:
        for query, row in zip(piece.queries, piece.rows):
            queries[int(row)] = query
    if any(query is None for query in queries):
        raise ValueError("slices do not cover every global query row")
    query_index = {query: i for i, query in enumerate(queries)}
    incidence: dict[str, sparse.csr_matrix] = {}
    for kind in BIPARTITE_KINDS:
        merged: set[str] = set()
        for piece in ordered:
            merged.update(piece.facet_names[kind])
        merged_names = sorted(merged)
        column_of = {name: j for j, name in enumerate(merged_names)}
        counts = np.zeros(n_queries, dtype=np.int64)
        for piece in ordered:
            local = piece.incidence[kind]
            counts[piece.rows] = np.diff(local.indptr)
        indptr = np.zeros(n_queries + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.int64)
        data = np.empty(nnz, dtype=np.float64)
        sorted_indices = True
        for piece in ordered:
            local = piece.incidence[kind]
            if local.nnz == 0 and local.shape[0] == 0:
                continue
            remap = np.asarray(
                [column_of[name] for name in piece.facet_names[kind]],
                dtype=np.int64,
            )
            local_counts = np.diff(local.indptr)
            starts = indptr[piece.rows]
            take = np.repeat(
                starts - local.indptr[:-1].astype(np.int64), local_counts
            ) + np.arange(int(local.indptr[-1]), dtype=np.int64)
            if remap.size:
                indices[take] = remap[local.indices]
            data[take] = local.data
            sorted_indices = sorted_indices and bool(local.has_sorted_indices)
        incidence[kind] = _raw_csr(
            data,
            indices,
            indptr,
            (n_queries, len(merged_names)),
            sorted_indices=sorted_indices,
        )
    return BipartiteMatrices(
        queries=list(queries),
        query_index=query_index,
        incidence=incidence,
        affinity=LazyAffinities(_LazyGram(incidence)),
        transition=_LazyTransitions(incidence),
        gram=None,
    )


class _ShardedIndex(Mapping):
    """Query -> global ordinal over a (possibly lazily attached) plane.

    Lookups route through the plan, attaching the owning shard on demand;
    iteration and length describe the full global query set and force
    every shard in.
    """

    def __init__(self, owner: "ShardedExpander") -> None:
        self._owner = owner

    def __getitem__(self, query: str) -> int:
        ordinal = self._owner._ordinal_of(query)
        if ordinal is None:
            raise KeyError(query)
        return ordinal

    def __contains__(self, query: object) -> bool:
        return isinstance(query, str) and self._owner._ordinal_of(query) is not None

    def __iter__(self):
        return iter(self._owner._stitched().query_index)

    def __len__(self) -> int:
        return self._owner.n_queries_global


class ShardedMatrices:
    """The matrices facade the serving cache reads off a sharded plane.

    Exposes the global ``queries``/``query_index`` view plus
    :meth:`restrict_names` — the shard-aware compaction hook
    :class:`repro.core.serving.CompactCache` prefers over ordinal-space
    ``restrict`` when present.
    """

    def __init__(self, owner: "ShardedExpander") -> None:
        self._owner = owner
        self._index = _ShardedIndex(owner)

    @property
    def query_index(self) -> Mapping:
        """Query -> global ordinal (lazy, shard-routed)."""
        return self._index

    @property
    def queries(self) -> list[str]:
        """The full global query list (forces every shard in)."""
        return self._owner._stitched().queries

    @property
    def n_queries(self) -> int:
        """Global query-row count."""
        return self._owner.n_queries_global

    def restrict_names(self, chosen) -> BipartiteMatrices:
        """Compact matrices over *chosen* queries, bit-equal to unsharded.

        When every chosen query lives in one closed shard the compaction
        runs entirely against that shard's local slice; otherwise the
        stitched global matrices are restricted.
        """
        return self._owner._restrict_names(chosen)

    def restrict(self, ordinals) -> BipartiteMatrices:
        """Global-ordinal restrict via the stitched matrices."""
        return self._owner._stitched().restrict(ordinals)


class ShardedExpander:
    """Shard-aware drop-in for :class:`RandomWalkExpander`.

    ``expand()``/``walk_mass()`` are bit-identical to the unsharded
    expander at any shard count.  Walks whose seeds all live in closed
    shards run on those shards' local stacks; anything else *spills* —
    every shard is attached, the global plane is stitched, and the
    unsharded arithmetic runs on the reassembly.  Spill counters
    (``walks``/``spills``/``foreign_attaches``/``spilled_mass``) feed the
    ``serve.shard.*`` gauges.

    Construct with a full ``slices`` dict (in-process), or with a
    ``loader`` callback plus ``home_shards`` so a serving worker attaches
    only the shards it serves until a spill forces more in.
    """

    def __init__(
        self,
        plan: ShardPlan,
        slices: Mapping[int, ShardSlice] | None = None,
        loader=None,
        home_shards=None,
        n_queries_global: int | None = None,
    ) -> None:
        if slices is None and loader is None:
            raise ValueError("provide slices, a loader, or both")
        self._plan = plan
        self._slices: dict[int, ShardSlice] = dict(slices) if slices else {}
        self._loader = loader
        if home_shards is not None:
            self._home = frozenset(int(s) for s in home_shards)
        else:
            self._home = frozenset(self._slices)
        self._query_of: dict[int, str] = {}
        self._query_index: dict[str, int] = {}
        self._stitched_matrices: BipartiteMatrices | None = None
        self._stitched_walker: RandomWalkExpander | None = None
        self._matrices = ShardedMatrices(self)
        self.walks = 0
        self.spills = 0
        self.foreign_attaches = 0
        self.spilled_mass = 0.0
        for shard_id in sorted(self._home):
            if shard_id not in self._slices:
                self._slices[shard_id] = self._loader(shard_id)
        if n_queries_global is None:
            if not self._slices:
                raise ValueError("cannot infer the global query count")
            n_queries_global = next(iter(self._slices.values())).n_queries_global
        self.n_queries_global = int(n_queries_global)
        for piece in self._slices.values():
            self._register(piece)

    @classmethod
    def build(
        cls,
        multibipartite: MultiBipartite,
        plan: ShardPlan,
        matrices: BipartiteMatrices | None = None,
    ) -> "ShardedExpander":
        """Slice *multibipartite* under *plan* and wrap the slices."""
        if matrices is None:
            matrices = build_matrices(multibipartite)
        return cls(plan, slices=build_shard_slices(matrices, plan, multibipartite))

    @property
    def plan(self) -> ShardPlan:
        """The shard plan."""
        return self._plan

    @property
    def matrices(self) -> ShardedMatrices:
        """The global-view matrices facade."""
        return self._matrices

    @property
    def attached_shards(self) -> frozenset[int]:
        """Shards currently materialized in this expander."""
        return frozenset(self._slices)

    def slice_of(self, shard_id: int) -> ShardSlice:
        """The slice of *shard_id*, attaching it if needed."""
        return self._slice(shard_id)

    def spill_stats(self) -> dict:
        """Spill counters for observability export."""
        walks = self.walks
        return {
            "walks": walks,
            "spills": self.spills,
            "spill_fraction": (self.spills / walks) if walks else 0.0,
            "foreign_attaches": self.foreign_attaches,
            "spilled_mass": self.spilled_mass,
        }

    def update_slice(self, piece: ShardSlice) -> None:
        """Swap in a republished slice (same query set — per-shard epoch).

        Per-shard publishes never add queries (a delta with new queries
        forces a full publish, because it renumbers global ordinals), so
        the global query maps stay valid; only the stitched cache drops.
        """
        current = self._slices.get(piece.shard_id)
        if current is not None and current.queries != piece.queries:
            raise ValueError(
                "per-shard update cannot change the shard's query set; "
                "publish a full plane instead"
            )
        self._slices[piece.shard_id] = piece
        self._register(piece)
        self._stitched_matrices = None
        self._stitched_walker = None

    # -- internals -----------------------------------------------------------------

    def _register(self, piece: ShardSlice) -> None:
        for query, row in zip(piece.queries, piece.rows):
            ordinal = int(row)
            self._query_of[ordinal] = query
            self._query_index[query] = ordinal

    def _slice(self, shard_id: int) -> ShardSlice:
        piece = self._slices.get(shard_id)
        if piece is None:
            if self._loader is None:
                raise KeyError(f"shard {shard_id} is not materialized")
            piece = self._loader(shard_id)
            self._slices[shard_id] = piece
            self._register(piece)
            if shard_id not in self._home:
                self.foreign_attaches += 1
        return piece

    def _ordinal_of(self, query: str) -> int | None:
        normalized = normalize_query(query)
        cached = self._query_index.get(normalized)
        if cached is not None:
            return cached
        shard_id = self._plan.shard_of(normalized)
        self._slice(shard_id)
        return self._query_index.get(normalized)

    def _stitched(self) -> BipartiteMatrices:
        if self._stitched_matrices is None:
            for shard_id in range(self._plan.n_shards):
                self._slice(shard_id)
            self._stitched_matrices = stitch_slices(self._slices)
        return self._stitched_matrices

    def _stitched_expander(self) -> RandomWalkExpander:
        if self._stitched_walker is None:
            self._stitched_walker = RandomWalkExpander(
                None, matrices=self._stitched()
            )
        return self._stitched_walker

    def _seed_ordinals(self, seeds: Mapping[str, float]) -> list[tuple[int, float]]:
        """(global ordinal, weight) per known positive seed, in seed order."""
        known: list[tuple[int, float]] = []
        for query, weight in seeds.items():
            ordinal = self._ordinal_of(query)
            if ordinal is not None and weight > 0:
                known.append((ordinal, weight))
        return known

    def walk_mass(
        self, seeds: Mapping[str, float], config: CompactConfig
    ) -> np.ndarray:
        """Global PPR mass vector, bit-identical to the unsharded walk."""
        known = self._seed_ordinals(seeds)
        self.walks += 1
        start = np.zeros(self.n_queries_global)
        for ordinal, weight in known:
            start[ordinal] += weight
        total = start.sum()
        if total <= 0:
            raise ValueError("no seed query is present in the representation")
        active = sorted(
            {self._plan.shard_of(self._query_of[ordinal]) for ordinal, _ in known}
        )
        if all(self._slice(shard_id).closed for shard_id in active):
            start /= total
            mass = start.copy()
            for _ in range(config.iterations):
                stepped = np.zeros(self.n_queries_global)
                for shard_id in active:
                    piece = self._slice(shard_id)
                    facet_mass = _vec_times_csr(
                        mass[piece.rows], piece.forward_stack
                    )
                    stepped[piece.rows] = _vec_times_csr(
                        facet_mass, piece.backward_stack
                    )
                mass = config.restart * start + (1 - config.restart) * stepped
                total = mass.sum()
                if total > 0:
                    mass /= total
            return np.asarray(mass).ravel()
        self.spills += 1
        mass = self._stitched_expander().walk_mass(seeds, config)
        home_rows = np.concatenate(
            [self._slice(shard_id).rows for shard_id in active]
        )
        if home_rows.size:
            self.spilled_mass += max(0.0, 1.0 - float(mass[home_rows].sum()))
        return mass

    def expand(
        self, seeds: Mapping[str, float], config: CompactConfig | None = None
    ) -> list[str]:
        """Top-``Q`` queries by walk mass — the unsharded selection, exactly."""
        if config is None:
            config = CompactConfig()
        mass = self.walk_mass(seeds, config)
        seed_queries = [
            normalize_query(q)
            for q in seeds
            if self._ordinal_of(q) is not None
        ]
        chosen: list[str] = []
        seen: set[str] = set()
        for query in seed_queries:
            if query not in seen:
                chosen.append(query)
                seen.add(query)
        order = np.argsort(-mass, kind="stable")
        for ordinal in order:
            if len(chosen) >= config.size:
                break
            if mass[int(ordinal)] <= 0:
                continue
            query = self._query_of[int(ordinal)]
            if query not in seen:
                chosen.append(query)
                seen.add(query)
        return chosen

    def _restrict_names(self, chosen) -> BipartiteMatrices:
        shards = {self._plan.shard_of(query) for query in chosen}
        if len(shards) == 1:
            (shard_id,) = shards
            piece = self._slice(shard_id)
            if piece.closed:
                local_index = piece.query_index
                ordinals = sorted(local_index[query] for query in chosen)
                return piece.local_matrices().restrict(ordinals)
        full = self._stitched()
        ordinals = sorted(full.query_index[query] for query in chosen)
        return full.restrict(ordinals)
