"""Compact multi-bipartite extraction by Markov random walk (Sec. IV-A).

Running the regularization solve and the hitting-time walk on the full log
would be wasteful: most queries are irrelevant to the input query.  The
paper seeds a walk at the input query and its search context and expands
through the *full* multi-bipartite until ``Q`` queries are collected; the
downstream algorithms then run on this compact sub-representation.

We realize the expansion as truncated personalized-PageRank power iteration
over the uniform mixture of the three intra-bipartite transitions — a
deterministic evaluation of the paper's Markov random walk whose mass
ranking selects the top-``Q`` neighbourhood.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.graphs.matrices import BipartiteMatrices, build_matrices, row_normalize
from repro.graphs.multibipartite import BIPARTITE_KINDS, MultiBipartite
from repro.utils.text import normalize_query

try:  # scipy's C kernel for v @ CSR (the CSR read column-wise as a CSC).
    from scipy.sparse._sparsetools import csc_matvec as _csc_matvec
except ImportError:  # pragma: no cover - exercised only on exotic scipy
    _csc_matvec = None

__all__ = ["CompactConfig", "RandomWalkExpander", "compact_subgraph"]


def _vec_times_csr(vector: np.ndarray, matrix: sparse.csr_matrix) -> np.ndarray:
    """``vector @ matrix`` for a dense row vector and a CSR matrix."""
    if _csc_matvec is None:
        return np.asarray(vector @ matrix).ravel()
    n_rows, n_cols = matrix.shape
    out = np.zeros(n_cols)
    # A CSR's (indptr, indices, data) read as CSC describe its transpose.
    _csc_matvec(
        n_cols, n_rows, matrix.indptr, matrix.indices, matrix.data, vector, out
    )
    return out


@dataclass(frozen=True, slots=True)
class CompactConfig:
    """Parameters of the compact-representation expansion.

    Attributes:
        size: Target number of queries ``Q`` in the compact representation.
        restart: Teleport-back-to-seeds probability of the walk.
        iterations: Power-iteration steps (walk length horizon).
    """

    size: int = 200
    restart: float = 0.15
    iterations: int = 12

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("size must be >= 1")
        if not 0.0 < self.restart < 1.0:
            raise ValueError("restart must be in (0, 1)")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")


class RandomWalkExpander:
    """Caches the full-graph walk matrices and expands seed sets on demand.

    Pass prebuilt *matrices* to skip the ``build_matrices`` derivation —
    the streaming layer does this with incrementally patched epoch matrices
    (the multibipartite is then only kept as the representation handle).
    """

    def __init__(
        self,
        multibipartite: MultiBipartite,
        matrices: BipartiteMatrices | None = None,
        stacks: tuple[sparse.csr_matrix, sparse.csr_matrix] | None = None,
    ) -> None:
        self._multibipartite = multibipartite
        if matrices is None:
            matrices = build_matrices(multibipartite)
        self._matrices: BipartiteMatrices = matrices
        # The walk iterates through the factored two-step transition
        # (query -> facet -> query) instead of the precomputed query-query
        # mixture: the incidence matrices hold ~an order of magnitude fewer
        # nonzeros than the mixture, so each power-iteration step is
        # correspondingly cheaper.  The three bipartites are stacked along
        # the facet axis (forward side by side, backward on top of each
        # other, pre-scaled by 1/3) so one step is two thin matvecs.
        # Prebuilt *stacks* skip the derivation entirely — the
        # shared-memory serving plane publishes them once and workers
        # attach views instead of re-normalizing per process.
        if stacks is not None:
            self._forward_stack, self._backward_stack = stacks
        else:
            forwards, backwards = [], []
            for kind in BIPARTITE_KINDS:
                incidence = self._matrices.incidence[kind]
                forwards.append(row_normalize(incidence))
                backwards.append(
                    row_normalize(incidence.T) / len(BIPARTITE_KINDS)
                )
            self._forward_stack = sparse.hstack(forwards, format="csr")
            self._backward_stack = sparse.vstack(backwards, format="csr")

    @property
    def matrices(self) -> BipartiteMatrices:
        """The full-representation matrices (shared query ordering)."""
        return self._matrices

    @property
    def walk_stacks(self) -> tuple[sparse.csr_matrix, sparse.csr_matrix]:
        """The factored (forward, backward) walk stacks.

        The backward stack carries the 1/3 mixture pre-scaling; together
        they reproduce one power-iteration step as two thin matvecs.
        Exposed so the shared-memory plane can publish them verbatim.
        """
        return self._forward_stack, self._backward_stack

    def walk_mass(
        self, seeds: Mapping[str, float], config: CompactConfig
    ) -> np.ndarray:
        """Personalized-PageRank mass vector over all queries.

        Seeds absent from the representation are ignored; raises
        ``ValueError`` when none of the seeds is known.
        """
        index = self._matrices.query_index
        start = np.zeros(len(index))
        for query, weight in seeds.items():
            normalized = normalize_query(query)
            if normalized in index and weight > 0:
                start[index[normalized]] += weight
        total = start.sum()
        if total <= 0:
            raise ValueError("no seed query is present in the representation")
        start /= total

        mass = start.copy()
        for _ in range(config.iterations):
            facet_mass = _vec_times_csr(mass, self._forward_stack)
            stepped = _vec_times_csr(facet_mass, self._backward_stack)
            mass = config.restart * start + (1 - config.restart) * stepped
            # Zero-out-degree rows leak mass; renormalize to keep a ranking.
            total = mass.sum()
            if total > 0:
                mass /= total
        return np.asarray(mass).ravel()

    def expand(
        self, seeds: Mapping[str, float], config: CompactConfig | None = None
    ) -> list[str]:
        """The top-``Q`` queries by walk mass, seeds always included first."""
        if config is None:
            config = CompactConfig()
        mass = self.walk_mass(seeds, config)
        index = self._matrices.query_index
        queries = self._matrices.queries

        seed_queries = [
            normalize_query(q)
            for q in seeds
            if normalize_query(q) in index
        ]
        chosen: list[str] = []
        seen: set[str] = set()
        for query in seed_queries:
            if query not in seen:
                chosen.append(query)
                seen.add(query)
        order = np.argsort(-mass, kind="stable")
        for ordinal in order:
            if len(chosen) >= config.size:
                break
            query = queries[int(ordinal)]
            if query not in seen and mass[int(ordinal)] > 0:
                chosen.append(query)
                seen.add(query)
        return chosen


def compact_subgraph(
    multibipartite: MultiBipartite,
    seeds: Mapping[str, float],
    config: CompactConfig | None = None,
    expander: RandomWalkExpander | None = None,
) -> MultiBipartite:
    """Compact sub-representation around *seeds* (paper Sec. IV-A).

    Pass a prebuilt *expander* to amortize the full-graph matrices across
    many suggestion calls (the online-serving pattern).
    """
    if expander is None:
        expander = RandomWalkExpander(multibipartite)
    chosen = expander.expand(seeds, config)
    return multibipartite.restrict_queries(chosen)
