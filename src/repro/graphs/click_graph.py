"""The classic query-URL click graph — the baselines' substrate (Sec. VI).

FRW, BRW, HT and DQS all operate on this graph ("we utilize the original
methods described in literature as the baselines").  It offers the same raw
vs. ``cfiqf``-weighted choice as the multi-bipartite, which is what Fig. 3
compares, plus the row-stochastic transition matrices random walks need.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.graphs.bipartite import Bipartite
from repro.graphs.weighting import apply_cfiqf
from repro.logs.storage import QueryLog
from repro.utils.text import normalize_query

__all__ = ["ClickGraph", "build_click_graph"]


def _row_normalize(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Row-stochastic copy of *matrix*; all-zero rows stay zero."""
    sums = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = np.divide(
        1.0, sums, out=np.zeros_like(sums), where=sums > 0
    )
    return sparse.diags(inverse) @ matrix


class ClickGraph:
    """Query-URL bipartite with indexed nodes and transition matrices."""

    def __init__(self, bipartite: Bipartite) -> None:
        self._bipartite = bipartite
        self._queries = bipartite.queries
        self._urls = bipartite.facets
        self._query_index = {q: i for i, q in enumerate(self._queries)}
        self._url_index = {u: i for i, u in enumerate(self._urls)}
        self._matrix, _ = bipartite.to_matrix(self._query_index, self._url_index)

    @property
    def queries(self) -> list[str]:
        """Query nodes, sorted."""
        return list(self._queries)

    @property
    def urls(self) -> list[str]:
        """URL nodes, sorted."""
        return list(self._urls)

    @property
    def n_queries(self) -> int:
        """Number of query nodes."""
        return len(self._queries)

    def __contains__(self, query: str) -> bool:
        return normalize_query(query) in self._query_index

    def query_ordinal(self, query: str) -> int:
        """Row index of *query*; raises ``KeyError`` if absent."""
        normalized = normalize_query(query)
        try:
            return self._query_index[normalized]
        except KeyError:
            raise KeyError(f"query {normalized!r} not in click graph") from None

    def query_at(self, ordinal: int) -> str:
        """Query string at row *ordinal*."""
        return self._queries[ordinal]

    @property
    def adjacency(self) -> sparse.csr_matrix:
        """The (n_queries, n_urls) weighted adjacency."""
        return self._matrix

    def query_to_url_transition(self) -> sparse.csr_matrix:
        """Row-stochastic query -> URL transition."""
        return _row_normalize(self._matrix)

    def url_to_query_transition(self) -> sparse.csr_matrix:
        """Row-stochastic URL -> query transition."""
        return _row_normalize(self._matrix.T.tocsr())

    def query_transition(self) -> sparse.csr_matrix:
        """Two-step query -> query transition (through one URL)."""
        forward = self.query_to_url_transition()
        backward = self.url_to_query_transition()
        return (forward @ backward).tocsr()

    def neighbors(self, query: str) -> set[str]:
        """Queries sharing a clicked URL with *query*."""
        return self._bipartite.query_neighbors(normalize_query(query))

    def restrict_queries(self, queries) -> "ClickGraph":
        """Sub-click-graph over the given queries."""
        normalized = [normalize_query(q) for q in queries]
        return ClickGraph(self._bipartite.restrict_queries(normalized))


def build_click_graph(log: QueryLog, weighted: bool = True) -> ClickGraph:
    """Build the click graph of *log* (optionally ``cfiqf``-weighted)."""
    bipartite = Bipartite()
    for record in log:
        if record.clicked_url is None:
            continue
        query = normalize_query(record.query)
        if not query:
            continue
        bipartite.add(query, record.clicked_url, 1.0)
    if weighted:
        bipartite = apply_cfiqf(bipartite, log.total_queries)
    return ClickGraph(bipartite)
