"""Export representations to networkx for analysis and visualization.

The library's own algorithms run on scipy sparse matrices; these exporters
exist for downstream users who want to *inspect* a representation — degree
distributions, connected components, drawing the Fig. 2 picture of their
own log — with the standard graph toolkit.
"""

from __future__ import annotations

import networkx as nx

from repro.graphs.bipartite import Bipartite
from repro.graphs.click_graph import ClickGraph
from repro.graphs.multibipartite import BIPARTITE_KINDS, MultiBipartite

__all__ = [
    "bipartite_to_networkx",
    "click_graph_to_networkx",
    "multibipartite_to_networkx",
    "query_projection",
]

#: Node-attribute value marking query-side nodes.
QUERY_SIDE = 0
#: Node-attribute value marking facet-side nodes.
FACET_SIDE = 1


def bipartite_to_networkx(
    graph: Bipartite, kind: str = "X"
) -> nx.Graph:
    """One bipartite as an undirected weighted ``nx.Graph``.

    Query nodes get ``bipartite=0``; facet nodes ``bipartite=1`` and are
    namespaced as ``"{kind}:{facet}"`` so that a URL and a term with the
    same string cannot collide when graphs are composed.
    """
    out = nx.Graph()
    for query in graph.queries:
        out.add_node(query, bipartite=QUERY_SIDE, kind="query")
    for facet in graph.facets:
        out.add_node(f"{kind}:{facet}", bipartite=FACET_SIDE, kind=kind)
    for query in graph.queries:
        for facet, weight in graph.facets_of(query).items():
            out.add_edge(query, f"{kind}:{facet}", weight=weight, kind=kind)
    return out


def multibipartite_to_networkx(multibipartite: MultiBipartite) -> nx.Graph:
    """The full Fig. 2 picture: three facet namespaces, one query side."""
    out = nx.Graph()
    for kind in BIPARTITE_KINDS:
        part = bipartite_to_networkx(multibipartite.bipartite(kind), kind)
        out = nx.compose(out, part)
    return out


def click_graph_to_networkx(graph: ClickGraph) -> nx.Graph:
    """The classic query-URL click graph as an ``nx.Graph``."""
    out = nx.Graph()
    for query in graph.queries:
        out.add_node(query, bipartite=QUERY_SIDE, kind="query")
    for url in graph.urls:
        out.add_node(f"U:{url}", bipartite=FACET_SIDE, kind="U")
    adjacency = graph.adjacency
    rows, cols = adjacency.nonzero()
    for row, col in zip(rows, cols):
        out.add_edge(
            graph.query_at(int(row)),
            f"U:{graph.urls[int(col)]}",
            weight=float(adjacency[row, col]),
            kind="U",
        )
    return out


def query_projection(multibipartite: MultiBipartite) -> nx.Graph:
    """Query-query projection: an edge per pair sharing any facet.

    Edge attribute ``kinds`` lists the bipartites the pair co-occurs in —
    useful for seeing which channel (clicks, sessions, terms) connects two
    queries.
    """
    out = nx.Graph()
    for query in multibipartite.queries:
        out.add_node(query)
    for kind in BIPARTITE_KINDS:
        part = multibipartite.bipartite(kind)
        for query in part.queries:
            for neighbor in part.query_neighbors(query):
                if out.has_edge(query, neighbor):
                    kinds = out.edges[query, neighbor]["kinds"]
                    if kind not in kinds:
                        kinds.append(kind)
                else:
                    out.add_edge(query, neighbor, kinds=[kind])
    return out
