"""The PQS-DA framework: the paper's primary contribution, end to end.

:class:`~repro.core.suggester.PQSDA` wires the three components of Fig. 1
together — multi-bipartite representation, diversification, UPM
personalization — behind one ``build`` + ``suggest`` API::

    from repro.core import PQSDA, PQSDAConfig

    pqsda = PQSDA.build(log)                  # offline: graphs + profiles
    suggestions = pqsda.suggest("sun", k=10, user_id="user0001")
"""

from repro.core.config import PQSDAConfig
from repro.core.serving import (
    FULL_SERVICE,
    CacheStats,
    CompactCache,
    CompactEntry,
    ShedOptions,
)
from repro.core.suggester import PQSDA, head_queries

__all__ = [
    "CacheStats",
    "CompactCache",
    "CompactEntry",
    "FULL_SERVICE",
    "PQSDA",
    "PQSDAConfig",
    "ShedOptions",
    "head_queries",
]
