"""Top-level configuration of the PQS-DA pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.diversify.candidates import DiversifyConfig
from repro.graphs.compact import CompactConfig
from repro.personalize.upm import UPMConfig

__all__ = ["PQSDAConfig"]


@dataclass(frozen=True)
class PQSDAConfig:
    """All knobs of the end-to-end framework.

    Attributes:
        weighted: Use the cfiqf-weighted multi-bipartite representation
            (paper default); False selects the raw variant of Fig. 3(a)/(c).
        compact: Compact-representation extraction (Sec. IV-A).
        diversify: Algorithm 1 parameters (Sec. IV-B/C).
        upm: User Profiling Model training (Sec. V-A).
        personalize: Apply the personalization stage when a user profile is
            available; False yields the diversification-only intermediate
            results evaluated in Sec. VI-B.
        personalization_weight: Borda weight of the preference ranking.
        term_backoff: For input queries never seen in the log, seed the
            walk through existing log queries that share the input's terms
            (extension beyond the paper, enabled by the query-term
            bipartite).  When False, unseen queries yield no suggestions.
        backoff_seeds: Maximum number of term-matched seed queries used by
            the backoff.
        cache_size: LRU bound of the serving-side compact-entry cache
            (entries held per suggester; see ``repro.core.serving``).
    """

    weighted: bool = True
    compact: CompactConfig = field(default_factory=CompactConfig)
    diversify: DiversifyConfig = field(default_factory=DiversifyConfig)
    upm: UPMConfig = field(default_factory=UPMConfig)
    personalize: bool = True
    personalization_weight: float = 1.0
    term_backoff: bool = True
    backoff_seeds: int = 8
    cache_size: int = 128

    def __post_init__(self) -> None:
        if self.personalization_weight < 0:
            raise ValueError("personalization_weight must be >= 0")
        if self.backoff_seeds < 1:
            raise ValueError("backoff_seeds must be >= 1")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")
