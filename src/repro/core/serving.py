"""Online-serving primitives: compact-entry caching and request batching.

The first layer of a real serving stack on top of the PQS-DA pipeline.
Per-request work is sliced out of precomputed full-graph structures
(:meth:`repro.graphs.matrices.BipartiteMatrices.restrict`), and the result
— expanded neighbourhood, compact matrices, Eq. 15 solver, cross-bipartite
walker — is held in an LRU :class:`CompactCache` keyed by the walk's seed
set and the configs that shape the entry, so bursty or repeated traffic
pays the expansion once.

The cache is thread-safe: :meth:`CompactCache.get` may be called
concurrently from the worker pool behind ``Suggester.suggest_batch``.
Entry construction is deterministic, so two threads racing on the same key
build identical entries and the loser's work is simply discarded.

**Generation invariant.**  Entry builds run outside the lock, so a build
can straddle an epoch swap: ``get`` snapshots the cache *generation*
(bumped by every :meth:`CompactCache.rebind` and targeted
:meth:`CompactCache.invalidate`) together with the expander, and an
entry whose build saw an older generation is served to its own caller
but **never inserted** — it belongs to a dead epoch and would otherwise
survive the flush forever (its ``query_set`` can no longer intersect any
future delta of the new epoch).  Discards are counted in
``CacheStats.stale_discards``.

Attach a :class:`~repro.obs.registry.MetricsRegistry` via
:meth:`CompactCache.attach_metrics` to mirror the counters into the
observability layer (``serving.cache.*``); the default binding is the
no-op null registry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from repro.diversify.cross_bipartite import CrossBipartiteWalker, SwitchMatrix
from repro.diversify.regularization import RegularizationConfig, RelevanceSolver
from repro.graphs.compact import CompactConfig, RandomWalkExpander
from repro.graphs.matrices import BipartiteMatrices
from repro.obs.registry import NULL_REGISTRY

__all__ = [
    "CacheStats",
    "CompactCache",
    "CompactEntry",
    "FULL_SERVICE",
    "ShedOptions",
    "cache_key",
]


@dataclass(frozen=True, slots=True)
class ShedOptions:
    """Per-request degraded-service flags (the load-shedding tiers).

    An overloaded front-end keeps answering by dropping the most
    expensive pipeline stages first instead of queueing requests into
    their deadlines.  The flags are *bypasses*, strictly cheaper and
    strictly less faithful than full service:

    Attributes:
        skip_rerank: Bypass the hitting-time diversification rerank
            (Algorithm 1 steps 2..K, the truncated cross-bipartite walk).
            Candidates come back in pure Eq. 15 relevance order — still
            relevant, no longer diversity-aware.
        skip_personalize: Bypass the UPM profile scoring and Borda fusion;
            profiled users get the anonymous ranking.

    Tiers are cumulative (:meth:`for_tier`): tier 0 is full service,
    tier 1 sets ``skip_rerank``, tier 2 sets both.  Tier 3 (reject) never
    reaches the suggest path — the front-end answers 503 directly.
    """

    skip_rerank: bool = False
    skip_personalize: bool = False

    #: Highest tier that still serves (tier 3 = reject, handled upstream).
    MAX_SERVING_TIER = 2

    @classmethod
    def for_tier(cls, tier: int) -> "ShedOptions":
        """The cumulative flag set of shed *tier* (0, 1 or 2)."""
        if not 0 <= tier <= cls.MAX_SERVING_TIER:
            raise ValueError(
                f"shed tier must be in 0..{cls.MAX_SERVING_TIER}, got {tier}"
            )
        return cls(skip_rerank=tier >= 1, skip_personalize=tier >= 2)

    @property
    def tier(self) -> int:
        """The lowest tier that implies these flags."""
        if self.skip_personalize:
            return 2
        if self.skip_rerank:
            return 1
        return 0


#: The no-bypass default: every request runs the full pipeline.
FULL_SERVICE = ShedOptions()


def cache_key(
    seeds: Mapping[str, float],
    compact: CompactConfig,
    regularization: RegularizationConfig,
) -> tuple:
    """Hashable signature of one compact-entry request.

    The seed set (queries and weights) determines the expanded
    neighbourhood together with the walk parameters; the regularization
    parameters determine the cached Eq. 15 system.  Context-bearing
    requests carry their decayed weights in the seed mapping, so only
    requests with identical context timing share an entry — bare
    single-query traffic (the common case) always does.
    """
    return (
        tuple(sorted(seeds.items())),
        compact,
        tuple(sorted(regularization.alphas.items())),
        regularization.tolerance,
        regularization.max_iterations,
    )


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Counters of one :class:`CompactCache` (a point-in-time snapshot).

    Attributes:
        hits: Lookups served from the cache.
        misses: Lookups that had to build an entry.
        evictions: Entries dropped by the LRU size bound.
        size: Entries currently held.
        maxsize: The size bound.
        invalidations: Entries evicted by targeted invalidation
            (:meth:`CompactCache.invalidate` / epoch rebinds), i.e. entries
            whose cached neighbourhood intersected a delta's touched-query
            set.
        stale_discards: Entries built concurrently with an epoch swap and
            therefore discarded instead of inserted (see the generation
            invariant in the module docstring).  Each discard's lookup is
            already counted as a miss.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int
    invalidations: int = 0
    stale_discards: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups; always exactly ``hits + misses``."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when untouched)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class CompactEntry:
    """Everything the online path needs for one compact neighbourhood.

    Attributes:
        queries: The expanded neighbourhood, seed-first walk order.
        matrices: Compact matrices over those queries (sorted row order).
        solver: Prebuilt Eq. 15 solver on ``matrices``.
        walker: Prebuilt cross-bipartite walker on ``matrices``.
        query_set: The neighbourhood as a frozenset — the per-entry
            touched-query index that targeted invalidation intersects
            against.
    """

    queries: list[str]
    matrices: BipartiteMatrices
    solver: RelevanceSolver
    walker: CrossBipartiteWalker
    query_set: frozenset[str] = frozenset()


class CompactCache:
    """LRU cache of :class:`CompactEntry` objects over one full graph.

    Args:
        expander: The full-graph walk expander (its matrices must carry
            the cached grams, i.e. come from ``build_matrices``).
        maxsize: Bound on held entries; least-recently-used entries are
            evicted beyond it.
        switch: Cross-bipartite switch matrix for the cached walkers
            (None = uniform, the paper's default).
    """

    def __init__(
        self,
        expander: RandomWalkExpander,
        maxsize: int = 128,
        switch: SwitchMatrix | None = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._expander = expander
        self._maxsize = maxsize
        self._switch = switch
        self._entries: OrderedDict[tuple, CompactEntry] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._stale_discards = 0
        # Bumped by every rebind / targeted invalidation; builds that
        # straddle a bump are served but never inserted.
        self._generation = 0
        self.attach_metrics(None)

    def attach_metrics(self, registry) -> None:
        """Mirror the cache counters into *registry* (``serving.cache.*``).

        ``None`` (the initial binding) detaches — every instrument becomes
        a shared no-op.  Registry counters count events *since attach*;
        the internal :attr:`stats` counters always cover the cache's whole
        lifetime.
        """
        registry = registry if registry is not None else NULL_REGISTRY
        self._m_hits = registry.counter("serving.cache.hits")
        self._m_misses = registry.counter("serving.cache.misses")
        self._m_evictions = registry.counter("serving.cache.evictions")
        self._m_invalidations = registry.counter("serving.cache.invalidations")
        self._m_stale_discards = registry.counter(
            "serving.cache.stale_discards"
        )
        self._m_size = registry.gauge("serving.cache.size")
        self._m_fanout = registry.histogram(
            "serving.cache.invalidation_fanout",
            buckets=(0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0),
        )
        with self._lock:
            self._m_size.set(len(self._entries))

    @property
    def maxsize(self) -> int:
        """The LRU size bound."""
        return self._maxsize

    @property
    def generation(self) -> int:
        """The epoch-swap generation counter (see the module docstring)."""
        with self._lock:
            return self._generation

    @property
    def stats(self) -> CacheStats:
        """Current hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self._maxsize,
                invalidations=self._invalidations,
                stale_discards=self._stale_discards,
            )

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._m_size.set(0)

    def invalidate(self, queries: Iterable[str]) -> int:
        """Evict entries whose cached neighbourhood intersects *queries*.

        The targeted-invalidation contract of the streaming layer: a
        :class:`~repro.stream.delta.GraphDelta` reports the queries it
        touched, and only entries that actually cached one of them are
        rebuilt — everything else survives the epoch swap.  Returns the
        number of evicted entries (also accumulated in
        ``CacheStats.invalidations``).
        """
        touched = frozenset(queries)
        if not touched:
            return 0
        with self._lock:
            self._generation += 1
            stale = [
                key
                for key, entry in self._entries.items()
                if not touched.isdisjoint(entry.query_set)
            ]
            for key in stale:
                del self._entries[key]
            self._invalidations += len(stale)
            self._m_size.set(len(self._entries))
        self._m_invalidations.inc(len(stale))
        self._m_fanout.observe(len(stale))
        return len(stale)

    def rebind(
        self,
        expander: RandomWalkExpander,
        touched: Iterable[str] | None = None,
    ) -> int:
        """Point the cache at a new epoch's *expander*.

        Future misses build against the new epoch's full-graph structures;
        existing entries are self-contained slices of their own epoch and
        keep serving.  With *touched* given, only entries intersecting it
        are evicted (targeted invalidation); with ``None`` the cache is
        flushed wholesale.  Either way the generation counter is bumped,
        so entry builds in flight across the swap are discarded instead
        of inserted (see the module docstring).  Returns the number of
        entries dropped.
        """
        if touched is None:
            with self._lock:
                self._expander = expander
                self._generation += 1
                dropped = len(self._entries)
                self._entries.clear()
                self._m_size.set(0)
            self._m_fanout.observe(dropped)
            return dropped
        with self._lock:
            self._expander = expander
            self._generation += 1
        return self.invalidate(touched)

    def get(
        self,
        seeds: Mapping[str, float],
        compact: CompactConfig,
        regularization: RegularizationConfig,
        expander: RandomWalkExpander | None = None,
    ) -> CompactEntry:
        """The entry for *seeds*, building (and caching) it on a miss.

        *expander* overrides the cache's bound expander for this build —
        the epoch-pinned serving path passes the pinned epoch's expander so
        a request is served consistently even if a writer publishes a new
        epoch mid-request.

        The build runs outside the lock; if a :meth:`rebind` or targeted
        :meth:`invalidate` lands in between (the generation snapshot no
        longer matches at insert time), the freshly built entry is
        returned to the caller — it is consistent with the epoch the
        request started under — but **not** inserted, so a pre-swap entry
        can never be resurrected past the flush (``stale_discards``
        counts these).
        """
        key = cache_key(seeds, compact, regularization)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                self._m_hits.inc()
                return entry
            self._misses += 1
            generation = self._generation
            build_expander = expander if expander is not None else self._expander
        self._m_misses.inc()
        entry = self._build(seeds, compact, regularization, build_expander)
        evicted = 0
        with self._lock:
            if self._generation != generation:
                self._stale_discards += 1
                self._m_stale_discards.inc()
                return entry
            if key not in self._entries:
                self._entries[key] = entry
                while len(self._entries) > self._maxsize:
                    self._entries.popitem(last=False)
                    self._evictions += 1
                    evicted += 1
                self._m_size.set(len(self._entries))
        self._m_evictions.inc(evicted)
        return entry

    def _build(
        self,
        seeds: Mapping[str, float],
        compact: CompactConfig,
        regularization: RegularizationConfig,
        expander: RandomWalkExpander,
    ) -> CompactEntry:
        chosen = expander.expand(seeds, compact)
        full_matrices = expander.matrices
        # Shard-aware planes compact by query *name* (their local ordinal
        # spaces are ambiguous); the unsharded path keeps slicing by global
        # ordinal.  Both produce bit-identical compact matrices.
        restrict_names = getattr(full_matrices, "restrict_names", None)
        if restrict_names is not None:
            matrices = restrict_names(chosen)
        else:
            full_index = full_matrices.query_index
            ordinals = sorted(full_index[query] for query in chosen)
            matrices = full_matrices.restrict(ordinals)
        return CompactEntry(
            queries=chosen,
            matrices=matrices,
            solver=RelevanceSolver(matrices, regularization),
            walker=CrossBipartiteWalker(matrices, self._switch),
            query_set=frozenset(chosen),
        )
