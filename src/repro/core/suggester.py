"""The end-to-end PQS-DA suggester (paper Fig. 1).

Offline (``PQSDA.build``):

1. sessionize the log (unless ground-truth sessions are supplied);
2. build the (cfiqf-weighted) multi-bipartite representation and cache the
   full-graph walk matrices;
3. fit the UPM on per-user session documents and materialize the profile
   store.

Online (``suggest`` / ``suggest_batch``):

1. expand the compact representation around the input query and its search
   context (Sec. IV-A) — served through the :class:`CompactCache` fast
   path, which slices the compact matrices out of the cached full-graph
   structures and reuses whole entries for repeated seed sets;
2. run Algorithm 1 on the compact matrices — regularized first candidate,
   cross-bipartite hitting time for the rest (Sec. IV-B/C);
3. score candidates with the user's profile (Eq. 31) and fuse the two
   rankings with Borda (Sec. V-B).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.baselines.base import Suggester
from repro.core.config import PQSDAConfig
from repro.core.serving import (
    FULL_SERVICE,
    CacheStats,
    CompactCache,
    ShedOptions,
)
from repro.diversify.candidates import (
    DiversifiedSuggestions,
    diversify,
    diversify_from_seed_vector,
)
from repro.obs.registry import NULL_REGISTRY
from repro.obs.trace import NULL_TRACER, Span, Tracer
from repro.graphs.compact import RandomWalkExpander
from repro.graphs.multibipartite import MultiBipartite, build_multibipartite
from repro.logs.schema import QueryRecord, Session
from repro.logs.sessionizer import sessionize
from repro.logs.storage import QueryLog
from repro.personalize.borda import personalize_ranking
from repro.personalize.profiles import ArrayProfileStore, UserProfileStore
from repro.personalize.upm import UPM
from repro.topicmodels.corpus import build_corpus
from repro.utils.text import jaccard, normalize_query, tokenize

__all__ = ["PQSDA", "head_queries"]


def head_queries(log: QueryLog, n: int) -> list[str]:
    """The *n* most frequent normalized queries of *log*, hottest first.

    Real query streams are heavily head-skewed, so a small top-``n`` by
    submission frequency covers a large traffic share.  Ties break
    lexicographically for a deterministic table across rebuilds.  This is
    the extraction behind the scale-out pool's precomputed hot-query tier
    (:class:`repro.serve.pool.SuggestWorkerPool` ``hot_queries`` /
    ``hot_top``) and :meth:`repro.stream.epoch.Epoch.head_queries`.
    """
    if n <= 0:
        return []
    ranked = sorted(
        log.unique_queries,
        key=lambda query: (-log.query_frequency(query), query),
    )
    return ranked[:n]


class PQSDA(Suggester):
    """Personalized Query Suggestion With Diversity Awareness."""

    name = "PQS-DA"

    def __init__(
        self,
        multibipartite: MultiBipartite,
        expander: RandomWalkExpander,
        profiles: UserProfileStore | ArrayProfileStore | None,
        config: PQSDAConfig,
    ) -> None:
        self._multibipartite = multibipartite
        self._expander = expander
        self._profiles = profiles
        self._config = config
        self._epochs = None  # EpochManager once attach_epochs is called
        self._cache = CompactCache(
            expander,
            maxsize=config.cache_size,
            switch=config.diversify.switch,
        )
        self._registry = NULL_REGISTRY
        self._tracer = NULL_TRACER
        self._batch_depth = NULL_REGISTRY.gauge("serving.batch.queue_depth")

    # -- construction ----------------------------------------------------------------

    @classmethod
    def build(
        cls,
        log: QueryLog,
        sessions: list[Session] | None = None,
        config: PQSDAConfig | None = None,
        multibipartite: MultiBipartite | None = None,
        expander: RandomWalkExpander | None = None,
        registry=None,
    ) -> "PQSDA":
        """Run the full offline pipeline over *log*.

        Pass a prebuilt *multibipartite* to supply a custom representation
        (e.g. an alternative weighting scheme) while reusing the rest of
        the pipeline; pass a matching prebuilt *expander* too when the
        matrices already exist (the streaming bootstrap path does).

        Pass a :class:`~repro.obs.registry.MetricsRegistry` as *registry*
        to observe the whole lifecycle: UPM training routes its per-sweep
        metrics there, and the returned suggester comes pre-attached
        (see :meth:`attach_metrics`).
        """
        if config is None:
            config = PQSDAConfig()
        if sessions is None:
            sessions = sessionize(log)
        if multibipartite is None:
            multibipartite = build_multibipartite(
                log, sessions, weighted=config.weighted
            )
        if expander is None:
            expander = RandomWalkExpander(multibipartite)
        profiles: UserProfileStore | None = None
        if config.personalize:
            corpus = build_corpus(log, sessions)
            if corpus.n_documents > 0:
                model = UPM(config.upm)
                if registry is not None:
                    model.attach_metrics(registry)
                model.fit(corpus)
                profiles = UserProfileStore(model)
        instance = cls(multibipartite, expander, profiles, config)
        if registry is not None:
            instance.attach_metrics(registry)
        return instance

    # -- accessors -------------------------------------------------------------------

    @property
    def config(self) -> PQSDAConfig:
        """The pipeline configuration."""
        return self._config

    @property
    def representation(self) -> MultiBipartite:
        """The full multi-bipartite representation."""
        return self._multibipartite

    @property
    def expander(self) -> RandomWalkExpander:
        """The full-graph walk expander behind the online path."""
        return self._expander

    @property
    def profiles(self) -> UserProfileStore | ArrayProfileStore | None:
        """The UPM profile store (None when personalization is disabled)."""
        return self._profiles

    @property
    def serving_cache(self) -> CompactCache:
        """The compact-entry cache behind the online path."""
        return self._cache

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the serving cache."""
        return self._cache.stats

    # -- observability -----------------------------------------------------------------

    def attach_metrics(self, registry) -> None:
        """Route serving metrics and trace spans into *registry*.

        Attaches the compact-entry cache's counters
        (``serving.cache.*``), the batch queue-depth gauge
        (``serving.batch.queue_depth``), and a
        :class:`~repro.obs.trace.Tracer` whose per-stage spans
        (``suggest`` → ``expand``/``solve``/``walk``/``rerank``) feed the
        ``trace.span.seconds`` histogram.  With no registry attached
        (the default) every instrumentation point is a shared no-op.
        """
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._tracer = Tracer(registry) if registry is not None else NULL_TRACER
        self._cache.attach_metrics(registry)
        self._batch_depth = self._registry.gauge("serving.batch.queue_depth")

    @property
    def metrics(self):
        """The attached registry (the shared null registry by default)."""
        return self._registry

    @property
    def last_trace(self) -> Span | None:
        """Span tree of the calling thread's last completed ``suggest``."""
        return self._tracer.last_trace

    # -- streaming epochs --------------------------------------------------------------

    def attach_epochs(self, manager) -> None:
        """Serve from the epochs of an :class:`~repro.stream.epoch.EpochManager`.

        Adopts the manager's current epoch immediately and subscribes to
        future publishes: each publish atomically swaps the representation
        and expander and runs targeted cache invalidation against the
        epoch's touched-query set.  Each request pins one epoch for its
        whole duration (see :meth:`diversified_candidates`), so concurrent
        ``suggest_batch`` readers are never blocked — nor served a mix of
        two generations — by a mid-request publish.
        """
        self._epochs = manager
        self._apply_epoch(manager.current())
        manager.subscribe(self._apply_epoch)

    def _apply_epoch(self, epoch) -> None:
        """Adopt *epoch* for future requests; invalidate stale cache entries."""
        self.rebind_representation(
            epoch.multibipartite, epoch.expander, epoch.touched_queries
        )
        if getattr(epoch, "profiles", None) is not None:
            self.rebind_profiles(epoch.profiles)

    def rebind_representation(
        self,
        multibipartite,
        expander: RandomWalkExpander,
        touched_queries=None,
    ) -> None:
        """Swap the serving representation in place.

        Future requests expand against *expander* (whose matrices define
        the new generation); cached compact entries intersecting
        *touched_queries* are evicted (``None`` flushes wholesale).  This
        is the single swap point shared by the in-process epoch
        subscription (:meth:`attach_epochs`) and the cross-process
        generation handshake of :class:`repro.serve.pool.SuggestWorkerPool`
        workers — both paths inherit the cache's generation invariant, so
        entry builds straddling the swap are served but never inserted.
        """
        self._multibipartite = multibipartite
        self._expander = expander
        self._cache.rebind(expander, touched_queries)

    def rebind_profiles(
        self, profiles: UserProfileStore | ArrayProfileStore | None
    ) -> None:
        """Swap the profile store in place (a profile-generation swap).

        Future requests rerank against *profiles*; in-flight requests
        keep the store they looked up at entry (stores are immutable —
        feedback folds produce new ones).  This is the swap point shared
        by the in-process epoch subscription (epochs carrying a folded
        profile generation) and the worker-side ``pswap`` handshake of
        :class:`repro.serve.pool.SuggestWorkerPool`.
        """
        self._profiles = profiles

    # -- online suggestion -----------------------------------------------------------

    def _context_seeds(
        self,
        query: str,
        context: Sequence[QueryRecord],
        timestamp: float,
    ) -> dict[str, float]:
        """Walk seeds: the input query plus its decayed search context."""
        seeds = {normalize_query(query): 1.0}
        lam = self._config.diversify.decay_lambda
        for record in context:
            weight = math.exp(lam * min(record.timestamp - timestamp, 0.0))
            candidate = normalize_query(record.query)
            seeds[candidate] = max(seeds.get(candidate, 0.0), weight)
        return seeds

    def _backoff_seeds(
        self, normalized: str, multibipartite: MultiBipartite
    ) -> dict[str, float]:
        """Seed log queries for an unseen input, by shared-term Jaccard.

        A candidate's token set is exactly its facet set in the query-term
        bipartite (that is how the bipartite is built), so the memoized
        facet sets stand in for re-tokenizing every candidate on each
        unseen-query call.
        """
        terms = tokenize(normalized)
        if not terms:
            return {}
        term_bipartite = multibipartite.bipartite("T")
        candidates: set[str] = set()
        for term in terms:
            candidates.update(term_bipartite.queries_of(term))
        scored = {
            candidate: jaccard(terms, term_bipartite.facet_set(candidate))
            for candidate in candidates
        }
        top = sorted(scored.items(), key=lambda pair: (-pair[1], pair[0]))
        return dict(top[: self._config.backoff_seeds])

    def diversified_candidates(
        self,
        query: str,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
        skip_rerank: bool = False,
    ) -> DiversifiedSuggestions:
        """The diversification component's intermediate output (Sec. VI-B).

        Unseen input queries fall back to term-matched seeds when
        ``config.term_backoff`` is on; otherwise (or when no term matches
        either) the result is empty.  Under an attached epoch manager the
        request pins one epoch for its whole duration, so a concurrent
        publish can neither block it nor split it across generations.
        *skip_rerank* is the tier-1 load-shed bypass: the hitting-time
        selection loop is skipped and candidates come back in pure
        Eq. 15 relevance order (see
        :class:`~repro.core.serving.ShedOptions`).
        """
        if self._epochs is None:
            return self._diversified(
                self._multibipartite, None, query, context, timestamp,
                skip_rerank,
            )
        with self._epochs.pin() as epoch:
            return self._diversified(
                epoch.multibipartite, epoch.expander, query, context,
                timestamp, skip_rerank,
            )

    def _diversified(
        self,
        multibipartite: MultiBipartite,
        expander: RandomWalkExpander | None,
        query: str,
        context: Sequence[QueryRecord],
        timestamp: float,
        skip_rerank: bool = False,
    ) -> DiversifiedSuggestions:
        """Algorithm 1 against one consistent representation generation."""
        normalized = normalize_query(query)
        if normalized in multibipartite:
            seeds = self._context_seeds(normalized, context, timestamp)
            with self._tracer.span("expand"):
                entry = self._cache.get(
                    seeds,
                    self._config.compact,
                    self._config.diversify.regularization,
                    expander=expander,
                )
            return diversify(
                entry.matrices,
                normalized,
                input_timestamp=timestamp,
                context=context,
                config=self._config.diversify,
                solver=entry.solver,
                walker=entry.walker,
                tracer=self._tracer,
                skip_hitting=skip_rerank,
            )

        if not self._config.term_backoff:
            return DiversifiedSuggestions([], {}, normalized)
        seeds = self._backoff_seeds(normalized, multibipartite)
        if not seeds:
            return DiversifiedSuggestions([], {}, normalized)
        with self._tracer.span("expand"):
            entry = self._cache.get(
                seeds,
                self._config.compact,
                self._config.diversify.regularization,
                expander=expander,
            )
        matrices = entry.matrices
        f0 = np.zeros(matrices.n_queries)
        for seed, weight in seeds.items():
            row = matrices.query_index.get(seed)
            if row is not None:
                f0[row] = weight
        return diversify_from_seed_vector(
            matrices,
            f0,
            excluded=set(),
            input_label=normalized,
            config=self._config.diversify,
            solver=entry.solver,
            walker=entry.walker,
            tracer=self._tracer,
            skip_hitting=skip_rerank,
        )

    def suggest(
        self,
        query: str,
        k: int = 10,
        user_id: str | None = None,
        context: Sequence[QueryRecord] = (),
        timestamp: float = 0.0,
        shed: ShedOptions | int | None = None,
    ) -> list[str]:
        """Suggest up to *k* queries for *query* (see :class:`Suggester`).

        *shed* degrades the request on purpose (the front-end's
        load-shedding tiers): pass a :class:`~repro.core.serving.ShedOptions`
        or an integer tier (0 = full service, 1 = skip the hitting-time
        rerank, 2 = additionally skip personalization).  ``None`` serves
        the full pipeline.
        """
        if shed is None:
            shed = FULL_SERVICE
        elif isinstance(shed, int):
            shed = ShedOptions.for_tier(shed)
        with self._tracer.span("suggest"):
            diversified = self.diversified_candidates(
                query,
                context=context,
                timestamp=timestamp,
                skip_rerank=shed.skip_rerank,
            )
            candidates = diversified.top(max(k, self._config.diversify.k))
            if not candidates:
                return []
            if (
                shed.skip_personalize
                or not self._config.personalize
                or self._profiles is None
                or user_id is None
                or user_id not in self._profiles
            ):
                return candidates[:k]
            with self._tracer.span("rerank"):
                scores = self._profiles.score_candidates(user_id, candidates)
                final = personalize_ranking(
                    candidates,
                    scores,
                    personalization_weight=self._config.personalization_weight,
                )
                return final.top(k)

    def suggest_batch(
        self,
        requests,
        n_workers: int = 1,
    ) -> list[list[str]]:
        """Batched suggestion (see :meth:`Suggester.suggest_batch`).

        Additionally tracks the in-flight request count in the
        ``serving.batch.queue_depth`` gauge when a registry is attached:
        incremented by the batch size at submit, decremented when the
        batch drains (so concurrent batches sum their depths).
        """
        requests = list(requests)
        depth = self._batch_depth
        depth.inc(len(requests))
        try:
            return super().suggest_batch(requests, n_workers=n_workers)
        finally:
            depth.dec(len(requests))
