"""Drop-in pipeline for the public AOL query-log format.

The reproduction runs on any log in the 2006 AOL research-collection TSV
layout (``AnonID\\tQuery\\tQueryTime\\tItemRank\\tClickURL``).  This example:

1. exports a synthetic log to that exact format (stand-in for
   ``user-ct-test-collection-01.txt``);
2. re-imports it with the AOL reader;
3. cleans it (Wang & Zhai-style rules) and segments sessions;
4. builds PQS-DA and produces suggestions.

Point ``AOL_PATH`` at a real AOL file to run on the public collection.

Run:  python examples/aol_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import (
    GeneratorConfig,
    PQSDA,
    PQSDAConfig,
    generate_log,
    make_world,
    read_aol,
    write_aol,
)
from repro.logs.cleaning import CleaningRules, clean_log
from repro.logs.sessionizer import sessionize

#: Replace with e.g. Path("user-ct-test-collection-01.txt") for real data.
AOL_PATH: Path | None = None

#: Cap for the number of rows read from a (large) real collection file.
MAX_RECORDS = 50_000


def main() -> None:
    if AOL_PATH is not None:
        path = AOL_PATH
        print(f"Reading real AOL file {path} ...")
    else:
        print("No real AOL file configured; exporting a synthetic one...")
        world = make_world(seed=0)
        synthetic = generate_log(
            world, GeneratorConfig(n_users=40, seed=11)
        )
        path = Path(tempfile.gettempdir()) / "synthetic_aol.txt"
        rows = write_aol(synthetic.log, path)
        print(f"  wrote {rows} rows to {path}")

    log = read_aol(path, max_records=MAX_RECORDS)
    print(f"Parsed {len(log)} records from {len(log.users)} users")

    cleaned, report = clean_log(
        log,
        CleaningRules(min_query_frequency=1, max_user_queries=5_000),
    )
    print(
        f"Cleaning: kept {report.output_records}/{report.input_records} rows "
        f"(dropped {report.dropped_empty} empty, {report.dropped_long} long, "
        f"{report.dropped_rare} rare; {len(report.robot_users)} robot users)"
    )

    sessions = sessionize(cleaned)
    print(f"Sessionized into {len(sessions)} sessions")

    pqsda = PQSDA.build(cleaned, sessions=sessions, config=PQSDAConfig())
    probe = max(cleaned.unique_queries, key=cleaned.query_frequency)
    user = cleaned.users[0]
    print(f"\nSuggestions for the most frequent query {probe!r} (user {user}):")
    for rank, suggestion in enumerate(
        pqsda.suggest(probe, k=10, user_id=user), start=1
    ):
        print(f"  {rank:2d}. {suggestion}")


if __name__ == "__main__":
    main()
