"""The paper's "sun" scenario: facet coverage under query uncertainty.

The query "sun" can mean Sun Microsystems (Computers/Programming/Java), the
star (Science/Astronomy) or a UK newspaper (News/Newspapers).  This example
compares how many facets each method's top-10 suggestion list covers:

* FRW — a relevance-oriented click-graph walk (typically one facet);
* DQS — click-graph diversification;
* PQS-DA's diversification component — multi-bipartite + cross-bipartite
  hitting time (covers the most facets, paper Fig. 3).

Run:  python examples/ambiguous_query_facets.py
"""

from collections import Counter

from repro import PQSDA, PQSDAConfig, GeneratorConfig, generate_log, make_world
from repro.baselines.registry import build_baseline
from repro.synth.oracle import Oracle


def facet_histogram(suggestions, oracle):
    counts = Counter()
    for suggestion in suggestions:
        category = oracle.category_of_query(suggestion)
        counts[str(category.top) if category else "?"] += 1
    return counts


def main() -> None:
    world = make_world(seed=0)
    # A high ambiguity rate guarantees plenty of "sun"-style sessions.
    synthetic = generate_log(
        world,
        GeneratorConfig(
            n_users=60, mean_sessions_per_user=12, ambiguous_rate=0.6, seed=3
        ),
    )
    oracle = Oracle(world, synthetic)

    pqsda = PQSDA.build(
        synthetic.log,
        sessions=synthetic.sessions,
        config=PQSDAConfig(personalize=False),
    )
    frw = build_baseline("FRW", synthetic.log)
    dqs = build_baseline("DQS", synthetic.log)

    ambiguous = [
        term
        for term in world.vocabulary.ambiguous_terms
        if term in pqsda.representation
    ]
    print(f"Ambiguous queries present in the log: {ambiguous}\n")

    for query in ambiguous[:4]:
        true_facets = {
            str(leaf) for leaf in world.vocabulary.leaves_of_term(query)
        }
        print(f"=== input {query!r} (true facets: {sorted(true_facets)}) ===")
        for method, suggester in (
            ("PQS-DA", pqsda),
            ("DQS", dqs),
            ("FRW", frw),
        ):
            suggestions = suggester.suggest(query, k=10)
            histogram = facet_histogram(suggestions, oracle)
            print(
                f"  {method:7s} covers {len(histogram)} top-level facets: "
                f"{dict(histogram)}"
            )
            for suggestion in suggestions[:5]:
                category = oracle.category_of_query(suggestion)
                print(f"      {suggestion:30s} [{category}]")
        print()


if __name__ == "__main__":
    main()
