"""Quickstart: build PQS-DA over a synthetic query log and get suggestions.

Runs the full pipeline end to end in under a minute:

1. build the synthetic search world (ODP-like taxonomy, titled web pages);
2. generate an AOL-style query log for 50 simulated users;
3. build PQS-DA offline (multi-bipartite representation + UPM profiles);
4. ask for suggestions for the paper's running example query "sun" — as an
   anonymous user and as two users with different interests.

Run:  python examples/quickstart.py
"""

from repro import PQSDA, PQSDAConfig, GeneratorConfig, generate_log, make_world
from repro.personalize.upm import UPMConfig
from repro.synth.oracle import Oracle


def main() -> None:
    print("Building the synthetic search world...")
    world = make_world(seed=0)

    print("Generating a query log (50 users, ~12 sessions each)...")
    config = GeneratorConfig(
        n_users=50, mean_sessions_per_user=12, ambiguous_rate=0.5, seed=1
    )
    synthetic = generate_log(world, config)
    log = synthetic.log
    print(
        f"  -> {len(log)} records, {len(log.users)} users, "
        f"{len(log.unique_queries)} unique queries"
    )

    print("Building PQS-DA (graphs + user profiles)...")
    pqsda = PQSDA.build(
        log,
        sessions=synthetic.sessions,
        config=PQSDAConfig(upm=UPMConfig(n_topics=10, iterations=30, seed=0)),
    )

    query = "sun"
    if query not in pqsda.representation:
        # Fall back to any frequent query of the generated log.
        query = max(log.unique_queries, key=log.query_frequency)
    print(f"\nInput query: {query!r}")

    print("\nAnonymous (diversification only):")
    for rank, suggestion in enumerate(pqsda.suggest(query, k=8), start=1):
        print(f"  {rank:2d}. {suggestion}")

    oracle = Oracle(world, synthetic)
    users = log.users[:2]
    for user_id in users:
        model = synthetic.population.get(user_id)
        interests = ", ".join(str(leaf) for leaf in model.interest_leaves[:2])
        print(f"\nPersonalized for {user_id} (interests: {interests}):")
        for rank, suggestion in enumerate(
            pqsda.suggest(query, k=8, user_id=user_id), start=1
        ):
            category = oracle.category_of_query(suggestion)
            print(f"  {rank:2d}. {suggestion:30s} [{category}]")


if __name__ == "__main__":
    main()
