"""Analyze a log's representations with networkx (Sec. III, quantified).

Builds the click graph and the multi-bipartite representation of a
synthetic log, exports both to networkx, and compares their structure:
connectivity, degree distribution, connected components, and which channel
(clicks / sessions / terms) links query pairs.  This is the Fig. 2
argument — "the click graph only captures a small portion of the rich
information in query log" — computed on a full log instead of 7 rows.

Run:  python examples/representation_analysis.py
"""

import networkx as nx

from repro import GeneratorConfig, generate_log, make_world
from repro.graphs.click_graph import build_click_graph
from repro.graphs.export import (
    click_graph_to_networkx,
    multibipartite_to_networkx,
    query_projection,
)
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize


def main() -> None:
    world = make_world(seed=0)
    synthetic = generate_log(
        world,
        GeneratorConfig(
            n_users=40,
            click_probability=0.55,
            hub_click_probability=0.1,
            seed=7,
        ),
    )
    log = synthetic.log
    sessions = sessionize(log)
    print(f"log: {len(log)} records, {len(log.unique_queries)} unique queries")

    click = build_click_graph(log, weighted=False)
    multi = build_multibipartite(log, sessions, weighted=False)

    click_nx = click_graph_to_networkx(click)
    multi_nx = multibipartite_to_networkx(multi)
    projection = query_projection(multi)

    print("\n--- graph sizes ---")
    print(f"click graph     : {click_nx.number_of_nodes()} nodes, "
          f"{click_nx.number_of_edges()} edges")
    print(f"multi-bipartite : {multi_nx.number_of_nodes()} nodes, "
          f"{multi_nx.number_of_edges()} edges")

    print("\n--- connectivity (query side) ---")
    click_queries = {
        n for n, d in click_nx.nodes(data=True) if d["kind"] == "query"
    }
    click_isolated = len(set(multi.queries) - click_queries)
    projection_isolated = sum(
        1 for n in projection if projection.degree(n) == 0
    )
    print(f"queries unreachable via clicks alone : {click_isolated} "
          f"of {multi.n_queries}")
    print(f"queries isolated in multi-bipartite  : {projection_isolated}")
    components = nx.number_connected_components(projection)
    print(f"query-projection connected components: {components}")

    print("\n--- which channel connects query pairs? ---")
    channel_counts = {"U": 0, "S": 0, "T": 0}
    multi_channel = 0
    for _, _, data in projection.edges(data=True):
        kinds = data["kinds"]
        if len(kinds) > 1:
            multi_channel += 1
        for kind in kinds:
            channel_counts[kind] += 1
    total_edges = projection.number_of_edges()
    print(f"query pairs connected             : {total_edges}")
    for kind, label in (("U", "shared click"), ("S", "shared session"),
                        ("T", "shared term")):
        print(f"  via {label:15s}: {channel_counts[kind]:5d} "
              f"({channel_counts[kind] / total_edges:.0%})")
    print(f"  via multiple channels : {multi_channel} "
          f"({multi_channel / total_edges:.0%})")

    print("\n--- highest-degree queries (multi-bipartite projection) ---")
    top = sorted(projection.degree, key=lambda p: -p[1])[:5]
    for query, degree in top:
        ambiguous = world.vocabulary.is_ambiguous(query.split()[0])
        marker = "  (ambiguous head term)" if ambiguous else ""
        print(f"  {query:28s} degree {degree}{marker}")


if __name__ == "__main__":
    main()
