"""Personalization deep dive: same query, different users, different order.

Builds a small hand-crafted log with two crisply different users — a Java
developer and an amateur astronomer — both of whom issue the ambiguous
query "sun".  Shows:

1. the UPM profiles (topic vectors) learned for each user;
2. per-candidate preference scores P(q|d) (Eq. 31);
3. the final Borda-fused suggestion lists: the developer sees Java queries
   first, the astronomer sees astronomy queries first, and both lists keep
   the other facet (diversity is preserved, only the *ranking* changes).

Run:  python examples/personalized_reranking.py
"""

from repro.core import PQSDA, PQSDAConfig
from repro.logs.schema import QueryRecord
from repro.logs.storage import QueryLog
from repro.personalize.upm import UPMConfig


def build_log() -> QueryLog:
    """Six users: three Java developers, three amateur astronomers.

    All six issue the ambiguous query "sun"; the remaining sessions are
    facet-specific with heavy word reuse (what the UPM's per-user counts
    feed on).  Several users per facet give the learned topic-word
    hyperparameters enough pooled evidence to separate the two topics.
    """
    rows = []
    day = 86_400.0
    java_sessions = [
        ["java jvm", "jvm download"],
        ["java applet", "applet tutorial"],
        ["sun", "sun java"],
        ["java jdk", "jdk install"],
        ["jvm download", "java jvm"],
        ["java applet", "java jdk"],
    ]
    astro_sessions = [
        ["telescope orbit", "orbit planet"],
        ["comet nebula", "nebula photo"],
        ["sun", "sun solar"],
        ["telescope review", "telescope orbit"],
        ["orbit planet", "comet orbit"],
        ["nebula photo", "telescope orbit"],
    ]
    java_urls = ["www.java.com", "java.sun.com"]
    astro_urls = ["www.nasa.gov", "www.skyandtelescope.com"]
    for member in range(3):
        for s, queries in enumerate(java_sessions):
            for q, query in enumerate(queries):
                rows.append(
                    QueryRecord(
                        f"dev{member}",
                        query,
                        s * day + member * 7_200.0 + q * 60.0,
                        clicked_url=java_urls[q % 2],
                    )
                )
        for s, queries in enumerate(astro_sessions):
            for q, query in enumerate(queries):
                rows.append(
                    QueryRecord(
                        f"astro{member}",
                        query,
                        s * day + 3_600.0 + member * 7_200.0 + q * 60.0,
                        clicked_url=astro_urls[q % 2],
                    )
                )
    return QueryLog(rows)


def main() -> None:
    log = build_log()
    pqsda = PQSDA.build(
        log,
        config=PQSDAConfig(
            upm=UPMConfig(n_topics=2, iterations=60, seed=0),
        ),
    )
    store = pqsda.profiles
    assert store is not None

    print("UPM user profiles (theta over 2 topics):")
    for user_id in store.user_ids:
        theta = store.profile(user_id).theta
        print(f"  {user_id:6s} theta = [{theta[0]:.2f}, {theta[1]:.2f}]")

    candidates = pqsda.diversified_candidates("sun").ranking
    print(f"\nDiversified candidates for 'sun': {candidates}")

    print("\nPer-user preference scores P(q|d) (Eq. 31):")
    for user_id in ("dev0", "astro0"):
        scores = store.score_candidates(user_id, candidates)
        ordered = sorted(scores.items(), key=lambda p: -p[1])
        print(f"  {user_id}:")
        for query, score in ordered[:5]:
            print(f"    {query:20s} {score:.4f}")

    print("\nFinal personalized suggestions (Borda fusion):")
    for user_id in ("dev0", "astro0"):
        suggestions = pqsda.suggest("sun", k=6, user_id=user_id)
        print(f"  {user_id:7s} -> {suggestions}")


if __name__ == "__main__":
    main()
