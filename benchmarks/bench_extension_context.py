"""Extension experiment: context-aware suggestion (mid-session protocol).

Not a paper figure — an extension study.  The input is each test session's
*last* query with the preceding queries as search context.  Compared:

* PQS-DA — context enters both the compact-walk seeds and the Eq. 7
  backward-decayed ``F⁰``;
* CACB — Cao et al.'s concept-sequence suffix tree (the paper's ref [2]),
  the canonical context-aware baseline;
* FRW — context-blind control.

Expected: the two context-aware methods beat the context-blind control on
PPR, with PQS-DA additionally personalized.
"""

from benchmarks.conftest import KS, print_figure
from repro.baselines.context_aware import ContextAwareSuggester
from repro.baselines.registry import build_baseline
from repro.eval.harness import evaluate_in_session


def _sweep(split, pqsda_full, ppr_metric):
    systems = {
        "PQS-DA": pqsda_full,
        "CACB": ContextAwareSuggester(split.train_log, split.train_sessions),
        "FRW": build_baseline("FRW", split.train_log),
    }
    return {
        name: evaluate_in_session(
            suggester, split.test_sessions, ks=KS, ppr=ppr_metric
        )
        for name, suggester in systems.items()
    }


def test_extension_context_aware(benchmark, split, pqsda_full, ppr_metric):
    results = benchmark.pedantic(
        _sweep, args=(split, pqsda_full, ppr_metric), rounds=1, iterations=1
    )
    rows = {name: r["ppr"] for name, r in results.items()}
    print_figure("Extension: mid-session PPR@k (context-aware)", rows)
    coverage = {n: r["coverage"][0] for n, r in results.items()}
    print("coverage:", {n: round(c, 2) for n, c in coverage.items()})
    # Averages above are over *answered* sessions only; the effective
    # (coverage-weighted) PPR is the apples-to-apples number — a method
    # that only answers its easiest 13% of sessions gets no credit for the
    # rest.
    effective = {
        name: rows[name].get(5, 0.0) * coverage[name] for name in rows
    }
    print("effective PPR@5 (x coverage):",
          {n: round(v, 3) for n, v in effective.items()})

    # Context-aware PQS-DA must dominate on effective PPR.
    assert effective["PQS-DA"] >= max(
        effective["FRW"], effective["CACB"]
    ), f"expected PQS-DA to lead effective PPR@5: {effective}"
    # CACB must answer a reasonable share of sessions (its tree generalizes).
    assert coverage["CACB"] > 0.3
