"""Fig. 5(c)/(d): Pseudo Personalized Relevance after personalization.

PPR = cosine between suggestion terms and the titles of the pages the user
actually clicked in the held-out test session.  Expected shape: the
natively personalized methods (PHT, CM) beat the non-personalized bases at
top ranks, and PQS-DA attains the highest PPR while (per the companion
diversity bench) keeping the highest diversity — the paper's headline.
"""

from benchmarks.conftest import KS, print_figure
from repro.eval.harness import evaluate_personalized

# Reuse the Fig. 5 systems fixture.
from benchmarks.bench_fig5_diversity import personalized_systems  # noqa: F401


def _sweep(systems, sessions, ppr):
    return {
        name: evaluate_personalized(suggester, sessions, ks=KS, ppr=ppr)["ppr"]
        for name, suggester in systems.items()
    }


def test_fig5_ppr(benchmark, personalized_systems, split, ppr_metric):  # noqa: F811
    sessions = split.test_sessions
    rows = benchmark.pedantic(
        _sweep,
        args=(personalized_systems, sessions, ppr_metric),
        rounds=1,
        iterations=1,
    )
    print_figure("Fig. 5(c,d): PPR@k after personalization", rows)

    # Paper shape: PQS-DA's personalized results outperform the baselines
    # at the top of the list (further down, diversity dilutes per-facet PPR
    # on the synthetic log — recorded as a deviation in EXPERIMENTS.md).
    competitors = [n for n in rows if n != "PQS-DA" and rows[n]]
    best_other_top1 = max(rows[n].get(1, 0.0) for n in competitors)
    assert rows["PQS-DA"][1] >= best_other_top1 - 0.02, (
        f"PQS-DA top-1 PPR should be at worst marginally behind the best "
        f"baseline ({rows['PQS-DA'][1]:.3f} vs {best_other_top1:.3f})"
    )
    for k in (5, 10):
        best_other = max(rows[n].get(k, 0.0) for n in competitors)
        assert rows["PQS-DA"][k] >= best_other, (
            f"PQS-DA should lead PPR@{k} "
            f"({rows['PQS-DA'][k]:.3f} vs {best_other:.3f})"
        )
