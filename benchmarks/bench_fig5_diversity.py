"""Fig. 5(a)/(b): Diversity@k after diversification AND personalization.

Systems: full PQS-DA vs. the personalized variants of the Sec. VI-B
baselines (FRW(P), BRW(P), HT(P), DQS(P) — same UPM personalization applied
post hoc) plus the two natively personalized baselines PHT and CM.
Expected shape: PQS-DA keeps the highest diversity at all ranks —
personalization does not destroy the diversification component's coverage.
"""

import pytest

from benchmarks.conftest import KS, print_figure
from repro.baselines.registry import build_baseline
from repro.eval.harness import evaluate_personalized
from repro.personalize.reranker import PersonalizedReranker


@pytest.fixture(scope="session")
def personalized_systems(split, pqsda_full):
    """All Fig. 5/6 systems, built on the train split."""
    store = pqsda_full.profiles
    assert store is not None
    systems = {"PQS-DA": pqsda_full}
    for name in ("FRW", "BRW", "HT", "DQS"):
        base = build_baseline(name, split.train_log, weighted=True)
        systems[f"{name}(P)"] = PersonalizedReranker(base, store)
    systems["PHT"] = build_baseline("PHT", split.train_log, weighted=True)
    systems["CM"] = build_baseline("CM", split.train_log, weighted=True)
    return systems


def _sweep(systems, sessions, diversity):
    return {
        name: evaluate_personalized(
            suggester, sessions, ks=KS, diversity=diversity
        )["diversity"]
        for name, suggester in systems.items()
    }


def test_fig5_diversity(
    benchmark, personalized_systems, split, diversity_metric
):
    sessions = split.test_sessions
    rows = benchmark.pedantic(
        _sweep,
        args=(personalized_systems, sessions, diversity_metric),
        rounds=1,
        iterations=1,
    )
    print_figure("Fig. 5(a,b): Diversity@k after personalization", rows)

    k = KS[-1]
    for name, curve in rows.items():
        if name == "PQS-DA" or not curve:
            continue
        assert rows["PQS-DA"][k] >= curve.get(k, 0.0) - 0.02, (
            f"PQS-DA should keep the highest diversity@{k} (vs {name})"
        )
