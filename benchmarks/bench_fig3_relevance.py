"""Fig. 3(c)/(d): Relevance@k (Eq. 34) of the diversification stage.

Panel (c): raw representations; panel (d): cfiqf-weighted.  Expected shape:
PQS-DA's top-1 relevance is the highest (the regularization framework finds
the best first candidate) and its relevance degrades modestly as k grows.
"""

import pytest

from benchmarks.conftest import KS, print_figure
from repro.eval.harness import evaluate_suggester


def _sweep(pqsda, baselines, queries, relevance_metric):
    rows = {}
    rows["PQS-DA"] = evaluate_suggester(
        pqsda, queries, ks=KS, relevance=relevance_metric
    )["relevance"]
    for name, suggester in baselines.items():
        rows[name] = evaluate_suggester(
            suggester, queries, ks=KS, relevance=relevance_metric
        )["relevance"]
    return rows


@pytest.mark.parametrize("weighted", [False, True], ids=["raw", "weighted"])
def test_fig3_relevance(
    benchmark,
    weighted,
    pqsda_diversify_raw,
    pqsda_diversify_weighted,
    diversification_baselines,
    test_queries,
    relevance_metric,
):
    pqsda = pqsda_diversify_weighted if weighted else pqsda_diversify_raw
    baselines = diversification_baselines[weighted]
    rows = benchmark.pedantic(
        _sweep,
        args=(pqsda, baselines, test_queries, relevance_metric),
        rounds=1,
        iterations=1,
    )
    panel = "d (weighted)" if weighted else "c (raw)"
    print_figure(f"Fig. 3{panel}: Relevance@k", rows)

    # Paper shape: PQS-DA finds the most relevant first candidate.
    best_baseline_top1 = max(rows[n][1] for n in ("FRW", "BRW", "HT", "DQS"))
    assert rows["PQS-DA"][1] >= best_baseline_top1 - 0.05, (
        "PQS-DA top-1 relevance should be the best"
    )
    # ... and degrades modestly: top-10 keeps most of the top-1 relevance.
    assert rows["PQS-DA"][KS[-1]] >= 0.3 * rows["PQS-DA"][1]
