"""Shared fixtures for the figure-reproduction benchmarks.

One synthetic world and query log back every figure; heavyweight artifacts
(PQS-DA builds, baseline suggesters, metrics) are session-scoped so each
benchmark measures only its own experiment.

The log size (60 users, ~12 sessions each, ≈2k records) is chosen so that
the full benchmark suite finishes in a few minutes on a laptop while still
exhibiting the paper's effects (ambiguity, personal preference, drift).
"""

import pytest

from repro.baselines.registry import build_baseline
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.eval.diversity import DiversityMetric
from repro.eval.harness import split_train_test
from repro.eval.hpr import HPRMetric
from repro.eval.ppr import PPRMetric
from repro.eval.relevance import RelevanceMetric
from repro.graphs.compact import CompactConfig
from repro.personalize.upm import UPMConfig
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.oracle import Oracle
from repro.synth.world import make_world

#: Suggestion-list depth reported in every figure.
TOP_K = 10
KS = list(range(1, TOP_K + 1))


@pytest.fixture(scope="session")
def world():
    # 24 pages per leaf keeps query-URL overlap sparse, as in real logs.
    return make_world(seed=0, pages_per_leaf=24)


@pytest.fixture(scope="session")
def synthetic(world):
    # Click probability and click noise follow the paper's depiction of
    # commercial logs: clickthrough is partial and "inherently noisy"
    # (Sec. III), which is what the multi-bipartite representation is
    # designed to withstand.
    config = GeneratorConfig(
        n_users=60,
        mean_sessions_per_user=12,
        mean_queries_per_session=2.5,
        click_probability=0.55,
        noise_click_probability=0.12,
        hub_click_probability=0.15,
        seed=42,
    )
    return generate_log(world, config)


@pytest.fixture(scope="session")
def oracle(world, synthetic):
    return Oracle(world, synthetic)


@pytest.fixture(scope="session")
def split(synthetic):
    return split_train_test(synthetic, n_test_sessions=3)


@pytest.fixture(scope="session")
def diversity_metric(synthetic, oracle):
    return DiversityMetric(synthetic.log, oracle)


@pytest.fixture(scope="session")
def relevance_metric(oracle):
    return RelevanceMetric(oracle)


@pytest.fixture(scope="session")
def ppr_metric(world):
    return PPRMetric(world.web)


@pytest.fixture(scope="session")
def hpr_metric(oracle):
    return HPRMetric(oracle, noise_sd=0.08, seed=7)


def _pqsda_config(weighted: bool, personalize: bool) -> PQSDAConfig:
    return PQSDAConfig(
        weighted=weighted,
        compact=CompactConfig(size=150),
        # Pool 25 reproduces the paper's balance point: PQS-DA above every
        # baseline on BOTH diversity and relevance at the full list depth.
        diversify=DiversifyConfig(k=TOP_K, candidate_pool=25),
        upm=UPMConfig(n_topics=10, iterations=30, hyperopt_every=10, seed=0),
        personalize=personalize,
        personalization_weight=2.0,
    )


@pytest.fixture(scope="session")
def pqsda_diversify_raw(synthetic):
    """Diversification-only PQS-DA on the raw representation (Fig. 3 a/c)."""
    return PQSDA.build(
        synthetic.log,
        sessions=synthetic.sessions,
        config=_pqsda_config(weighted=False, personalize=False),
    )


@pytest.fixture(scope="session")
def pqsda_diversify_weighted(synthetic):
    """Diversification-only PQS-DA on the weighted representation."""
    return PQSDA.build(
        synthetic.log,
        sessions=synthetic.sessions,
        config=_pqsda_config(weighted=True, personalize=False),
    )


@pytest.fixture(scope="session")
def pqsda_full(split):
    """Full PQS-DA trained on the train split (Figs. 5 and 6)."""
    return PQSDA.build(
        split.train_log,
        sessions=split.train_sessions,
        config=_pqsda_config(weighted=True, personalize=True),
    )


@pytest.fixture(scope="session")
def test_queries(synthetic):
    """Input queries for the Fig. 3 protocol: sampled clicked log queries."""
    seen = set()
    queries = []
    for record in synthetic.log:
        if record.has_click and record.query not in seen:
            seen.add(record.query)
            queries.append(record.query)
        if len(queries) >= 60:
            break
    return queries


@pytest.fixture(scope="session")
def diversification_baselines(synthetic):
    """FRW/BRW/HT/DQS on raw and weighted click graphs."""
    return {
        weighted: {
            name: build_baseline(name, synthetic.log, weighted=weighted)
            for name in ("FRW", "BRW", "HT", "DQS")
        }
        for weighted in (False, True)
    }


def format_curve(name: str, curve: dict[int, float]) -> str:
    cells = " ".join(f"{curve.get(k, float('nan')):6.3f}" for k in KS)
    return f"{name:12s} {cells}"


def print_figure(title: str, rows: dict[str, dict[int, float]]) -> None:
    header = " ".join(f"k={k:<4d}" for k in KS)
    print(f"\n=== {title} ===")
    print(f"{'method':12s} {header}")
    for name, curve in rows.items():
        print(format_curve(name, curve))
