"""Fig. 3(a)/(b): Diversity@k of the diversification stage.

Panel (a): raw representations; panel (b): cfiqf-weighted.  PQS-DA's
diversification component vs. FRW, BRW, HT and DQS on the click graph.
Expected shape: PQS-DA most diverse at every k; weighting changes all
methods' absolute values but not the winner.
"""

import pytest

from benchmarks.conftest import KS, print_figure
from repro.eval.harness import evaluate_suggester


def _sweep(pqsda, baselines, queries, diversity_metric):
    rows = {}
    rows["PQS-DA"] = evaluate_suggester(
        pqsda, queries, ks=KS, diversity=diversity_metric
    )["diversity"]
    for name, suggester in baselines.items():
        rows[name] = evaluate_suggester(
            suggester, queries, ks=KS, diversity=diversity_metric
        )["diversity"]
    return rows


@pytest.mark.parametrize("weighted", [False, True], ids=["raw", "weighted"])
def test_fig3_diversity(
    benchmark,
    weighted,
    pqsda_diversify_raw,
    pqsda_diversify_weighted,
    diversification_baselines,
    test_queries,
    diversity_metric,
):
    pqsda = pqsda_diversify_weighted if weighted else pqsda_diversify_raw
    baselines = diversification_baselines[weighted]
    rows = benchmark.pedantic(
        _sweep,
        args=(pqsda, baselines, test_queries, diversity_metric),
        rounds=1,
        iterations=1,
    )
    panel = "b (weighted)" if weighted else "a (raw)"
    print_figure(f"Fig. 3{panel}: Diversity@k", rows)

    # Paper shape: PQS-DA generates more diverse suggestions than all
    # click-graph baselines at the full list depth.
    k = KS[-1]
    for name in ("FRW", "BRW", "HT", "DQS"):
        assert rows["PQS-DA"][k] >= rows[name][k] - 0.02, (
            f"PQS-DA diversity@{k} should dominate {name}"
        )
