"""Fig. 6: Human Personalized Relevance (simulated expert panel).

The paper's experts rated suggested queries on a 6-point scale during four
months of real searching; the reproduction's panel (see DESIGN.md) rates
from the oracle's knowledge of each test session's true intent and the
user's long-term profile, with bounded noise.  Expected shape: PQS-DA
attains the highest average HPR.
"""

from benchmarks.conftest import KS, print_figure
from repro.eval.harness import evaluate_personalized

# Reuse the Fig. 5 systems fixture.
from benchmarks.bench_fig5_diversity import personalized_systems  # noqa: F401


def _sweep(systems, sessions, hpr):
    return {
        name: evaluate_personalized(suggester, sessions, ks=KS, hpr=hpr)["hpr"]
        for name, suggester in systems.items()
    }


def test_fig6_hpr(benchmark, personalized_systems, split, hpr_metric):  # noqa: F811
    sessions = split.test_sessions
    rows = benchmark.pedantic(
        _sweep,
        args=(personalized_systems, sessions, hpr_metric),
        rounds=1,
        iterations=1,
    )
    print_figure("Fig. 6: HPR@k (simulated 6-point expert panel)", rows)
    print("\nAverage HPR over k=1..10:")
    averages = {
        name: sum(curve.values()) / len(curve)
        for name, curve in rows.items()
        if curve
    }
    for name, value in sorted(averages.items(), key=lambda p: -p[1]):
        print(f"  {name:8s} {value:.3f}")

    # Paper shape: PQS-DA significantly outperforms the baselines on HPR.
    best = max(averages, key=averages.get)
    assert best == "PQS-DA", f"expected PQS-DA to lead HPR, got {best}"
