"""Fig. 7: suggestion latency vs. number of utilized queries.

Each method is rebuilt over logs of growing size and its mean
per-suggestion latency is measured on a fixed probe workload.  Expected
shape:

* PQS-DA's latency is comparable to DQS (same order of magnitude) and
  **grows moderately** with the number of utilized queries — its per-query
  cost is dominated by compact-neighbourhood work, not by the full graph;
* CM, whose online concept-space expansion scans pairwise concept cosines,
  has the steepest growth and becomes the slowest system at scale.
"""

from repro.baselines.registry import build_baseline
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.eval.efficiency import measure_latency
from repro.graphs.compact import CompactConfig
from repro.logs.storage import QueryLog
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

USER_SCALES = (60, 140, 300)
N_PROBES = 15


def _probe_queries(log: QueryLog, n: int) -> list[str]:
    seen: set[str] = set()
    probes: list[str] = []
    for record in log:
        if record.has_click and record.query not in seen:
            seen.add(record.query)
            probes.append(record.query)
        if len(probes) >= n:
            break
    return probes


def _sweep(world) -> dict[str, dict[int, float]]:
    rows: dict[str, dict[int, float]] = {}
    for n_users in USER_SCALES:
        config = GeneratorConfig(
            n_users=n_users,
            mean_sessions_per_user=12,
            click_probability=0.55,
            noise_click_probability=0.12,
            hub_click_probability=0.15,
            seed=42,
        )
        log = generate_log(world, config).log
        probes = _probe_queries(log, N_PROBES)
        n_queries = len(log.unique_queries)

        pqsda = PQSDA.build(
            log,
            config=PQSDAConfig(
                compact=CompactConfig(size=150),
                diversify=DiversifyConfig(k=10, candidate_pool=25),
                personalize=False,
            ),
        )
        systems = {
            "PQS-DA": pqsda,
            "DQS": build_baseline("DQS", log),
            "HT": build_baseline("HT", log),
            "CM": build_baseline("CM", log),
        }
        for name, suggester in systems.items():
            result = measure_latency(suggester, probes, k=10)
            rows.setdefault(name, {})[n_queries] = result.mean_seconds
    return rows


def test_fig7_efficiency(benchmark, world):
    rows = benchmark.pedantic(_sweep, args=(world,), rounds=1, iterations=1)
    sizes = sorted(next(iter(rows.values())))
    print("\n=== Fig. 7: mean suggestion latency (ms) vs utilized queries ===")
    header = " ".join(f"n={size:<6d}" for size in sizes)
    print(f"{'method':8s} {header}")
    for name, curve in rows.items():
        cells = " ".join(f"{curve[size]*1000:7.2f}" for size in sizes)
        print(f"{name:8s} {cells}")
    largest = sizes[-1]
    print("\nRelative to DQS at the largest size:")
    for name, curve in rows.items():
        print(f"  {name:8s} {curve[largest] / rows['DQS'][largest]:6.2f}x")

    # Paper shape: PQS-DA comparable to DQS (same order of magnitude) ...
    assert rows["PQS-DA"][largest] <= 10 * rows["DQS"][largest]
    # ... significantly faster than CM at scale ...
    assert rows["PQS-DA"][largest] < rows["CM"][largest], (
        "CM (online concept scan) should be the slowest at the largest size"
    )
    # ... and with moderate growth across a ~5x data sweep.
    growth = rows["PQS-DA"][largest] / max(rows["PQS-DA"][sizes[0]], 1e-9)
    cm_growth = rows["CM"][largest] / max(rows["CM"][sizes[0]], 1e-9)
    assert growth < cm_growth, (
        f"PQS-DA latency growth ({growth:.1f}x) should be flatter than CM's "
        f"({cm_growth:.1f}x)"
    )
