"""Ablations of the design choices DESIGN.md calls out.

Three studies, each printing a small table:

1. **Cross-bipartite walk** — replace the uniform three-bipartite mixture
   with a single-bipartite walker (U only / S only / T only) and a sticky
   switch, and measure Diversity@10 and Relevance@10 of the
   diversification stage.  Expectation: the uniform mixture dominates each
   single view (the multi-bipartite argument of Sec. III).
2. **UPM channels** — knock out the URL channel, the time channel and the
   hyperparameter learning, and measure Eq. 35 perplexity.  Expectation:
   the full UPM is best; each knockout hurts.
3. **Borda personalization weight** — sweep the fusion weight and measure
   PPR@5 and Diversity@10 of the final lists.  Expectation: weight 0
   equals the diversification-only list; moderate weights raise PPR
   without collapsing diversity.
"""

import pytest

from benchmarks.conftest import KS
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.diversify.cross_bipartite import SwitchMatrix
from repro.eval.harness import evaluate_personalized, evaluate_suggester
from repro.graphs.compact import CompactConfig
from repro.personalize.upm import UPM, UPMConfig
from repro.topicmodels import build_corpus
from repro.topicmodels.perplexity import evaluate_perplexity


def _diversify_config(switch=None):
    return PQSDAConfig(
        compact=CompactConfig(size=150),
        diversify=DiversifyConfig(k=10, candidate_pool=25, switch=switch),
        personalize=False,
    )


def test_ablation_cross_bipartite_walk(
    benchmark, synthetic, test_queries, diversity_metric, relevance_metric
):
    variants = {
        "uniform": None,
        "U-only": SwitchMatrix.single("U"),
        "S-only": SwitchMatrix.single("S"),
        "T-only": SwitchMatrix.single("T"),
        "sticky-0.8": SwitchMatrix.sticky(0.8),
    }

    def run():
        rows = {}
        for name, switch in variants.items():
            suggester = PQSDA.build(
                synthetic.log,
                sessions=synthetic.sessions,
                config=_diversify_config(switch),
            )
            result = evaluate_suggester(
                suggester,
                test_queries,
                ks=KS,
                diversity=diversity_metric,
                relevance=relevance_metric,
            )
            rows[name] = (
                result["diversity"][KS[-1]],
                result["relevance"][KS[-1]],
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: cross-bipartite switch matrix ===")
    print(f"{'variant':12s} {'div@10':>8s} {'rel@10':>8s}")
    for name, (diversity, relevance) in rows.items():
        print(f"{name:12s} {diversity:8.3f} {relevance:8.3f}")

    # The uniform mixture must beat the session-only and term-only walkers
    # on diversity.  The URL-only walker is *not* asserted against: with
    # sparse clicks most of its transition rows are empty, so its hitting
    # times saturate and it effectively returns relevance-sorted
    # suggestions, many of them unclicked — and Eq. 32 counts unclicked
    # suggestions as maximally diverse (no page evidence), inflating its
    # score.  The printed row documents that artifact.
    base_div, _ = rows["uniform"]
    for name in ("S-only", "T-only"):
        div, _ = rows[name]
        assert base_div >= div - 0.02, (
            f"uniform mixture should out-diversify {name}"
        )
    print(
        "note: U-only's high scores are an Eq. 32 artifact on sparse "
        "clicks (unclicked suggestions count as fully diverse)."
    )


def test_ablation_upm_channels(benchmark, synthetic):
    corpus = build_corpus(synthetic.log, synthetic.sessions)
    variants = {
        "full UPM": UPMConfig(
            n_topics=10, iterations=30, hyperopt_every=10, seed=0
        ),
        "no URLs": UPMConfig(
            n_topics=10, iterations=30, hyperopt_every=10, use_urls=False,
            seed=0,
        ),
        "no time": UPMConfig(
            n_topics=10, iterations=30, hyperopt_every=10, use_time=False,
            seed=0,
        ),
        "no hyperopt": UPMConfig(
            n_topics=10, iterations=30, hyperopt_every=0, seed=0
        ),
    }

    def run():
        return {
            name: evaluate_perplexity(UPM(config), corpus, 0.7)
            for name, config in variants.items()
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: UPM channels (perplexity, lower = better) ===")
    for name, value in rows.items():
        print(f"{name:12s} {value:10.1f}")

    full = rows["full UPM"]
    # Knocking out the URL or time channel should not improve the model.
    for name in ("no URLs", "no time"):
        assert full <= rows[name] * 1.10, f"{name} beat the full UPM"
    # Recorded deviation (see EXPERIMENTS.md): on the synthetic workload,
    # *disabling* hyperparameter learning lowers perplexity further — the
    # evidence-optimal beta is smaller than the symmetric prior, trading
    # unseen-word smoothing for seen-word sharpness.  The paper deems the
    # learning imperative on its (much larger-vocabulary) commercial log.
    print(
        f"note: 'no hyperopt' at {rows['no hyperopt']:.1f} vs full "
        f"{full:.1f} — symmetric smoothing wins on the small synthetic "
        "vocabulary; see EXPERIMENTS.md."
    )


def test_ablation_personalization_weight(
    benchmark, split, diversity_metric, ppr_metric
):
    weights = (0.0, 0.5, 1.0, 2.0, 4.0)

    def run():
        rows = {}
        for weight in weights:
            suggester = PQSDA.build(
                split.train_log,
                sessions=split.train_sessions,
                config=PQSDAConfig(
                    compact=CompactConfig(size=150),
                    diversify=DiversifyConfig(k=10, candidate_pool=25),
                    upm=UPMConfig(
                        n_topics=10, iterations=30, hyperopt_every=10, seed=0
                    ),
                    personalization_weight=weight,
                ),
            )
            result = evaluate_personalized(
                suggester,
                split.test_sessions,
                ks=KS,
                diversity=diversity_metric,
                ppr=ppr_metric,
            )
            rows[weight] = (
                result["ppr"][5],
                result["diversity"][KS[-1]],
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: Borda personalization weight ===")
    print(f"{'weight':>6s} {'ppr@5':>8s} {'div@10':>8s}")
    for weight, (ppr, diversity) in rows.items():
        print(f"{weight:6.1f} {ppr:8.3f} {diversity:8.3f}")

    # Personalization must lift PPR@5 over the unpersonalized list...
    assert max(rows[w][0] for w in weights if w > 0) >= rows[0.0][0]
    # ... while the candidate set (hence diversity) stays the same scale.
    for weight in weights:
        assert abs(rows[weight][1] - rows[0.0][1]) < 0.10


def test_ablation_weighting_scheme(
    benchmark, synthetic, test_queries, diversity_metric, relevance_metric
):
    """Raw vs cfiqf (Eqs. 4-6) vs entropy bias (Deng et al., ref [18])."""
    from repro.graphs.multibipartite import build_multibipartite

    def run():
        rows = {}
        sessions = synthetic.sessions
        for label, kwargs in (
            ("raw", {"weighted": False}),
            ("cfiqf", {"weighted": True, "scheme": "cfiqf"}),
            ("entropy", {"weighted": True, "scheme": "entropy"}),
        ):
            mb = build_multibipartite(synthetic.log, sessions, **kwargs)
            suggester = PQSDA.build(
                synthetic.log,
                sessions=sessions,
                config=_diversify_config(),
                multibipartite=mb,
            )
            result = evaluate_suggester(
                suggester,
                test_queries,
                ks=KS,
                diversity=diversity_metric,
                relevance=relevance_metric,
            )
            rows[label] = (
                result["diversity"][KS[-1]],
                result["relevance"][KS[-1]],
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Ablation: edge-weighting scheme ===")
    print(f"{'scheme':10s} {'div@10':>8s} {'rel@10':>8s}")
    for label, (diversity, relevance) in rows.items():
        print(f"{label:10s} {diversity:8.3f} {relevance:8.3f}")

    # Both weighting schemes should be at least competitive with raw on
    # relevance (the Fig. 3 weighted-vs-raw finding).
    assert rows["cfiqf"][1] >= rows["raw"][1] - 0.05
    assert rows["entropy"][1] >= rows["raw"][1] - 0.05
