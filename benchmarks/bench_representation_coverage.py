"""Representation coverage: the quantified version of Fig. 2's argument.

Sec. III claims the click graph "only captures a small portion of the rich
information in query log" while the multi-bipartite representation reaches
far more suggestion candidates.  This bench measures, on the shared
workload:

* the fraction of log queries that have at least one neighbour under each
  representation (isolated queries can never receive suggestions);
* the mean neighbourhood size;
* the answer coverage of the corresponding suggesters on the Fig. 3 probe
  workload.
"""

import numpy as np

from repro.baselines.registry import build_baseline
from repro.core import PQSDA, PQSDAConfig
from repro.graphs.click_graph import build_click_graph
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize


def _reachability(synthetic):
    log = synthetic.log
    sessions = sessionize(log)
    click = build_click_graph(log, weighted=False)
    multi = build_multibipartite(log, sessions, weighted=False)

    queries = multi.queries
    click_degrees = [
        len(click.neighbors(q)) if q in click else 0 for q in queries
    ]
    multi_degrees = [len(multi.query_neighbors(q)) for q in queries]
    return {
        "n_queries": len(queries),
        "click_connected": float(np.mean([d > 0 for d in click_degrees])),
        "multi_connected": float(np.mean([d > 0 for d in multi_degrees])),
        "click_mean_degree": float(np.mean(click_degrees)),
        "multi_mean_degree": float(np.mean(multi_degrees)),
    }


def _answer_coverage(synthetic, queries):
    pqsda = PQSDA.build(
        synthetic.log,
        sessions=synthetic.sessions,
        config=PQSDAConfig(personalize=False, term_backoff=False),
    )
    frw = build_baseline("FRW", synthetic.log)
    out = {}
    for name, suggester in (("PQS-DA", pqsda), ("FRW", frw)):
        answered = sum(1 for q in queries if suggester.suggest(q, k=5))
        out[name] = answered / len(queries)
    return out


def test_representation_coverage(benchmark, synthetic, test_queries):
    reach = benchmark.pedantic(
        _reachability, args=(synthetic,), rounds=1, iterations=1
    )
    coverage = _answer_coverage(synthetic, test_queries)

    print("\n=== Representation coverage (Sec. III / Fig. 2, quantified) ===")
    print(f"query nodes                    {reach['n_queries']}")
    print(f"connected via click graph      {reach['click_connected']:.1%}")
    print(f"connected via multi-bipartite  {reach['multi_connected']:.1%}")
    print(f"mean click-graph degree        {reach['click_mean_degree']:.1f}")
    print(f"mean multi-bipartite degree    {reach['multi_mean_degree']:.1f}")
    print(f"suggester answer coverage:     PQS-DA {coverage['PQS-DA']:.1%} "
          f"vs FRW {coverage['FRW']:.1%}")

    # The paper's structural claim, asserted.
    assert reach["multi_connected"] >= reach["click_connected"]
    assert reach["multi_mean_degree"] > reach["click_mean_degree"]
    assert coverage["PQS-DA"] >= coverage["FRW"]
