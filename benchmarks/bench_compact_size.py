"""Compact-representation size Q: the quality/latency trade of Sec. IV-A.

The paper introduces the compact representation purely for efficiency,
arguing the downstream quality survives the truncation.  This bench sweeps
``Q`` and measures Diversity@10, Relevance@10 and mean latency, verifying
that (a) latency grows with ``Q`` and (b) quality saturates — beyond a
moderate neighbourhood, adding more queries buys nothing.
"""

from benchmarks.conftest import KS
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.eval.efficiency import measure_latency
from repro.eval.harness import evaluate_suggester
from repro.graphs.compact import CompactConfig

SIZES = (40, 80, 150, 300)


def test_compact_size_tradeoff(
    benchmark, synthetic, test_queries, diversity_metric, relevance_metric
):
    def run():
        rows = {}
        for size in SIZES:
            suggester = PQSDA.build(
                synthetic.log,
                sessions=synthetic.sessions,
                config=PQSDAConfig(
                    compact=CompactConfig(size=size),
                    diversify=DiversifyConfig(k=10, candidate_pool=25),
                    personalize=False,
                ),
            )
            quality = evaluate_suggester(
                suggester,
                test_queries,
                ks=KS,
                diversity=diversity_metric,
                relevance=relevance_metric,
            )
            latency = measure_latency(suggester, test_queries[:15], k=10)
            rows[size] = (
                quality["diversity"][KS[-1]],
                quality["relevance"][KS[-1]],
                latency.mean_seconds,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Compact size Q: quality vs latency (Sec. IV-A) ===")
    print(f"{'Q':>5s} {'div@10':>8s} {'rel@10':>8s} {'ms/suggest':>11s}")
    for size, (diversity, relevance, latency) in rows.items():
        print(f"{size:5d} {diversity:8.3f} {relevance:8.3f} {latency*1000:11.2f}")

    # Latency grows with Q...
    assert rows[SIZES[-1]][2] > rows[SIZES[0]][2]
    # ... while quality saturates: the largest Q adds < 0.1 over the
    # bench default (150) on both metrics.
    assert abs(rows[300][0] - rows[150][0]) < 0.1
    assert abs(rows[300][1] - rows[150][1]) < 0.1
