"""Fig. 4: predictive perplexity of the UPM vs. eight published models.

Protocol (Eq. 35): observe 70% of each user's sessions, fit each model on
the observed prefix only, and measure the perplexity of the remaining query
words.  Expected shape: UPM lowest (the paper reports an average of 1933 on
its commercial log; absolute values differ on the synthetic log, the
ordering is what reproduces).
"""

from repro.logs.sessionizer import sessionize
from repro.topicmodels import MODEL_NAMES, build_corpus, build_model
from repro.topicmodels.perplexity import evaluate_perplexity

N_TOPICS = 10
ITERATIONS = 30
OBSERVED_FRACTION = 0.7


def _all_perplexities(corpus) -> dict[str, float]:
    return {
        name: evaluate_perplexity(
            build_model(name, n_topics=N_TOPICS, iterations=ITERATIONS, seed=0),
            corpus,
            OBSERVED_FRACTION,
        )
        for name in MODEL_NAMES
    }


def test_fig4_perplexity(benchmark, synthetic):
    corpus = build_corpus(synthetic.log, synthetic.sessions)
    results = benchmark.pedantic(
        _all_perplexities, args=(corpus,), rounds=1, iterations=1
    )
    print("\n=== Fig. 4: predictive perplexity (lower is better) ===")
    for name in MODEL_NAMES:
        marker = "  <-- UPM" if name == "UPM" else ""
        print(f"{name:5s} {results[name]:10.1f}{marker}")

    # Paper shape: the UPM demonstrates the best (lowest) perplexity.
    best = min(results, key=results.get)
    assert best == "UPM", f"expected UPM to win, got {best}: {results}"
    # Structure helps: every model beats none of this is degenerate.
    assert all(v > 1.0 for v in results.values())
