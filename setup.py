"""Setup shim enabling `pip install -e . --no-use-pep517` on offline machines
that lack the `wheel` package (metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
