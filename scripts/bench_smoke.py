#!/usr/bin/env python
"""Quick latency smoke run; writes ``BENCH_fig7.json`` (and friends).

Runs the Fig. 7 efficiency protocol (mean per-suggestion latency of
PQS-DA and the DQS/HT/CM baselines on a fixed probe workload) and
records the numbers as JSON.  By default only the smallest scale runs,
which finishes in seconds; ``--full`` sweeps every Fig. 7 scale.

``--ingest`` additionally benchmarks the streaming subsystem: bootstrap a
live suggester from 70% of the log, stream the remaining 30% through the
incremental ingestion path, and record ingestion throughput plus the
post-ingest warm-cache suggestion latency against a from-scratch batch
build over the same full log (acceptance: within 2x).

``--upm`` benchmarks UPM offline training (``BENCH_upm.json``): the
reference Gibbs sampler vs. the vectorized fast engine (serial and
4-worker), sweep throughput in sessions/s, the bit-identity check, and
serving-time ``preference_score`` latency.

``--obs`` benchmarks the observability layer (``BENCH_metrics.json``):
one warm suggester serves the same probe workload detached (the
null-registry default) and with a live
:class:`~repro.obs.registry.MetricsRegistry` + tracer attached, paired
back to back each round; the median of the per-round latency ratios is
the measured instrumentation overhead.
``--max-overhead-ratio`` turns the measurement into a guard (exit 1 when
exceeded; CI uses 1.05 = 5%).  The record also carries the per-stage
span breakdown and the full metrics snapshot.

``--serve`` benchmarks the scale-out serving plane (``BENCH_serve.json``):
pooled QPS at 1, 2 and 4 suggest workers on a warm probe workload with
the hot-query fast tier off (batched envelopes only) and on (head
queries answered O(1) in the parent from the shared table), the
per-request IPC overhead vs. the single-process path, the hot-tier hit
rate, separate bit-identity checks for batched-tail and hot-tier
answers against the single-process path, and the memory ledger (segment
bytes once + per-worker RSS).
``--min-serve-scaling`` turns the 2-worker/1-worker tier-off QPS ratio
into a guard (exit 1 below the bound; auto-skipped when the machine has
fewer than 2 CPUs, where no scaling is physically available).
``--shards N`` adds sharded sections: the serve record gains pooled QPS
over the partitioned plane at shard counts {1, N} (per-shard segment
bytes, cross-shard spill rate, QPS vs. the unsharded pool, bit-identity
against the single-process path — shards=1 doubles as the no-regression
control), and the ingest record gains per-shard fold/publish stats for
the same shard counts (epochs carrying per-shard update sets, mean
updates per epoch, throughput vs. the unsharded stream).
``--http`` adds an ``"http"`` section to the same record: the async
front-end measured over real sockets — normal-load QPS and p50/p99 with
every answer checked bit-identical to ``suggest_batch`` (shed counters
zero), then an overload burst against tight per-worker thresholds that
retries until every shed tier (rerank-skip, personalize-skip, 503
reject) has fired, recording the shed counters, status mix and
deadline expirations.
``--personalize`` adds a personalized-serving section to the same
record: the pool republishes the UPM profiles through the shared profile
plane and the workload is served twice per worker count — anonymously
and as profiled users — so the gap isolates the per-request cost of
personalization (hot-tier bypass + Borda fusion + zero-copy profile
lookups), with bit-identity checked against the single-process
personalized path.

``--quick`` is the CI profile: smallest Fig. 7 scale, the ingest
benchmark, a small UPM training benchmark, the observability benchmark,
and the serve benchmark (with the personalized section).

Every ``BENCH_*.json`` record carries ``"mode": "quick" | "full"`` so a
reader can tell a CI smoke number from a full-protocol sweep.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--full|--quick]
        [--ingest] [--upm] [--obs] [--serve] [--shards N] [--http]
        [--max-overhead-ratio R] [--min-serve-scaling R]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.baselines.base import SuggestRequest
from repro.baselines.registry import build_baseline
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.eval.efficiency import measure_batch_latency, measure_latency
from repro.graphs.compact import CompactConfig
from repro.logs.storage import QueryLog
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

USER_SCALES = (60, 140, 300)  # mirrors benchmarks/bench_fig7_efficiency.py
N_PROBES = 15

#: Ingest benchmark scales.  The quick profile is sized for CI; the full
#: profile is big enough that per-epoch costs dominate per-batch fixed
#: costs — the regime the parallel ingest plane is built for (the serial
#: path re-derives the full plane every epoch, so its per-record cost
#: grows with vocabulary size while the sharded lazy plane's does not).
INGEST_USERS_QUICK = 60
INGEST_USERS_FULL = 800

#: PQS-DA mean latency (ms) measured on the pre-fast-path revision of this
#: repo, keyed by unique-query count — the reference the speedup is
#: reported against.
SEED_PQSDA_MS = {1028: 13.82, 2170: 16.85, 4174: 22.03}


def _probe_queries(log: QueryLog, n: int) -> list[str]:
    seen: set[str] = set()
    probes: list[str] = []
    for record in log:
        if record.has_click and record.query not in seen:
            seen.add(record.query)
            probes.append(record.query)
        if len(probes) >= n:
            break
    return probes


def _stage_breakdown(snapshot: dict) -> dict:
    """Per-stage span timings out of a registry snapshot.

    Collapses the ``trace.span.seconds`` histogram family (one series per
    ``span`` label) into ``{stage: {count, mean_ms, total_ms}}`` — the
    Fig. 7 latency decomposed into expand / solve / walk / rerank.
    """
    from repro.obs.trace import SPAN_HISTOGRAM

    stages: dict = {}
    for entry in snapshot.get("metrics", ()):
        if entry["name"] != SPAN_HISTOGRAM or entry["type"] != "histogram":
            continue
        span = entry.get("labels", {}).get("span", "?")
        count = entry["count"]
        total = entry["sum"]
        stages[span] = {
            "count": count,
            "mean_ms": round(total / count * 1000, 4) if count else 0.0,
            "total_ms": round(total * 1000, 3),
        }
    return stages


def run_sweep(scales: tuple[int, ...]) -> dict:
    world = make_world(seed=0, pages_per_leaf=24)
    result: dict = {"scales": []}
    for n_users in scales:
        config = GeneratorConfig(
            n_users=n_users,
            mean_sessions_per_user=12,
            click_probability=0.55,
            noise_click_probability=0.12,
            hub_click_probability=0.15,
            seed=42,
        )
        log = generate_log(world, config).log
        probes = _probe_queries(log, N_PROBES)
        n_queries = len(log.unique_queries)

        pqsda = PQSDA.build(
            log,
            config=PQSDAConfig(
                compact=CompactConfig(size=150),
                diversify=DiversifyConfig(k=10, candidate_pool=25),
                personalize=False,
            ),
        )
        systems = {
            "PQS-DA": pqsda,
            "DQS": build_baseline("DQS", log),
            "HT": build_baseline("HT", log),
            "CM": build_baseline("CM", log),
        }
        row = {"n_users": n_users, "n_unique_queries": n_queries,
               "mean_latency_ms": {}}
        for name, suggester in systems.items():
            measured = measure_latency(suggester, probes, k=10)
            row["mean_latency_ms"][name] = measured.mean_seconds * 1000
        # Warm-cache pass: the same workload served again through the
        # batch API, now hitting the serving cache on every request.
        requests = [SuggestRequest(query=q, k=10) for q in probes]
        warm = measure_batch_latency(pqsda, requests)
        row["pqsda_warm_batch_ms"] = warm.mean_seconds * 1000
        row["pqsda_cache"] = {
            "hits": pqsda.cache_stats.hits,
            "misses": pqsda.cache_stats.misses,
            "evictions": pqsda.cache_stats.evictions,
        }
        seed_ms = SEED_PQSDA_MS.get(n_queries)
        if seed_ms is not None:
            row["pqsda_seed_ms"] = seed_ms
            row["pqsda_speedup_vs_seed"] = round(
                seed_ms / row["mean_latency_ms"]["PQS-DA"], 2
            )
        # Stage-level breakdown: attach a registry only AFTER the timed
        # measurements above (so they run with the null-object default),
        # serve the probe workload once traced, read the span histograms.
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        pqsda.attach_metrics(registry)
        for query in probes:
            pqsda.suggest(query, k=10)
        pqsda.attach_metrics(None)
        row["pqsda_stage_breakdown_ms"] = _stage_breakdown(
            registry.snapshot()
        )
        result["scales"].append(row)
        print(
            f"n_users={n_users:4d} (n={n_queries}): "
            + "  ".join(
                f"{name}={ms:7.2f}ms"
                for name, ms in row["mean_latency_ms"].items()
            )
            + f"  PQS-DA(warm)={row['pqsda_warm_batch_ms']:.2f}ms"
        )
    return result


def run_ingest_bench(
    n_users: int = INGEST_USERS_QUICK, n_shards: int = 0, fold_workers: int = 0
) -> dict:
    """Stream 30% of a log into a 70% bootstrap; record throughput + latency.

    With *n_shards* the stream is replayed again over sharded states and
    the record gains a ``sharded`` section, one entry per geometry: shard
    counts ``{1, n_shards}`` with the serial fold (the 1-shard row is the
    no-regression control) plus — with *fold_workers* — ``n_shards``
    shards folded by that many parallel worker processes with pipelined
    epoch publishes.  Each entry carries ingest throughput relative to
    the unsharded serial run, the fold-only vs end-to-end split, and a
    ``bit_identical`` check of the post-stream suggestions against the
    batch rebuild.  The default config is cfiqf-weighted, whose
    epoch-level |Q| correction rescales every facet weight — so every
    epoch legitimately republishes all shards; the recorded
    ``mean_shard_updates_per_epoch`` documents exactly that cost.
    """
    from repro.stream import IngestConfig, replay, streaming_pqsda

    world = make_world(seed=0, pages_per_leaf=24)
    config = GeneratorConfig(
        n_users=n_users,
        mean_sessions_per_user=12,
        click_probability=0.55,
        noise_click_probability=0.12,
        hub_click_probability=0.15,
        seed=42,
    )
    log = generate_log(world, config).log
    records = sorted(log.records, key=lambda r: (r.timestamp, r.record_id))
    split = int(len(records) * 0.7)
    bootstrap, tail = QueryLog(records[:split]), records[split:]

    pq_config = PQSDAConfig(
        compact=CompactConfig(size=150),
        diversify=DiversifyConfig(k=10, candidate_pool=25),
        personalize=False,
    )
    suggester, ingestor, manager = streaming_pqsda(
        bootstrap,
        config=pq_config,
        ingest=IngestConfig(batch_size=256, epoch_every=1, clean=False),
    )
    report = ingestor.ingest(replay(tail))

    probes = _probe_queries(log, N_PROBES)
    requests = [SuggestRequest(query=q, k=10) for q in probes]
    measure_batch_latency(suggester, requests)  # cold pass fills the cache
    warm_stream = measure_batch_latency(suggester, requests)

    reference = PQSDA.build(QueryLog(records), config=pq_config)
    measure_batch_latency(reference, requests)  # cold pass fills the cache
    warm_batch = measure_batch_latency(reference, requests)

    epochs = manager.stats
    cache = suggester.cache_stats
    row = {
        "n_users": n_users,
        "cpu_count": os.cpu_count(),
        "n_records": len(records),
        "bootstrap_records": split,
        "streamed_records": report.records_ingested,
        "ingest_seconds": report.elapsed_seconds,
        "ingest_records_per_second": report.records_per_second,
        "fold_seconds": round(report.fold_seconds, 3),
        "publish_seconds": round(report.publish_seconds, 3),
        "fold_records_per_second": report.fold_records_per_second,
        "micro_batches": report.batches,
        "epochs_published": epochs.published,
        "epochs_retired": epochs.retired,
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "invalidations": cache.invalidations,
        },
        "stream_warm_batch_ms": warm_stream.mean_seconds * 1000,
        "batch_warm_batch_ms": warm_batch.mean_seconds * 1000,
        "warm_ratio_stream_vs_batch": round(
            warm_stream.mean_seconds / warm_batch.mean_seconds, 3
        ),
    }
    if n_shards > 0:
        from repro.graphs.shard import ShardPlan

        expected = reference.suggest_batch(requests)
        geometries = [(1, 0), (n_shards, 0)]
        if fold_workers > 0:
            geometries.append((n_shards, fold_workers))
        sharded = []
        for count, workers in dict.fromkeys(geometries):
            suggester_s, ingestor_s, manager_s = streaming_pqsda(
                bootstrap,
                config=pq_config,
                ingest=IngestConfig(batch_size=256, epoch_every=1, clean=False),
                shard_plan=ShardPlan.hashed(count),
                fold_workers=workers,
            )
            tally = {"epochs": 0, "updates": 0, "full": 0}

            def _tally(epoch, tally=tally) -> None:
                if epoch.shard_updates is None:
                    tally["full"] += 1
                else:
                    tally["epochs"] += 1
                    tally["updates"] += len(epoch.shard_updates)

            manager_s.subscribe(_tally)
            try:
                report_s = ingestor_s.ingest(replay(tail))
                entry = {
                    "n_shards": count,
                    "fold_workers": workers,
                    "ingest_records_per_second": report_s.records_per_second,
                    "fold_records_per_second": (
                        report_s.fold_records_per_second
                    ),
                    "fold_seconds": round(report_s.fold_seconds, 3),
                    "publish_seconds": round(report_s.publish_seconds, 3),
                    "throughput_vs_unsharded": round(
                        report_s.records_per_second
                        / report.records_per_second,
                        3,
                    ),
                    "epochs_published": manager_s.stats.published,
                    "epochs_with_shard_updates": tally["epochs"],
                    "full_publishes": tally["full"],
                    "shard_updates_total": tally["updates"],
                    "mean_shard_updates_per_epoch": round(
                        tally["updates"] / tally["epochs"], 2
                    ) if tally["epochs"] else 0.0,
                    "bit_identical": (
                        suggester_s.suggest_batch(requests) == expected
                    ),
                }
                # Live tails keep minting new queries, which renumber the
                # global ordinals and force full publishes — so the tail
                # replay above never shows the per-shard path.  Replay a
                # slice of now-known records to measure it: no new queries,
                # every epoch carries a per-shard update set.
                before = dict(tally)
                ingestor_s.ingest(replay(tail[:120]))
            finally:
                if workers:
                    ingestor_s.state.close()
            epochs_known = tally["epochs"] - before["epochs"]
            updates_known = tally["updates"] - before["updates"]
            entry["known_replay"] = {
                "records": min(120, len(tail)),
                "epochs_with_shard_updates": epochs_known,
                "full_publishes": tally["full"] - before["full"],
                "mean_shard_updates_per_epoch": round(
                    updates_known / epochs_known, 2
                ) if epochs_known else 0.0,
            }
            sharded.append(entry)
            print(
                f"ingest[shards={count} fold_workers={workers}]: "
                f"{report_s.records_per_second:,.0f} records/s "
                f"(x{entry['throughput_vs_unsharded']} vs unsharded, "
                f"fold-only {report_s.fold_records_per_second:,.0f}), "
                f"{entry['epochs_with_shard_updates']}"
                f"/{entry['epochs_published']} tail epochs carried "
                f"per-shard updates; known replay: "
                f"{entry['known_replay']['mean_shard_updates_per_epoch']} "
                f"shard updates/epoch over "
                f"{entry['known_replay']['epochs_with_shard_updates']} "
                f"epochs, bit_identical={entry['bit_identical']}"
            )
        row["sharded"] = sharded
    print(
        f"ingest: {report.records_ingested} records at "
        f"{report.records_per_second:,.0f} records/s, "
        f"{epochs.published} epochs; warm stream="
        f"{row['stream_warm_batch_ms']:.2f}ms vs batch="
        f"{row['batch_warm_batch_ms']:.2f}ms "
        f"(ratio {row['warm_ratio_stream_vs_batch']})"
    )
    return row


#: Default UPM training benchmark scale — AOL-like shape: a vocabulary far
#: larger than any one user's working set, so the reference sampler's
#: per-session dense ``beta.sum(axis=1)`` recompute (K x W) dominates.  The
#: quick profile is sized for CI.
UPM_SCALE = {
    "n_users": 1200, "sessions_per_user": 10, "vocab": 20000,
    "urls": 2000, "n_topics": 50, "iterations": 3,
}
UPM_QUICK_SCALE = {
    "n_users": 200, "sessions_per_user": 8, "vocab": 4000,
    "urls": 600, "n_topics": 12, "iterations": 4,
}


def build_upm_corpus(
    n_users: int, sessions_per_user: int, vocab: int, urls: int, seed: int = 0
):
    """A session corpus with real-log shape for the training benchmark.

    Each user draws from a narrow 400-word slice of the vocabulary plus a
    small global head — per-user vocabularies stay tiny (sparse emission
    counts) while the realized global vocabulary approaches *vocab*, which
    is the regime the fast path is built for.  Built directly rather than
    through the synthetic world generator because the generator's browse
    model caps the realized vocabulary far below AOL-like scale.
    """
    from repro.topicmodels.corpus import Document, SessionCorpus, SessionData

    rng = np.random.default_rng(seed)
    docs = []
    for d in range(n_users):
        lo = int(rng.integers(0, max(vocab - 400, 1)))
        sessions = []
        for _ in range(sessions_per_user):
            n = int(rng.integers(3, 8))
            local = rng.integers(lo, min(lo + 400, vocab), size=n)
            head = rng.integers(0, 200, size=max(n // 3, 1))
            words = tuple(int(w) for w in np.concatenate([local, head])[:n])
            m = int(rng.integers(0, 3))
            session_urls = tuple(
                int(u) for u in rng.integers(0, urls, size=m)
            )
            sessions.append(
                SessionData(
                    words=words, urls=session_urls,
                    timestamp=float(rng.random()),
                )
            )
        docs.append(
            Document(user_id=f"user{d:05d}", sessions=tuple(sessions))
        )
    return SessionCorpus(
        documents=tuple(docs),
        word_of_id=tuple(f"w{i}" for i in range(vocab)),
        id_of_word={f"w{i}": i for i in range(vocab)},
        url_of_id=tuple(f"u{i}" for i in range(urls)),
        id_of_url={f"u{i}": i for i in range(urls)},
    )


def run_upm_bench(quick: bool = False) -> dict:
    """Time UPM.fit: reference vs. fast serial vs. fast 4-worker."""
    from repro.personalize.upm import UPM, UPMConfig

    scale = UPM_QUICK_SCALE if quick else UPM_SCALE
    corpus = build_upm_corpus(
        scale["n_users"], scale["sessions_per_user"],
        scale["vocab"], scale["urls"],
    )
    n_sessions = sum(len(d.sessions) for d in corpus.documents)
    # hyperopt_every=0 isolates the sampler: both engines share the same
    # sparse hyperparameter-optimization code, so barriers add identical
    # wall-clock to each and only dilute the sampler comparison.
    base = {
        "n_topics": scale["n_topics"], "iterations": scale["iterations"],
        "hyperopt_every": 0, "seed": 0,
    }

    def timed_fit(engine: str, n_workers: int):
        model = UPM(
            UPMConfig(engine=engine, n_workers=n_workers, **base)
        )
        start = time.perf_counter()
        model.fit(corpus)
        return model, time.perf_counter() - start

    reference, t_reference = timed_fit("reference", 1)
    fast, t_fast = timed_fit("fast", 1)
    fast4, t_fast4 = timed_fit("fast", 4)
    bit_identical = (
        np.array_equal(reference.theta, fast.theta)
        and np.array_equal(reference.beta, fast.beta)
        and np.array_equal(reference.theta, fast4.theta)
        and np.array_equal(reference.beta, fast4.beta)
    )

    def throughput(model) -> float:
        stats = model.fit_stats
        return n_sessions * stats.n_sweeps / sum(stats.sweep_seconds)

    # Serving-time scoring latency on the fitted fast model: p50 over a
    # fixed probe workload (25 users keeps the memoized per-user (K, W)
    # tables bounded).
    rng = np.random.default_rng(1)
    latencies = []
    for _ in range(200):
        user = f"user{int(rng.integers(0, min(scale['n_users'], 25))):05d}"
        query = " ".join(
            f"w{int(w)}" for w in rng.integers(0, scale["vocab"], size=3)
        )
        start = time.perf_counter()
        fast.preference_score(user, query)
        latencies.append(time.perf_counter() - start)

    row = {
        "corpus": {
            "n_users": scale["n_users"],
            "n_sessions": n_sessions,
            "vocab": corpus.n_words,
            "urls": corpus.n_urls,
        },
        "config": dict(base),
        "cpu_count": os.cpu_count(),
        "bit_identical": bit_identical,
        "fit_seconds": {
            "reference": round(t_reference, 3),
            "fast_serial": round(t_fast, 3),
            "fast_4_workers": round(t_fast4, 3),
        },
        "speedup_fast_vs_reference": round(t_reference / t_fast, 2),
        "speedup_4_workers_vs_serial": round(t_fast / t_fast4, 2),
        "sweep_sessions_per_second": {
            "reference": round(throughput(reference), 1),
            "fast_serial": round(throughput(fast), 1),
            "fast_4_workers": round(throughput(fast4), 1),
        },
        "preference_score_p50_ms": round(
            float(np.percentile(latencies, 50)) * 1000, 4
        ),
    }
    print(
        f"upm: D={scale['n_users']} W={corpus.n_words} "
        f"K={scale['n_topics']} x{scale['iterations']} sweeps: "
        f"reference={t_reference:.2f}s fast={t_fast:.2f}s "
        f"(x{row['speedup_fast_vs_reference']}), "
        f"4-worker={t_fast4:.2f}s on {os.cpu_count()} cpus; "
        f"bit_identical={bit_identical}; "
        f"score p50={row['preference_score_p50_ms']:.3f}ms"
    )
    return row


def run_obs_bench(n_users: int = 60, rounds: int = 7) -> dict:
    """Measure end-to-end instrumentation overhead on a warm workload.

    ONE warm suggester, alternating between detached (the null-registry
    default every subsystem boots with) and a live registry + tracer via
    ``attach_metrics`` each round.  Using the same instance for both
    sides keeps the comparison to exactly the instrumentation delta —
    two separately built suggesters differ by several percent from
    allocator/layout drift alone, which would swamp the span cost.

    The estimator is the *median of paired per-round ratios*: each round
    times both sides back to back (order flipping every round so neither
    side systematically rides a warm-up or frequency ramp), and the
    per-round ratio cancels the drift the two adjacent measurements
    share.  The median then discards rounds a scheduler hiccup split
    down the middle — machine noise here is +/- 8 %, the measured effect
    under 1 %, so an unpaired mean would be dominated by noise.
    """
    from repro.obs.export import to_prometheus
    from repro.obs.registry import MetricsRegistry

    world = make_world(seed=0, pages_per_leaf=24)
    config = GeneratorConfig(
        n_users=n_users,
        mean_sessions_per_user=12,
        click_probability=0.55,
        noise_click_probability=0.12,
        hub_click_probability=0.15,
        seed=42,
    )
    log = generate_log(world, config).log
    probes = _probe_queries(log, N_PROBES)
    pq_config = PQSDAConfig(
        compact=CompactConfig(size=150),
        diversify=DiversifyConfig(k=10, candidate_pool=25),
        personalize=False,
    )
    suggester = PQSDA.build(log, config=pq_config)
    registry = MetricsRegistry()

    for query in probes:
        suggester.suggest(query, k=10)

    def measure_side(attach) -> float:
        suggester.attach_metrics(attach)
        suggester.suggest(probes[0], k=10)  # settle the new binding
        return measure_latency(suggester, probes, k=10).mean_seconds

    plain_means: list[float] = []
    instrumented_means: list[float] = []
    ratios: list[float] = []
    for index in range(rounds):
        if index % 2 == 0:
            plain = measure_side(None)
            live = measure_side(registry)
        else:
            live = measure_side(registry)
            plain = measure_side(None)
        plain_means.append(plain)
        instrumented_means.append(live)
        ratios.append(live / plain if plain > 0 else 1.0)
    suggester.attach_metrics(None)
    best_plain = min(plain_means)
    best_instrumented = min(instrumented_means)
    ratios.sort()
    ratio = ratios[len(ratios) // 2]

    snapshot = registry.snapshot()
    row = {
        "n_users": n_users,
        "rounds": rounds,
        "probes": len(probes),
        "plain_mean_ms": round(best_plain * 1000, 4),
        "instrumented_mean_ms": round(best_instrumented * 1000, 4),
        "overhead_ratio": round(ratio, 4),
        "stage_breakdown_ms": _stage_breakdown(snapshot),
        "n_metrics": len(snapshot["metrics"]),
        "prometheus_lines": len(
            to_prometheus(snapshot).strip().splitlines()
        ),
        "snapshot": snapshot,
    }
    print(
        f"obs: plain={row['plain_mean_ms']:.3f}ms "
        f"instrumented={row['instrumented_mean_ms']:.3f}ms "
        f"(overhead x{row['overhead_ratio']}), "
        f"{row['n_metrics']} metrics exported"
    )
    return row


SERVE_WORKER_COUNTS = (1, 2, 4)


def _rss_kb() -> int:
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux
        pass
    return 0


SERVE_HOT_TOP = 20

#: Worker count the sharded serve section runs at — the smallest pool
#: where both parallel serving and cross-shard routing are exercised.
SHARD_BENCH_WORKERS = 2


def run_serve_bench(
    n_users: int = 60, rounds: int = 3, n_shards: int = 0
) -> dict:
    """Pooled QPS at 1/2/4 workers vs. the single-process serving path.

    One representation build; per worker count, two pools are measured:
    hot tier **off** (batched per-worker envelopes only — the tail path)
    and hot tier **on** (top-``SERVE_HOT_TOP`` head queries precomputed
    into the shared segment, answered O(1) in the parent).  The probe
    workload is served warm (a priming pass first) so the numbers
    measure the steady serving state, not compact-cache fills.  Batched
    tail answers and hot-tier answers are separately checked
    bit-identical against the single-process reference;
    ``ipc_overhead_ms`` is the per-request cost the pool adds over the
    single-process path (negative once parallelism wins).
    ``segment_mb`` counts the shared matrix bytes once — the marginal
    per-worker memory is each worker's own RSS (interpreter + caches),
    not another copy of the matrices.

    With *n_shards* the record gains a ``sharded`` section: the same
    workload served by ``SHARD_BENCH_WORKERS``-worker pools over the
    partitioned plane at shard counts ``{1, n_shards}``, recording
    per-shard segment bytes, the cross-shard spill rate, QPS relative to
    the unsharded pool at the same worker count, and bit-identity
    against the single-process path.  The 1-shard row is the
    no-regression control: one segment behind the sharded routing path.
    """
    from repro.core.suggester import head_queries
    from repro.serve.pool import SuggestWorkerPool
    from repro.utils.text import normalize_query

    world = make_world(seed=0, pages_per_leaf=24)
    config = GeneratorConfig(
        n_users=n_users,
        mean_sessions_per_user=12,
        click_probability=0.55,
        noise_click_probability=0.12,
        hub_click_probability=0.15,
        seed=42,
    )
    log = generate_log(world, config).log
    probes = _probe_queries(log, 40)
    pq_config = PQSDAConfig(
        compact=CompactConfig(size=150),
        diversify=DiversifyConfig(k=10, candidate_pool=25),
        personalize=False,
    )
    suggester = PQSDA.build(log, config=pq_config)
    requests = [SuggestRequest(query=q, k=10) for q in probes]
    hot_queries = head_queries(log, SERVE_HOT_TOP)
    hot_set = set(hot_queries)
    hot_positions = [
        i for i, q in enumerate(probes) if normalize_query(q) in hot_set
    ]
    tail_positions = [
        i for i, q in enumerate(probes) if normalize_query(q) not in hot_set
    ]

    suggester.suggest_batch(requests)  # warm the single-process cache
    start = time.perf_counter()
    for _ in range(rounds):
        expected = suggester.suggest_batch(requests)
    single_qps = len(requests) * rounds / (time.perf_counter() - start)

    def timed_qps(pool):
        identical = pool.suggest_many(requests) == expected  # warm pass
        start = time.perf_counter()
        got = None
        for _ in range(rounds):
            got = pool.suggest_many(requests)
            identical = got == expected and identical
        qps = len(requests) * rounds / (time.perf_counter() - start)
        return qps, identical, got

    row = {
        "n_users": n_users,
        "n_unique_queries": len(log.unique_queries),
        "probes": len(probes),
        "rounds": rounds,
        "hot_top": SERVE_HOT_TOP,
        "cpu_count": os.cpu_count(),
        "parent_rss_kb": _rss_kb(),
        "single_process_qps": round(single_qps, 1),
        "workers": [],
    }
    for n_workers in SERVE_WORKER_COUNTS:
        with SuggestWorkerPool.from_suggester(
            suggester, n_workers=n_workers, prefix=f"bench{n_workers}"
        ) as pool:
            qps, tail_identical, _ = timed_qps(pool)
            stats = pool.stats()
            segment_mb = round(pool.segment_bytes / 1e6, 3)
            worker_rss = [w.rss_kb for w in stats.workers]
            shares = all(w.shares_memory for w in stats.workers)
            attach = [
                round(info["attach_seconds"], 4)
                for _, info in sorted(pool.ready_info.items())
            ]
        with SuggestWorkerPool.from_suggester(
            suggester,
            n_workers=n_workers,
            prefix=f"benchhot{n_workers}",
            hot_queries=hot_queries,
        ) as pool:
            qps_hot, _, got_hot = timed_qps(pool)
            hot_stats = pool.stats()
            hot_identical = all(
                got_hot[i] == expected[i] for i in hot_positions
            )
            tail_identical = tail_identical and all(
                got_hot[i] == expected[i] for i in tail_positions
            )
            served = len(requests) * (rounds + 1)
            hit_rate = hot_stats.hot_hits / served if served else 0.0
        entry = {
            "n_workers": n_workers,
            "qps": round(qps, 1),
            "qps_hot_tier": round(qps_hot, 1),
            "scaling_vs_1_worker": None,  # filled below
            "ipc_overhead_ms": round(1000.0 / qps - 1000.0 / single_qps, 3),
            "hot_entries": hot_stats.hot_entries,
            "hot_hit_rate": round(hit_rate, 3),
            "bit_identical_tail": tail_identical,
            "bit_identical_hot": hot_identical,
            "bit_identical": tail_identical and hot_identical,
            "segment_mb": segment_mb,
            "worker_rss_kb": worker_rss,
            "shares_memory": shares,
            "attach_seconds": attach,
        }
        row["workers"].append(entry)
        print(
            f"serve: {n_workers} workers: {qps:7.1f} QPS tail / "
            f"{qps_hot:7.1f} QPS hot-tier "
            f"(single-process {single_qps:.1f}), "
            f"hot hit rate {hit_rate:.0%}, "
            f"bit_identical={entry['bit_identical']}, "
            f"segment={segment_mb}MB, "
            f"rss={[round(k / 1024) for k in worker_rss]}MB"
        )
    base_qps = row["workers"][0]["qps"]
    for entry in row["workers"]:
        entry["scaling_vs_1_worker"] = round(entry["qps"] / base_qps, 2)
    if n_shards > 0:
        unsharded_qps = next(
            entry["qps"]
            for entry in row["workers"]
            if entry["n_workers"] == SHARD_BENCH_WORKERS
        )
        sharded: dict = {
            "n_workers": SHARD_BENCH_WORKERS,
            "unsharded_qps": unsharded_qps,
            "shards": [],
        }
        for count in sorted({1, n_shards}):
            with SuggestWorkerPool.from_suggester(
                suggester,
                n_workers=SHARD_BENCH_WORKERS,
                prefix=f"benchsh{count}",
                n_shards=count,
            ) as pool:
                qps, identical, _ = timed_qps(pool)
                stats = pool.stats()
                sizes = list(pool.shard_segment_bytes.values())
                spills = sum(
                    worker.spill["spills"]
                    for worker in stats.workers
                    if worker.spill is not None
                )
                walks = sum(
                    worker.spill["walks"]
                    for worker in stats.workers
                    if worker.spill is not None
                )
            entry = {
                "n_shards": count,
                "qps": round(qps, 1),
                "qps_vs_unsharded": round(qps / unsharded_qps, 3),
                "bit_identical": identical,
                "segment_mb": round(sum(sizes) / 1e6, 3),
                "shard_segment_kb": [round(b / 1024, 1) for b in sizes],
                "spills": spills,
                "walks": walks,
                "spill_fraction": round(spills / walks, 4) if walks else 0.0,
            }
            sharded["shards"].append(entry)
            print(
                f"serve[shards={count}]: {SHARD_BENCH_WORKERS} workers: "
                f"{qps:7.1f} QPS "
                f"(x{entry['qps_vs_unsharded']} vs unsharded), "
                f"spill rate {entry['spill_fraction']:.1%}, "
                f"bit_identical={identical}, "
                f"segments={entry['shard_segment_kb']}KB"
            )
        row["sharded"] = sharded
    return row


def _http_get(url: str):
    """GET *url*; returns ``(status, parsed_body, seconds)`` (4xx/5xx too)."""
    import urllib.error
    import urllib.request

    start = time.perf_counter()
    try:
        with urllib.request.urlopen(url, timeout=60) as response:
            body = json.loads(response.read())
            return response.status, body, time.perf_counter() - start
    except urllib.error.HTTPError as error:
        body = json.loads(error.read())
        return error.code, body, time.perf_counter() - start


def run_http_bench(n_users: int = 60, rounds: int = 3) -> dict:
    """The async HTTP front-end end to end (``"http"`` in BENCH_serve.json).

    Two phases over one 2-worker pool:

    * **normal load** — 8 client threads replay the warm probe workload
      through real sockets with shed thresholds far out of reach; records
      QPS and p50/p99 latency and checks every HTTP answer bit-identical
      to ``suggest_batch`` (shed counters must stay zero — this is the
      acceptance gate for the front-end being a transparent transport);
    * **overload burst** — a fresh front-end over the same pool with
      per-worker thresholds pulled in tight (1/2/4) and 24 concurrent
      clients; bursts repeat (bounded retries) until every shed tier —
      rerank-skip, personalize-skip, reject — has fired at least once,
      and the recorded ``shed`` counters + status mix document the
      degradation ladder under saturation.
    """
    from concurrent.futures import ThreadPoolExecutor
    from urllib.parse import quote

    from repro.obs.registry import MetricsRegistry
    from repro.serve.frontend import FrontendConfig, run_in_thread
    from repro.serve.pool import SuggestWorkerPool

    def shed_counts(registry) -> dict:
        counts = {"rerank": 0, "personalize": 0, "reject": 0}
        for entry in registry.snapshot()["metrics"]:
            for tier in counts:
                if entry["name"] == f"serve.http.shed.{tier}":
                    counts[tier] = entry["value"]
        return counts

    world = make_world(seed=0, pages_per_leaf=24)
    config = GeneratorConfig(
        n_users=n_users,
        mean_sessions_per_user=12,
        click_probability=0.55,
        noise_click_probability=0.12,
        hub_click_probability=0.15,
        seed=42,
    )
    log = generate_log(world, config).log
    probes = _probe_queries(log, 40)
    pq_config = PQSDAConfig(
        compact=CompactConfig(size=150),
        diversify=DiversifyConfig(k=10, candidate_pool=25),
        personalize=False,
    )
    suggester = PQSDA.build(log, config=pq_config)
    requests = [SuggestRequest(query=q, k=10) for q in probes]
    suggester.suggest_batch(requests)  # warm the single-process cache
    expected = dict(zip(probes, suggester.suggest_batch(requests)))

    registry = MetricsRegistry()
    row: dict = {"n_workers": 2, "probes": len(probes)}
    with SuggestWorkerPool.from_suggester(
        suggester, n_workers=2, registry=registry, prefix="benchhttp"
    ) as pool:
        urls_of = lambda base: [  # noqa: E731 - tiny local binding
            base + "/suggest?q=" + quote(query) + "&k=10" for query in probes
        ]

        # -- normal load: thresholds out of reach, answers must be exact.
        normal_config = FrontendConfig(
            batch_window_ms=2.0,
            default_deadline_ms=30_000.0,
            shed_rerank_depth=64.0,
            shed_personalize_depth=128.0,
            reject_depth=256.0,
        )
        n_clients = 8
        with run_in_thread(
            pool, config=normal_config, registry=registry
        ) as handle:
            urls = urls_of(handle.url)
            with ThreadPoolExecutor(n_clients) as client:
                list(client.map(_http_get, urls))  # warm worker caches
                start = time.perf_counter()
                outcomes = []
                for _ in range(rounds):
                    outcomes.extend(client.map(_http_get, urls))
                elapsed = time.perf_counter() - start
        latencies = sorted(seconds for _, _, seconds in outcomes)
        bit_identical = all(
            status == 200
            and body["shed_tier"] == 0
            and body["suggestions"] == expected[body["query"]]
            for status, body, _ in outcomes
        )
        row["normal"] = {
            "clients": n_clients,
            "requests": len(outcomes),
            "qps": round(len(outcomes) / elapsed, 1),
            "p50_ms": round(
                float(np.percentile(latencies, 50)) * 1000, 3
            ),
            "p99_ms": round(
                float(np.percentile(latencies, 99)) * 1000, 3
            ),
            "errors": sum(1 for status, _, _ in outcomes if status != 200),
            "bit_identical": bit_identical,
            "shed": shed_counts(registry),
        }
        print(
            f"http[normal]: {row['normal']['qps']:7.1f} QPS over "
            f"{n_clients} clients, p50={row['normal']['p50_ms']:.2f}ms "
            f"p99={row['normal']['p99_ms']:.2f}ms, "
            f"bit_identical={bit_identical}, shed={row['normal']['shed']}"
        )

        # -- overload burst: tight thresholds, bounded retries until every
        # shed tier has fired.
        overload_registry = MetricsRegistry()
        overload_config = FrontendConfig(
            batch_window_ms=5.0,
            default_deadline_ms=5_000.0,
            shed_rerank_depth=1.0,
            shed_personalize_depth=2.0,
            reject_depth=4.0,
            max_dispatchers=2,
        )
        n_burst_clients, max_attempts = 24, 6
        outcomes, attempts = [], 0
        with run_in_thread(
            pool, config=overload_config, registry=overload_registry
        ) as handle:
            urls = urls_of(handle.url)
            start = time.perf_counter()
            while attempts < max_attempts:
                attempts += 1
                burst = (urls * ((n_burst_clients * 4) // len(urls) + 1))[
                    : n_burst_clients * 4
                ]
                with ThreadPoolExecutor(n_burst_clients) as client:
                    outcomes.extend(client.map(_http_get, burst))
                if all(
                    count > 0
                    for count in shed_counts(overload_registry).values()
                ):
                    break
            elapsed = time.perf_counter() - start
        shed = shed_counts(overload_registry)
        latencies = sorted(seconds for _, _, seconds in outcomes)
        status_counts: dict = {}
        for status, _, _ in outcomes:
            status_counts[str(status)] = status_counts.get(str(status), 0) + 1
        deadline_expired = 0
        for entry in overload_registry.snapshot()["metrics"]:
            if entry["name"] == "serve.http.deadline_expired":
                deadline_expired = entry["value"]
        row["overload"] = {
            "clients": n_burst_clients,
            "bursts": attempts,
            "requests": len(outcomes),
            "qps": round(len(outcomes) / elapsed, 1),
            "p50_ms": round(
                float(np.percentile(latencies, 50)) * 1000, 3
            ),
            "p99_ms": round(
                float(np.percentile(latencies, 99)) * 1000, 3
            ),
            "status_counts": status_counts,
            "shed": shed,
            "deadline_expired": deadline_expired,
            "all_tiers_observed": all(count > 0 for count in shed.values()),
            "thresholds_per_worker": {
                "rerank": overload_config.shed_rerank_depth,
                "personalize": overload_config.shed_personalize_depth,
                "reject": overload_config.reject_depth,
            },
        }
        print(
            f"http[overload]: {row['overload']['qps']:7.1f} QPS over "
            f"{n_burst_clients} clients x{attempts} bursts, "
            f"p50={row['overload']['p50_ms']:.2f}ms "
            f"p99={row['overload']['p99_ms']:.2f}ms, shed={shed}, "
            f"statuses={status_counts}, "
            f"all_tiers_observed={row['overload']['all_tiers_observed']}"
        )
    return row


def run_serve_personalize_bench(
    n_users: int = 60, rounds: int = 3, mode: str = "quick"
) -> dict:
    """Personalized vs. anonymous pooled QPS over the shared profile plane.

    One personalized suggester (small UPM fit); the same probe workload is
    served twice per pool — once anonymously and once with every request
    carrying a profiled ``user_id`` (round-robin over the store), so the
    gap isolates what personalization costs per request: the hot-tier
    bypass, the Borda fusion, and the zero-copy profile lookups.  The
    single-process gap is recorded as ``profile_lookup_overhead_ms``;
    pooled personalized answers are checked bit-identical against the
    single-process personalized path at every worker count.
    """
    from repro.personalize.upm import UPMConfig
    from repro.serve.pool import SuggestWorkerPool

    world = make_world(seed=0, pages_per_leaf=24)
    config = GeneratorConfig(
        n_users=n_users,
        mean_sessions_per_user=12,
        click_probability=0.55,
        noise_click_probability=0.12,
        hub_click_probability=0.15,
        seed=42,
    )
    log = generate_log(world, config).log
    probes = _probe_queries(log, 40)
    pq_config = PQSDAConfig(
        compact=CompactConfig(size=150),
        diversify=DiversifyConfig(k=10, candidate_pool=25),
        upm=UPMConfig(
            n_topics=6, iterations=8, hyperopt_every=0, seed=0
        ),
        personalize=True,
    )
    suggester = PQSDA.build(log, config=pq_config)
    users = suggester.profiles.user_ids
    personalized = [
        SuggestRequest(query=q, k=10, user_id=users[i % len(users)])
        for i, q in enumerate(probes)
    ]
    anonymous = [SuggestRequest(query=q, k=10) for q in probes]

    def single_qps(requests):
        suggester.suggest_batch(requests)  # warm pass
        start = time.perf_counter()
        expected = None
        for _ in range(rounds):
            expected = suggester.suggest_batch(requests)
        return len(requests) * rounds / (time.perf_counter() - start), expected

    qps_anon, _ = single_qps(anonymous)
    qps_personal, expected = single_qps(personalized)
    overhead_ms = round(1000.0 / qps_personal - 1000.0 / qps_anon, 3)

    row = {
        # Stamped here as well as on the parent record: the personalized
        # section is read standalone by dashboards, so it carries the
        # same run provenance (mode + machine size) uniformly.
        "mode": mode,
        "cpu_count": os.cpu_count(),
        "n_users": n_users,
        "profiled_users": len(users),
        "probes": len(probes),
        "rounds": rounds,
        "upm_topics": pq_config.upm.n_topics,
        "single_process_qps": round(qps_personal, 1),
        "single_process_anonymous_qps": round(qps_anon, 1),
        "profile_lookup_overhead_ms": overhead_ms,
        "workers": [],
    }
    for n_workers in SERVE_WORKER_COUNTS:
        with SuggestWorkerPool.from_suggester(
            suggester, n_workers=n_workers, prefix=f"benchp{n_workers}"
        ) as pool:
            pool.suggest_many(personalized)  # warm pass
            identical = True
            start = time.perf_counter()
            for _ in range(rounds):
                got = pool.suggest_many(personalized)
                identical = got == expected and identical
            qps = len(personalized) * rounds / (time.perf_counter() - start)
            pool.suggest_many(anonymous)  # warm the anonymous side
            start = time.perf_counter()
            for _ in range(rounds):
                pool.suggest_many(anonymous)
            pool_anon_qps = (
                len(anonymous) * rounds / (time.perf_counter() - start)
            )
            stats = pool.stats()
            entry = {
                "n_workers": n_workers,
                "qps_personalized": round(qps, 1),
                "qps_anonymous": round(pool_anon_qps, 1),
                "bit_identical": identical,
                "profile_segment_mb": round(
                    pool.profile_segment_bytes / 1e6, 3
                ),
                "profile_shares_memory": all(
                    w.profile_shares_memory for w in stats.workers
                ),
            }
        row["workers"].append(entry)
        print(
            f"serve[personalized]: {n_workers} workers: "
            f"{qps:7.1f} QPS personalized / {pool_anon_qps:7.1f} QPS "
            f"anonymous (single-process {qps_personal:.1f}), "
            f"bit_identical={identical}, "
            f"profile segment={entry['profile_segment_mb']}MB, "
            f"shared profile views={entry['profile_shares_memory']}"
        )
    return row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="sweep every Fig. 7 scale (default: smallest only)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI profile: smallest Fig. 7 scale, ingest, and a small "
        "UPM training benchmark",
    )
    parser.add_argument(
        "--ingest", action="store_true",
        help="also run the streaming-ingestion benchmark",
    )
    parser.add_argument(
        "--upm", action="store_true",
        help="also run the UPM training benchmark (reference vs. fast "
        "engine)",
    )
    parser.add_argument(
        "--obs", action="store_true",
        help="also run the observability overhead benchmark",
    )
    parser.add_argument(
        "--max-overhead-ratio", type=float, default=None, metavar="R",
        help="fail (exit 1) when the instrumented/plain latency ratio "
        "of the --obs benchmark exceeds R (CI uses 1.05)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="also run the scale-out serving benchmark (pooled QPS at "
        "1/2/4 workers over one shared-memory segment)",
    )
    parser.add_argument(
        "--min-serve-scaling", type=float, default=None, metavar="R",
        help="fail (exit 1) when 2-worker QPS is below R x 1-worker QPS "
        "(CI uses 1.3; auto-skipped on machines with fewer than 2 CPUs)",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="also benchmark the sharded graph plane at shard counts "
        "{1, N}: sharded serve QPS + spill rate into the serve record, "
        "per-shard fold/publish stats into the ingest record (implies "
        "--serve and --ingest; 0 = off)",
    )
    parser.add_argument(
        "--fold-workers", type=int, default=0, metavar="N",
        help="also benchmark the parallel ingest plane: N persistent fold "
        "worker processes with pipelined epoch publishes at --shards "
        "shards (implies --ingest; requires --shards; 0 = off)",
    )
    parser.add_argument(
        "--min-ingest-throughput", type=float, default=None, metavar="R",
        help="fail (exit 1) when the most parallel sharded ingest "
        "geometry falls below R x unsharded serial throughput, or when "
        "any measured geometry is not bit-identical (CI uses 0.9 with "
        "--shards 2 --fold-workers 2; the throughput bound — not the "
        "bit-identity check — is auto-skipped on machines with fewer "
        "than 2 CPUs, where no parallel fold speedup is physically "
        "available)",
    )
    parser.add_argument(
        "--personalize", action="store_true",
        help="also benchmark personalized serving over the shared profile "
        "plane (personalized vs. anonymous QPS at 1/2/4 workers; implies "
        "--serve)",
    )
    parser.add_argument(
        "--http", action="store_true",
        help="also benchmark the async HTTP front-end (normal-load QPS + "
        "p50/p99 with bit-identity, overload burst until every shed tier "
        "fires; implies --serve)",
    )
    parser.add_argument(
        "--output", default="BENCH_fig7.json",
        help="where to write the Fig. 7 JSON record",
    )
    parser.add_argument(
        "--ingest-output", default="BENCH_ingest.json",
        help="where to write the ingest JSON record",
    )
    parser.add_argument(
        "--upm-output", default="BENCH_upm.json",
        help="where to write the UPM training JSON record",
    )
    parser.add_argument(
        "--obs-output", default="BENCH_metrics.json",
        help="where to write the observability JSON record",
    )
    parser.add_argument(
        "--serve-output", default="BENCH_serve.json",
        help="where to write the scale-out serving JSON record",
    )
    args = parser.parse_args()
    if args.quick:
        args.ingest = True
        args.upm = True
        args.obs = True
        args.serve = True
        args.personalize = True
        args.http = True
    if args.max_overhead_ratio is not None:
        args.obs = True
    if args.min_serve_scaling is not None or args.personalize or args.http:
        args.serve = True
    if args.shards > 0:
        args.serve = True
        args.ingest = True
    if args.fold_workers > 0:
        args.ingest = True
        if args.shards <= 0:
            parser.error("--fold-workers requires --shards")
    if args.min_ingest_throughput is not None and args.shards <= 0:
        parser.error("--min-ingest-throughput requires --shards")
    mode = "full" if args.full else "quick"
    scales = USER_SCALES if args.full else USER_SCALES[:1]
    record = {
        "benchmark": "fig7_efficiency",
        "mode": mode,
        "protocol": {
            "probes": N_PROBES,
            "compact_size": 150,
            "k": 10,
            "candidate_pool": 25,
        },
        "python": platform.python_version(),
        **run_sweep(scales),
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")
    if args.ingest:
        ingest_record = {
            "benchmark": "stream_ingest",
            "mode": mode,
            "protocol": {
                "bootstrap_fraction": 0.7,
                "batch_size": 256,
                "epoch_every": 1,
                "probes": N_PROBES,
                "compact_size": 150,
                "k": 10,
            },
            "python": platform.python_version(),
            **run_ingest_bench(
                n_users=(
                    INGEST_USERS_FULL if args.full else INGEST_USERS_QUICK
                ),
                n_shards=args.shards,
                fold_workers=args.fold_workers,
            ),
        }
        Path(args.ingest_output).write_text(
            json.dumps(ingest_record, indent=2) + "\n"
        )
        print(f"wrote {args.ingest_output}")
        if args.min_ingest_throughput is not None:
            entries = ingest_record.get("sharded", [])
            broken = [
                f"shards={e['n_shards']} fold_workers={e['fold_workers']}"
                for e in entries
                if not e["bit_identical"]
            ]
            if broken:
                print(
                    "FAIL: sharded ingest not bit-identical at "
                    + ", ".join(broken)
                )
                return 1
            cpus = ingest_record["cpu_count"] or 1
            gated = entries[-1] if entries else None
            if gated is not None and gated["fold_workers"] > 0 and cpus < 2:
                print(
                    f"ingest throughput gate skipped: {cpus} CPU(s) — no "
                    "parallel fold speedup is physically available"
                )
            elif gated is not None and (
                gated["throughput_vs_unsharded"]
                < args.min_ingest_throughput
            ):
                print(
                    f"FAIL: sharded ingest at shards={gated['n_shards']} "
                    f"fold_workers={gated['fold_workers']} reached "
                    f"x{gated['throughput_vs_unsharded']} of unsharded "
                    f"serial throughput, below the "
                    f"x{args.min_ingest_throughput} bound"
                )
                return 1
    if args.upm:
        upm_record = {
            "benchmark": "upm_training",
            "mode": mode,
            "profile": "quick" if args.quick else "default",
            "python": platform.python_version(),
            **run_upm_bench(quick=args.quick),
        }
        Path(args.upm_output).write_text(
            json.dumps(upm_record, indent=2) + "\n"
        )
        print(f"wrote {args.upm_output}")
    if args.obs:
        obs_row = run_obs_bench()
        obs_record = {
            "benchmark": "observability_overhead",
            "mode": mode,
            "max_overhead_ratio": args.max_overhead_ratio,
            "python": platform.python_version(),
            **obs_row,
        }
        Path(args.obs_output).write_text(
            json.dumps(obs_record, indent=2) + "\n"
        )
        print(f"wrote {args.obs_output}")
        if (
            args.max_overhead_ratio is not None
            and obs_row["overhead_ratio"] > args.max_overhead_ratio
        ):
            print(
                f"FAIL: instrumentation overhead x{obs_row['overhead_ratio']}"
                f" exceeds the x{args.max_overhead_ratio} bound"
            )
            return 1
    if args.serve:
        serve_row = run_serve_bench(
            rounds=2 if args.quick else 3, n_shards=args.shards
        )
        personal_row = None
        if args.personalize:
            personal_row = run_serve_personalize_bench(
                rounds=2 if args.quick else 3, mode=mode
            )
            serve_row["personalized"] = personal_row
        http_row = None
        if args.http:
            http_row = run_http_bench(rounds=2 if args.quick else 3)
            serve_row["http"] = http_row
        serve_record = {
            "benchmark": "serve_scaleout",
            "mode": mode,
            "min_serve_scaling": args.min_serve_scaling,
            "python": platform.python_version(),
            **serve_row,
        }
        Path(args.serve_output).write_text(
            json.dumps(serve_record, indent=2) + "\n"
        )
        print(f"wrote {args.serve_output}")
        if not all(entry["bit_identical"] for entry in serve_row["workers"]):
            print("FAIL: pooled output diverged from the single-process path")
            return 1
        sharded = serve_row.get("sharded")
        if sharded is not None and not all(
            entry["bit_identical"] for entry in sharded["shards"]
        ):
            print(
                "FAIL: sharded pooled output diverged from the "
                "single-process path"
            )
            return 1
        if personal_row is not None and not all(
            entry["bit_identical"] for entry in personal_row["workers"]
        ):
            print(
                "FAIL: pooled personalized output diverged from the "
                "single-process path"
            )
            return 1
        if http_row is not None:
            if not http_row["normal"]["bit_identical"]:
                print(
                    "FAIL: HTTP answers diverged from suggest_batch "
                    "under normal load"
                )
                return 1
            if not http_row["overload"]["all_tiers_observed"]:
                print(
                    "FAIL: overload bursts never reached every shed tier "
                    f"(shed={http_row['overload']['shed']})"
                )
                return 1
        if args.min_serve_scaling is not None:
            cpus = serve_row["cpu_count"] or 1
            if cpus < 2:
                print(
                    f"serve scaling gate skipped: {cpus} CPU(s) — no "
                    "parallel speedup is physically available"
                )
            else:
                by_workers = {
                    entry["n_workers"]: entry["qps"]
                    for entry in serve_row["workers"]
                }
                scaling = by_workers[2] / by_workers[1]
                if scaling < args.min_serve_scaling:
                    print(
                        f"FAIL: 2-worker scaling x{scaling:.2f} below the "
                        f"x{args.min_serve_scaling} bound"
                    )
                    return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
