#!/usr/bin/env python
"""Quick Fig. 7 latency smoke run; writes ``BENCH_fig7.json``.

Runs the Fig. 7 efficiency protocol (mean per-suggestion latency of
PQS-DA and the DQS/HT/CM baselines on a fixed probe workload) and
records the numbers as JSON.  By default only the smallest scale runs,
which finishes in seconds; ``--full`` sweeps every Fig. 7 scale.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--full] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.baselines.base import SuggestRequest
from repro.baselines.registry import build_baseline
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.eval.efficiency import measure_batch_latency, measure_latency
from repro.graphs.compact import CompactConfig
from repro.logs.storage import QueryLog
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

USER_SCALES = (60, 140, 300)  # mirrors benchmarks/bench_fig7_efficiency.py
N_PROBES = 15

#: PQS-DA mean latency (ms) measured on the pre-fast-path revision of this
#: repo, keyed by unique-query count — the reference the speedup is
#: reported against.
SEED_PQSDA_MS = {1028: 13.82, 2170: 16.85, 4174: 22.03}


def _probe_queries(log: QueryLog, n: int) -> list[str]:
    seen: set[str] = set()
    probes: list[str] = []
    for record in log:
        if record.has_click and record.query not in seen:
            seen.add(record.query)
            probes.append(record.query)
        if len(probes) >= n:
            break
    return probes


def run_sweep(scales: tuple[int, ...]) -> dict:
    world = make_world(seed=0, pages_per_leaf=24)
    result: dict = {"scales": []}
    for n_users in scales:
        config = GeneratorConfig(
            n_users=n_users,
            mean_sessions_per_user=12,
            click_probability=0.55,
            noise_click_probability=0.12,
            hub_click_probability=0.15,
            seed=42,
        )
        log = generate_log(world, config).log
        probes = _probe_queries(log, N_PROBES)
        n_queries = len(log.unique_queries)

        pqsda = PQSDA.build(
            log,
            config=PQSDAConfig(
                compact=CompactConfig(size=150),
                diversify=DiversifyConfig(k=10, candidate_pool=25),
                personalize=False,
            ),
        )
        systems = {
            "PQS-DA": pqsda,
            "DQS": build_baseline("DQS", log),
            "HT": build_baseline("HT", log),
            "CM": build_baseline("CM", log),
        }
        row = {"n_users": n_users, "n_unique_queries": n_queries,
               "mean_latency_ms": {}}
        for name, suggester in systems.items():
            measured = measure_latency(suggester, probes, k=10)
            row["mean_latency_ms"][name] = measured.mean_seconds * 1000
        # Warm-cache pass: the same workload served again through the
        # batch API, now hitting the serving cache on every request.
        requests = [SuggestRequest(query=q, k=10) for q in probes]
        warm = measure_batch_latency(pqsda, requests)
        row["pqsda_warm_batch_ms"] = warm.mean_seconds * 1000
        row["pqsda_cache"] = {
            "hits": pqsda.cache_stats.hits,
            "misses": pqsda.cache_stats.misses,
            "evictions": pqsda.cache_stats.evictions,
        }
        seed_ms = SEED_PQSDA_MS.get(n_queries)
        if seed_ms is not None:
            row["pqsda_seed_ms"] = seed_ms
            row["pqsda_speedup_vs_seed"] = round(
                seed_ms / row["mean_latency_ms"]["PQS-DA"], 2
            )
        result["scales"].append(row)
        print(
            f"n_users={n_users:4d} (n={n_queries}): "
            + "  ".join(
                f"{name}={ms:7.2f}ms"
                for name, ms in row["mean_latency_ms"].items()
            )
            + f"  PQS-DA(warm)={row['pqsda_warm_batch_ms']:.2f}ms"
        )
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="sweep every Fig. 7 scale (default: smallest only)",
    )
    parser.add_argument(
        "--output", default="BENCH_fig7.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args()
    scales = USER_SCALES if args.full else USER_SCALES[:1]
    record = {
        "benchmark": "fig7_efficiency",
        "protocol": {
            "probes": N_PROBES,
            "compact_size": 150,
            "k": 10,
            "candidate_pool": 25,
        },
        "python": platform.python_version(),
        **run_sweep(scales),
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
