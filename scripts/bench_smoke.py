#!/usr/bin/env python
"""Quick latency smoke run; writes ``BENCH_fig7.json`` (and ``BENCH_ingest.json``).

Runs the Fig. 7 efficiency protocol (mean per-suggestion latency of
PQS-DA and the DQS/HT/CM baselines on a fixed probe workload) and
records the numbers as JSON.  By default only the smallest scale runs,
which finishes in seconds; ``--full`` sweeps every Fig. 7 scale.

``--ingest`` additionally benchmarks the streaming subsystem: bootstrap a
live suggester from 70% of the log, stream the remaining 30% through the
incremental ingestion path, and record ingestion throughput plus the
post-ingest warm-cache suggestion latency against a from-scratch batch
build over the same full log (acceptance: within 2x).  ``--quick`` is the
CI profile: smallest Fig. 7 scale plus the ingest benchmark.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py [--full|--quick] [--ingest]
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.baselines.base import SuggestRequest
from repro.baselines.registry import build_baseline
from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.eval.efficiency import measure_batch_latency, measure_latency
from repro.graphs.compact import CompactConfig
from repro.logs.storage import QueryLog
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

USER_SCALES = (60, 140, 300)  # mirrors benchmarks/bench_fig7_efficiency.py
N_PROBES = 15

#: PQS-DA mean latency (ms) measured on the pre-fast-path revision of this
#: repo, keyed by unique-query count — the reference the speedup is
#: reported against.
SEED_PQSDA_MS = {1028: 13.82, 2170: 16.85, 4174: 22.03}


def _probe_queries(log: QueryLog, n: int) -> list[str]:
    seen: set[str] = set()
    probes: list[str] = []
    for record in log:
        if record.has_click and record.query not in seen:
            seen.add(record.query)
            probes.append(record.query)
        if len(probes) >= n:
            break
    return probes


def run_sweep(scales: tuple[int, ...]) -> dict:
    world = make_world(seed=0, pages_per_leaf=24)
    result: dict = {"scales": []}
    for n_users in scales:
        config = GeneratorConfig(
            n_users=n_users,
            mean_sessions_per_user=12,
            click_probability=0.55,
            noise_click_probability=0.12,
            hub_click_probability=0.15,
            seed=42,
        )
        log = generate_log(world, config).log
        probes = _probe_queries(log, N_PROBES)
        n_queries = len(log.unique_queries)

        pqsda = PQSDA.build(
            log,
            config=PQSDAConfig(
                compact=CompactConfig(size=150),
                diversify=DiversifyConfig(k=10, candidate_pool=25),
                personalize=False,
            ),
        )
        systems = {
            "PQS-DA": pqsda,
            "DQS": build_baseline("DQS", log),
            "HT": build_baseline("HT", log),
            "CM": build_baseline("CM", log),
        }
        row = {"n_users": n_users, "n_unique_queries": n_queries,
               "mean_latency_ms": {}}
        for name, suggester in systems.items():
            measured = measure_latency(suggester, probes, k=10)
            row["mean_latency_ms"][name] = measured.mean_seconds * 1000
        # Warm-cache pass: the same workload served again through the
        # batch API, now hitting the serving cache on every request.
        requests = [SuggestRequest(query=q, k=10) for q in probes]
        warm = measure_batch_latency(pqsda, requests)
        row["pqsda_warm_batch_ms"] = warm.mean_seconds * 1000
        row["pqsda_cache"] = {
            "hits": pqsda.cache_stats.hits,
            "misses": pqsda.cache_stats.misses,
            "evictions": pqsda.cache_stats.evictions,
        }
        seed_ms = SEED_PQSDA_MS.get(n_queries)
        if seed_ms is not None:
            row["pqsda_seed_ms"] = seed_ms
            row["pqsda_speedup_vs_seed"] = round(
                seed_ms / row["mean_latency_ms"]["PQS-DA"], 2
            )
        result["scales"].append(row)
        print(
            f"n_users={n_users:4d} (n={n_queries}): "
            + "  ".join(
                f"{name}={ms:7.2f}ms"
                for name, ms in row["mean_latency_ms"].items()
            )
            + f"  PQS-DA(warm)={row['pqsda_warm_batch_ms']:.2f}ms"
        )
    return result


def run_ingest_bench(n_users: int = 60) -> dict:
    """Stream 30% of a log into a 70% bootstrap; record throughput + latency."""
    from repro.stream import IngestConfig, replay, streaming_pqsda

    world = make_world(seed=0, pages_per_leaf=24)
    config = GeneratorConfig(
        n_users=n_users,
        mean_sessions_per_user=12,
        click_probability=0.55,
        noise_click_probability=0.12,
        hub_click_probability=0.15,
        seed=42,
    )
    log = generate_log(world, config).log
    records = sorted(log.records, key=lambda r: (r.timestamp, r.record_id))
    split = int(len(records) * 0.7)
    bootstrap, tail = QueryLog(records[:split]), records[split:]

    pq_config = PQSDAConfig(
        compact=CompactConfig(size=150),
        diversify=DiversifyConfig(k=10, candidate_pool=25),
        personalize=False,
    )
    suggester, ingestor, manager = streaming_pqsda(
        bootstrap,
        config=pq_config,
        ingest=IngestConfig(batch_size=256, epoch_every=1, clean=False),
    )
    report = ingestor.ingest(replay(tail))

    probes = _probe_queries(log, N_PROBES)
    requests = [SuggestRequest(query=q, k=10) for q in probes]
    measure_batch_latency(suggester, requests)  # cold pass fills the cache
    warm_stream = measure_batch_latency(suggester, requests)

    reference = PQSDA.build(QueryLog(records), config=pq_config)
    measure_batch_latency(reference, requests)  # cold pass fills the cache
    warm_batch = measure_batch_latency(reference, requests)

    epochs = manager.stats
    cache = suggester.cache_stats
    row = {
        "n_users": n_users,
        "n_records": len(records),
        "bootstrap_records": split,
        "streamed_records": report.records_ingested,
        "ingest_seconds": report.elapsed_seconds,
        "ingest_records_per_second": report.records_per_second,
        "micro_batches": report.batches,
        "epochs_published": epochs.published,
        "epochs_retired": epochs.retired,
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "invalidations": cache.invalidations,
        },
        "stream_warm_batch_ms": warm_stream.mean_seconds * 1000,
        "batch_warm_batch_ms": warm_batch.mean_seconds * 1000,
        "warm_ratio_stream_vs_batch": round(
            warm_stream.mean_seconds / warm_batch.mean_seconds, 3
        ),
    }
    print(
        f"ingest: {report.records_ingested} records at "
        f"{report.records_per_second:,.0f} records/s, "
        f"{epochs.published} epochs; warm stream="
        f"{row['stream_warm_batch_ms']:.2f}ms vs batch="
        f"{row['batch_warm_batch_ms']:.2f}ms "
        f"(ratio {row['warm_ratio_stream_vs_batch']})"
    )
    return row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full", action="store_true",
        help="sweep every Fig. 7 scale (default: smallest only)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI profile: smallest Fig. 7 scale plus the ingest benchmark",
    )
    parser.add_argument(
        "--ingest", action="store_true",
        help="also run the streaming-ingestion benchmark",
    )
    parser.add_argument(
        "--output", default="BENCH_fig7.json",
        help="where to write the Fig. 7 JSON record",
    )
    parser.add_argument(
        "--ingest-output", default="BENCH_ingest.json",
        help="where to write the ingest JSON record",
    )
    args = parser.parse_args()
    if args.quick:
        args.ingest = True
    scales = USER_SCALES if args.full else USER_SCALES[:1]
    record = {
        "benchmark": "fig7_efficiency",
        "protocol": {
            "probes": N_PROBES,
            "compact_size": 150,
            "k": 10,
            "candidate_pool": 25,
        },
        "python": platform.python_version(),
        **run_sweep(scales),
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")
    if args.ingest:
        ingest_record = {
            "benchmark": "stream_ingest",
            "protocol": {
                "bootstrap_fraction": 0.7,
                "batch_size": 256,
                "epoch_every": 1,
                "probes": N_PROBES,
                "compact_size": 150,
                "k": 10,
            },
            "python": platform.python_version(),
            **run_ingest_bench(),
        }
        Path(args.ingest_output).write_text(
            json.dumps(ingest_record, indent=2) + "\n"
        )
        print(f"wrote {args.ingest_output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
