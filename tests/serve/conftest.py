"""Shared serving-plane fixtures: one small synthetic world per package."""

import pytest

from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.graphs.compact import CompactConfig, RandomWalkExpander
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize
from repro.personalize.profiles import UserProfileStore
from repro.personalize.upm import UPM, UPMConfig
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world
from repro.topicmodels.corpus import build_corpus

SERVE_CONFIG = PQSDAConfig(
    compact=CompactConfig(size=60),
    diversify=DiversifyConfig(k=8, candidate_pool=15),
    personalize=False,
    cache_size=64,
)

#: Personalized twin of SERVE_CONFIG: same serving pipeline, tiny UPM.
SERVE_PERSONAL_CONFIG = PQSDAConfig(
    compact=CompactConfig(size=60),
    diversify=DiversifyConfig(k=8, candidate_pool=15),
    upm=UPMConfig(n_topics=4, iterations=8, hyperopt_every=0, seed=0),
    personalize=True,
    cache_size=64,
)


@pytest.fixture(scope="package")
def synthetic_log():
    world = make_world(seed=0)
    return generate_log(
        world,
        GeneratorConfig(n_users=25, mean_sessions_per_user=8, seed=11),
    ).log


@pytest.fixture(scope="package")
def multibipartite(synthetic_log):
    return build_multibipartite(synthetic_log, sessionize(synthetic_log))


@pytest.fixture(scope="package")
def expander(multibipartite):
    return RandomWalkExpander(multibipartite)


@pytest.fixture(scope="package")
def single_suggester(multibipartite, expander):
    """The single-process reference every pooled result must match."""
    return PQSDA(multibipartite, expander, None, SERVE_CONFIG)


@pytest.fixture(scope="package")
def profile_store(synthetic_log):
    """A fitted UPM profile store over the same synthetic log."""
    corpus = build_corpus(synthetic_log, sessionize(synthetic_log))
    model = UPM(SERVE_PERSONAL_CONFIG.upm).fit(corpus)
    return UserProfileStore(model)


@pytest.fixture(scope="package")
def personal_suggester(multibipartite, expander, profile_store):
    """The single-process personalized reference for pooled bit-identity."""
    return PQSDA(multibipartite, expander, profile_store, SERVE_PERSONAL_CONFIG)
