"""Shared serving-plane fixtures: one small synthetic world per module."""

import pytest

from repro.core import PQSDA, PQSDAConfig
from repro.diversify.candidates import DiversifyConfig
from repro.graphs.compact import CompactConfig, RandomWalkExpander
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

SERVE_CONFIG = PQSDAConfig(
    compact=CompactConfig(size=60),
    diversify=DiversifyConfig(k=8, candidate_pool=15),
    personalize=False,
    cache_size=64,
)


@pytest.fixture(scope="package")
def synthetic_log():
    world = make_world(seed=0)
    return generate_log(
        world,
        GeneratorConfig(n_users=25, mean_sessions_per_user=8, seed=11),
    ).log


@pytest.fixture(scope="package")
def multibipartite(synthetic_log):
    return build_multibipartite(synthetic_log, sessionize(synthetic_log))


@pytest.fixture(scope="package")
def expander(multibipartite):
    return RandomWalkExpander(multibipartite)


@pytest.fixture(scope="package")
def single_suggester(multibipartite, expander):
    """The single-process reference every pooled result must match."""
    return PQSDA(multibipartite, expander, None, SERVE_CONFIG)
