"""Pooled suggestions must be bit-identical to the single-process path."""

import pytest

from repro.baselines.base import SuggestRequest
from repro.core import PQSDA
from repro.obs.registry import MetricsRegistry
from repro.serve.pool import SuggestWorkerPool

from tests.serve.conftest import SERVE_CONFIG


@pytest.fixture(scope="module")
def probe_requests(multibipartite):
    seen = [
        SuggestRequest(query=query, k=8)
        for query in multibipartite.queries[:20]
    ]
    unseen = [
        SuggestRequest(query="totally unseen query", k=8),
        SuggestRequest(
            query=multibipartite.queries[0].split()[0] + " unseen suffix", k=8
        ),
    ]
    return seen + unseen


@pytest.fixture(scope="module")
def expected(single_suggester, probe_requests):
    return single_suggester.suggest_batch(probe_requests)


@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_pool_bit_identical_to_single_process(
    expander, multibipartite, probe_requests, expected, n_workers
):
    with SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=n_workers,
        prefix=f"t-eq{n_workers}",
    ) as pool:
        assert pool.suggest_many(probe_requests) == expected
        # Second pass is served from warm per-worker caches — still identical.
        assert pool.suggest_many(probe_requests) == expected


def test_workers_serve_from_shared_views_not_copies(
    expander, multibipartite, probe_requests
):
    with SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=2,
        prefix="t-views",
    ) as pool:
        pool.suggest_many(probe_requests)
        stats = pool.stats()
        assert len(stats.workers) == 2
        assert all(worker.shares_memory for worker in stats.workers)
        assert stats.total_requests == len(probe_requests)
        assert stats.segment_bytes > 0


def test_routing_is_stable_per_query(expander, multibipartite):
    query = multibipartite.queries[0]
    requests = [SuggestRequest(query=query, k=8)] * 6
    with SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=2,
        prefix="t-route",
    ) as pool:
        pool.suggest_many(requests)
        stats = pool.stats()
        served = sorted(worker.requests for worker in stats.workers)
        assert served == [0, 6]  # every repeat hit the same worker's cache
        hot = [worker for worker in stats.workers if worker.requests][0]
        assert hot.cache.hits >= 5


def test_single_suggest_and_empty_batch(expander, multibipartite, single_suggester):
    query = multibipartite.queries[3]
    with SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=1,
        prefix="t-one",
    ) as pool:
        assert pool.suggest(query, k=8) == single_suggester.suggest(query, k=8)
        assert pool.suggest_many([]) == []


def test_merged_metrics_carry_worker_labels(expander, multibipartite, probe_requests):
    registry = MetricsRegistry()
    with SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=2,
        registry=registry,
        prefix="t-metrics",
    ) as pool:
        pool.suggest_many(probe_requests)
        merged = pool.merged_metrics()
    names = {entry["name"] for entry in merged["metrics"]}
    assert "serve.pool.requests" in names
    assert "serve.pool.attach_seconds" in names
    worker_labels = {
        entry["labels"].get("worker")
        for entry in merged["metrics"]
        if entry["name"] == "serving.cache.hits"
    }
    assert worker_labels == {"0", "1"}


def test_from_suggester_accepts_profiles(personal_suggester):
    """A profile-bearing suggester pools via the shared profile plane."""
    with SuggestWorkerPool.from_suggester(
        personal_suggester, n_workers=1, prefix="t-prof"
    ) as pool:
        assert pool.serves_profiles
        assert pool.profile_users == len(personal_suggester.profiles)


def test_from_suggester_builds_equivalent_pool(multibipartite, expander):
    suggester = PQSDA(multibipartite, expander, None, SERVE_CONFIG)
    query = multibipartite.queries[5]
    with SuggestWorkerPool.from_suggester(
        suggester, n_workers=1, prefix="t-from"
    ) as pool:
        assert pool.suggest(query, k=8) == suggester.suggest(query, k=8)
