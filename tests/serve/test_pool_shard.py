"""Sharded pool serving: bit-identity, per-shard swaps, spill accounting."""

import multiprocessing

import pytest

from repro.baselines.base import SuggestRequest
from repro.graphs.shard import ShardPlan, build_shard_slices
from repro.serve.pool import SuggestWorkerPool

from tests.serve.conftest import SERVE_CONFIG

START_METHOD = (
    "fork"
    if "fork" in multiprocessing.get_all_start_methods()
    else "spawn"
)


@pytest.fixture(scope="module")
def probe_requests(multibipartite):
    seen = [
        SuggestRequest(query=query, k=8)
        for query in multibipartite.queries[:16]
    ]
    unseen = [
        SuggestRequest(query="totally unseen query", k=8),
        SuggestRequest(
            query=multibipartite.queries[0].split()[0] + " unseen suffix", k=8
        ),
    ]
    return seen + unseen


@pytest.fixture(scope="module")
def expected(single_suggester, probe_requests):
    return single_suggester.suggest_batch(probe_requests)


def _pool(expander, multibipartite, n_workers, prefix, **kwargs):
    return SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=n_workers,
        start_method=START_METHOD,
        prefix=prefix,
        **kwargs,
    )


@pytest.mark.parametrize("n_shards", [1, 2, 4])
@pytest.mark.parametrize("n_workers", [1, 2, 4])
def test_sharded_pool_bit_identical_at_any_geometry(
    expander, multibipartite, probe_requests, expected, n_shards, n_workers
):
    with _pool(
        expander,
        multibipartite,
        n_workers,
        f"t-sh{n_shards}w{n_workers}",
        n_shards=n_shards,
    ) as pool:
        assert pool.n_shards == n_shards
        assert pool.suggest_many(probe_requests) == expected
        # Warm-cache second pass stays identical.
        assert pool.suggest_many(probe_requests) == expected


def test_component_plan_pool_serves_without_spills(
    expander, multibipartite, probe_requests, expected
):
    plan = ShardPlan.components(multibipartite, 3)
    with _pool(
        expander,
        multibipartite,
        2,
        "t-shcomp",
        n_shards=3,
        shard_plan=plan,
    ) as pool:
        assert pool.suggest_many(probe_requests) == expected
        stats = pool.stats()
        spills = sum(
            worker.spill["spills"]
            for worker in stats.workers
            if worker.spill is not None
        )
        assert spills == 0


def test_publish_shard_swaps_only_the_touched_segment(
    expander, multibipartite, probe_requests, expected
):
    plan = ShardPlan.hashed(3)
    with _pool(
        expander,
        multibipartite,
        2,
        "t-shswap",
        n_shards=3,
        shard_plan=plan,
    ) as pool:
        assert pool.suggest_many(probe_requests) == expected
        before_ids = dict(pool.shard_epoch_ids)
        before_bytes = dict(pool.shard_segment_bytes)
        piece = build_shard_slices(expander.matrices, plan, multibipartite)[1]
        pool.publish_shard(piece, touched=list(piece.queries), epoch_id=7)
        after_ids = dict(pool.shard_epoch_ids)
        assert after_ids[1] == 7
        for shard_id in (0, 2):
            assert after_ids[shard_id] == before_ids[shard_id]
            assert pool.shard_segment_bytes[shard_id] == before_bytes[shard_id]
        # Identical bytes republished: results are unchanged.
        assert pool.suggest_many(probe_requests) == expected


def test_publish_shard_rejects_query_set_changes(expander, multibipartite):
    plan = ShardPlan.hashed(2)
    with _pool(
        expander,
        multibipartite,
        1,
        "t-shguard",
        n_shards=2,
        shard_plan=plan,
    ) as pool:
        wrong = build_shard_slices(
            expander.matrices, ShardPlan.hashed(3), multibipartite
        )[0]
        with pytest.raises(ValueError, match="query set"):
            pool.publish_shard(wrong)


def test_publish_shard_on_unsharded_pool_raises(expander, multibipartite):
    plan = ShardPlan.hashed(2)
    piece = build_shard_slices(expander.matrices, plan, multibipartite)[0]
    with _pool(expander, multibipartite, 1, "t-shuns") as pool:
        with pytest.raises(RuntimeError, match="sharded"):
            pool.publish_shard(piece)


def test_stats_expose_shard_geometry_and_spills(
    expander, multibipartite, probe_requests
):
    with _pool(
        expander, multibipartite, 2, "t-shstats", n_shards=4
    ) as pool:
        pool.suggest_many(probe_requests)
        stats = pool.stats()
        assert stats.n_shards == 4
        assert len(stats.shard_segment_bytes) == 4
        assert all(size > 0 for size in stats.shard_segment_bytes)
        assert len(stats.shard_epoch_ids) == 4
        served = [w for w in stats.workers if w.requests]
        assert served
        for worker in served:
            assert worker.spill is not None
            assert worker.spill["walks"] > 0


def test_sharded_hot_tier_hits_stay_identical(
    expander, multibipartite, single_suggester
):
    hot = multibipartite.queries[:6]
    requests = [SuggestRequest(query=query, k=8) for query in hot]
    expected = single_suggester.suggest_batch(requests)
    with _pool(
        expander,
        multibipartite,
        2,
        "t-shhot",
        n_shards=2,
        hot_queries=hot,
    ) as pool:
        assert pool.suggest_many(requests) == expected
        stats = pool.stats()
        assert stats.hot_hits == len(requests)
