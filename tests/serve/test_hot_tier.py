"""Hot-query fast tier + batched IPC: bit-identity, refresh, regressions."""

import pytest

from repro.baselines.base import SuggestRequest
from repro.core import PQSDA, head_queries
from repro.graphs.compact import RandomWalkExpander
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.schema import QueryRecord
from repro.logs.sessionizer import sessionize
from repro.obs.registry import MetricsRegistry
from repro.serve.pool import SuggestWorkerPool
from repro.stream.epoch import Epoch, EpochManager
from repro.synth.generator import GeneratorConfig, generate_log
from repro.utils.text import normalize_query
from repro.synth.world import make_world

from tests.serve.conftest import SERVE_CONFIG


def _metric_value(registry, name):
    for entry in registry.snapshot()["metrics"]:
        if entry["name"] == name:
            return entry["value"]
    return None


@pytest.fixture(scope="module")
def next_generation():
    """A second, different representation for refresh tests."""
    world = make_world(seed=0)
    log = generate_log(
        world,
        GeneratorConfig(n_users=40, mean_sessions_per_user=8, seed=17),
    ).log
    multibipartite = build_multibipartite(log, sessionize(log))
    expander = RandomWalkExpander(multibipartite)
    return log, multibipartite, expander


class TestHeadQueries:
    def test_ranked_by_frequency_then_query(self, synthetic_log):
        head = head_queries(synthetic_log, 10)
        assert len(head) == 10
        frequencies = [synthetic_log.query_frequency(q) for q in head]
        assert frequencies == sorted(frequencies, reverse=True)
        for first, second in zip(head, head[1:]):
            if synthetic_log.query_frequency(
                first
            ) == synthetic_log.query_frequency(second):
                assert first < second

    def test_zero_and_oversized_n(self, synthetic_log):
        assert head_queries(synthetic_log, 0) == []
        assert head_queries(synthetic_log, -3) == []
        everything = head_queries(synthetic_log, 10**6)
        assert sorted(everything) == synthetic_log.unique_queries


class TestHotBitIdentity:
    @pytest.mark.parametrize("n_hot", [1, 4, 16])
    def test_hot_and_cold_answers_match_single_process(
        self, synthetic_log, expander, multibipartite, single_suggester, n_hot
    ):
        hot = head_queries(synthetic_log, n_hot)
        probes = [SuggestRequest(query=q, k=8) for q in hot]
        probes += [
            SuggestRequest(query=q, k=8) for q in multibipartite.queries[:10]
        ]
        probes.append(SuggestRequest(query="totally unseen query", k=8))
        expected = single_suggester.suggest_batch(probes)
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=1,
            prefix=f"t-hot{n_hot}",
            hot_queries=hot,
        ) as pool:
            assert pool.hot_entries == len({normalize_query(q) for q in hot})
            assert pool.suggest_many(probes) == expected
            assert pool.suggest_many(probes) == expected

    def test_any_k_served_from_one_entry(
        self, synthetic_log, expander, multibipartite, single_suggester
    ):
        hot = head_queries(synthetic_log, 4)
        probes = [
            SuggestRequest(query=q, k=k) for q in hot for k in (1, 3, 8, 20)
        ]
        expected = single_suggester.suggest_batch(probes)
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=1,
            prefix="t-hotk",
            hot_queries=hot,
        ) as pool:
            assert pool.suggest_many(probes) == expected
            assert pool.hot_hits == len(probes)

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_batched_envelopes_match_at_worker_counts(
        self,
        synthetic_log,
        expander,
        multibipartite,
        single_suggester,
        n_workers,
    ):
        hot = head_queries(synthetic_log, 8)
        probes = [SuggestRequest(query=q, k=8) for q in hot]
        probes += [
            SuggestRequest(query=q, k=8) for q in multibipartite.queries[:15]
        ]
        expected = single_suggester.suggest_batch(probes)
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=n_workers,
            prefix=f"t-hotw{n_workers}",
            hot_queries=hot,
        ) as pool:
            assert pool.suggest_many(probes) == expected


class TestHotTierBehavior:
    def test_hot_hits_never_reach_a_worker(
        self, synthetic_log, expander, multibipartite
    ):
        hot = head_queries(synthetic_log, 6)
        probes = [SuggestRequest(query=q, k=8) for q in hot]
        registry = MetricsRegistry()
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=1,
            registry=registry,
            prefix="t-hotskip",
            hot_queries=hot,
        ) as pool:
            assert pool.suggest_many(probes) is not None
            stats = pool.stats()
            assert stats.hot_hits == len(probes)
            assert stats.hot_entries == len(hot)
            assert stats.total_requests == len(probes)
            assert all(worker.requests == 0 for worker in stats.workers)
        assert _metric_value(registry, "serve.pool.hot_hits") == len(probes)

    def test_context_requests_take_the_worker_path(
        self, synthetic_log, expander, multibipartite, single_suggester
    ):
        hot = head_queries(synthetic_log, 4)
        context = (
            QueryRecord(
                user_id="u0",
                query=multibipartite.queries[1],
                timestamp=100.0,
                clicked_url="https://example.org/a",
                record_id=7,
            ),
        )
        probes = [
            SuggestRequest(query=q, k=8, context=context, timestamp=200.0)
            for q in hot
        ]
        expected = single_suggester.suggest_batch(probes)
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=1,
            prefix="t-hotctx",
            hot_queries=hot,
        ) as pool:
            assert pool.suggest_many(probes) == expected
            # Context-bearing requests must bypass the O(1) tier entirely.
            assert pool.hot_hits == 0
            assert pool.stats().workers[0].requests == len(probes)


class TestHotRefresh:
    def test_publish_plane_rebuilds_table_for_new_generation(
        self, synthetic_log, expander, multibipartite, next_generation
    ):
        log2, mb2, expander2 = next_generation
        hot2 = head_queries(log2, 6)
        single2 = PQSDA(mb2, expander2, None, SERVE_CONFIG)
        probes2 = [SuggestRequest(query=q, k=8) for q in hot2]
        expected2 = single2.suggest_batch(probes2)
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=2,
            prefix="t-hotswap",
            hot_queries=head_queries(synthetic_log, 6),
        ) as pool:
            before = pool.hot_entries
            assert before > 0
            pool.publish_plane(expander2, multibipartite=mb2, hot_queries=hot2)
            # Hot answers now come from the *new* generation's precompute —
            # a stale entry would fail this bit-identity check.
            assert pool.suggest_many(probes2) == expected2
            assert pool.hot_hits == len(probes2)

    def test_epoch_publish_rederives_head_with_hot_top(
        self, synthetic_log, expander, multibipartite, next_generation
    ):
        log2, mb2, expander2 = next_generation
        single2 = PQSDA(mb2, expander2, None, SERVE_CONFIG)
        head2 = head_queries(log2, 5)
        probes2 = [SuggestRequest(query=q, k=8) for q in head2]
        expected2 = single2.suggest_batch(probes2)
        manager = EpochManager(
            Epoch(
                epoch_id=0,
                log=synthetic_log,
                multibipartite=multibipartite,
                matrices=expander.matrices,
                expander=expander,
                touched_queries=frozenset(),
            )
        )
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=1,
            prefix="t-hotepoch",
            hot_queries=head_queries(synthetic_log, 5),
            hot_top=5,
        ) as pool:
            pool.attach_epochs(manager)
            manager.publish(
                Epoch(
                    epoch_id=1,
                    log=log2,
                    multibipartite=mb2,
                    matrices=expander2.matrices,
                    expander=expander2,
                    touched_queries=frozenset(mb2.queries),
                )
            )
            assert pool.stats().epoch_id == 1
            assert pool.suggest_many(probes2) == expected2
            # All five head-of-epoch-1 probes were served from the table.
            assert pool.hot_hits == len(probes2)


class TestPoolRegressions:
    def test_stale_reply_envelope_is_drained_not_matched(
        self, expander, multibipartite, single_suggester
    ):
        """A late envelope from a timed-out batch must not poison calls."""
        probes = [
            SuggestRequest(query=q, k=8) for q in multibipartite.queries[:6]
        ]
        expected = single_suggester.suggest_batch(probes)
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=1,
            prefix="t-stale",
        ) as pool:
            # Simulate a reply surfacing after its batch already timed out.
            pool._reply_queue.put(
                ("bres", 999_999, 0, [(["bogus"], None)] * len(probes))
            )
            assert pool.suggest_many(probes) == expected
            assert pool.suggest_many(probes) == expected

    def test_queue_depth_gauge_returns_to_zero(
        self, synthetic_log, expander, multibipartite
    ):
        hot = head_queries(synthetic_log, 3)
        probes = [SuggestRequest(query=q, k=8) for q in hot]
        probes += [
            SuggestRequest(query=q, k=8) for q in multibipartite.queries[:8]
        ]
        registry = MetricsRegistry()
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=2,
            registry=registry,
            prefix="t-depth",
            hot_queries=hot,
        ) as pool:
            for _ in range(3):
                pool.suggest_many(probes)
            assert _metric_value(registry, "serve.pool.queue_depth") == 0

    def test_dead_worker_is_reported_by_name(self, expander, multibipartite):
        with SuggestWorkerPool(
            expander,
            SERVE_CONFIG,
            multibipartite=multibipartite,
            n_workers=1,
            prefix="t-dead",
            ack_timeout=30.0,
        ) as pool:
            pool._workers[0].terminate()
            pool._workers[0].join(timeout=30)
            with pytest.raises(RuntimeError, match="worker process died"):
                pool.suggest(multibipartite.queries[0], k=8)
