"""Generation handshake: epoch-consistent publication to pool workers."""

import os
import threading

import pytest

from repro.baselines.base import SuggestRequest
from repro.core import PQSDA
from repro.graphs.compact import RandomWalkExpander
from repro.graphs.multibipartite import build_multibipartite
from repro.logs.sessionizer import sessionize
from repro.serve.pool import SuggestWorkerPool
from repro.stream.epoch import Epoch, EpochManager
from repro.synth.generator import GeneratorConfig, generate_log
from repro.synth.world import make_world

from tests.serve.conftest import SERVE_CONFIG


@pytest.fixture(scope="module")
def next_generation():
    """A second, different representation (more users -> larger graph)."""
    world = make_world(seed=0)
    log = generate_log(
        world,
        GeneratorConfig(n_users=40, mean_sessions_per_user=8, seed=17),
    ).log
    multibipartite = build_multibipartite(log, sessionize(log))
    expander = RandomWalkExpander(multibipartite)
    return log, multibipartite, expander


def _dev_shm_entries(prefix):
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [name for name in os.listdir("/dev/shm") if name.startswith(prefix)]


def test_publish_swaps_all_workers_and_unlinks_old(
    expander, multibipartite, next_generation
):
    _, mb2, expander2 = next_generation
    single2 = PQSDA(mb2, expander2, None, SERVE_CONFIG)
    probes = [SuggestRequest(query=q, k=8) for q in mb2.queries[:12]]
    expected2 = single2.suggest_batch(probes)
    with SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=2,
        prefix="t-swap",
    ) as pool:
        first_segment = pool.segment_name
        assert _dev_shm_entries(first_segment) == [first_segment]
        pool.publish_plane(expander2, multibipartite=mb2)
        assert pool.generation == 1
        # Old segment fully retired, exactly one (new) segment remains.
        assert _dev_shm_entries(first_segment) == []
        assert _dev_shm_entries("t-swap") == [pool.segment_name]
        stats = pool.stats()
        assert all(worker.generation == 1 for worker in stats.workers)
        assert all(worker.shares_memory for worker in stats.workers)
        # Workers now serve the new representation, bit-identically.
        assert pool.suggest_many(probes) == expected2
    assert _dev_shm_entries("t-swap") == []


def test_no_torn_views_under_concurrent_load(
    expander, multibipartite, single_suggester, next_generation
):
    """Each request matches one generation exactly — never a mix of two."""
    _, mb2, expander2 = next_generation
    shared_queries = [q for q in multibipartite.queries if q in mb2][:8]
    assert len(shared_queries) >= 4
    requests = [SuggestRequest(query=q, k=8) for q in shared_queries]
    expected_a = single_suggester.suggest_batch(requests)
    single_b = PQSDA(mb2, expander2, None, SERVE_CONFIG)
    expected_b = single_b.suggest_batch(requests)

    failures = []
    stop = threading.Event()

    with SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=2,
        prefix="t-torn",
    ) as pool:

        def hammer():
            while not stop.is_set():
                got = pool.suggest_many(requests)
                for i, result in enumerate(got):
                    if result not in (expected_a[i], expected_b[i]):
                        failures.append((requests[i].query, result))
                        return

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            generations = [
                (expander2, mb2),
                (expander, multibipartite),
                (expander2, mb2),
            ]
            for next_expander, next_mb in generations:
                pool.publish_plane(next_expander, multibipartite=next_mb)
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not failures, failures
        assert pool.generation == 3
    assert _dev_shm_entries("t-torn") == []


def test_attach_epochs_republishes_to_workers(
    synthetic_log, expander, multibipartite, next_generation
):
    log2, mb2, expander2 = next_generation
    single2 = PQSDA(mb2, expander2, None, SERVE_CONFIG)
    probes = [SuggestRequest(query=q, k=8) for q in mb2.queries[:10]]
    manager = EpochManager(
        Epoch(
            epoch_id=0,
            log=synthetic_log,
            multibipartite=multibipartite,
            matrices=expander.matrices,
            expander=expander,
            touched_queries=frozenset(),
        )
    )
    with SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=2,
        prefix="t-epoch",
    ) as pool:
        pool.attach_epochs(manager)
        manager.publish(
            Epoch(
                epoch_id=1,
                log=log2,
                multibipartite=mb2,
                matrices=expander2.matrices,
                expander=expander2,
                touched_queries=frozenset(mb2.queries),
            )
        )
        stats = pool.stats()
        assert stats.epoch_id == 1
        assert all(worker.epoch_id == 1 for worker in stats.workers)
        assert pool.suggest_many(probes) == single2.suggest_batch(probes)
    assert _dev_shm_entries("t-epoch") == []


def test_closed_pool_rejects_requests(expander, multibipartite):
    pool = SuggestWorkerPool(
        expander,
        SERVE_CONFIG,
        multibipartite=multibipartite,
        n_workers=1,
        prefix="t-closed",
    )
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        pool.suggest("anything")
    with pytest.raises(RuntimeError, match="closed"):
        pool.publish_plane(expander)
    assert _dev_shm_entries("t-closed") == []
